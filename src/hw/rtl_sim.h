// Cycle-accurate RTL-level interpreter for synthesized implementations.
//
// RtlSim executes an HlsResult the way the emitted hardware would: it
// walks the FSM controller state-by-state, fires ops on the functional-
// unit instances the binding assigned them to, routes every operand read
// through a bound resource (the producing FU's output latch or the
// allocated register), and wraps each committed value to the op's proven
// datapath width (PR 9 narrowing). Unlike hw::simulate_datapath — which
// evaluates the dataflow graph directly and can only validate values —
// RtlSim validates the *structure*: a schedule that reads a value before
// its producer finishes, a binding that recycles an FU before a consumer
// has read it, a register shared by two live values, or a controller
// word that disagrees with the schedule all surface as hard failures
// here instead of silently producing the right answer.
//
// This is the hardware half of the differential co-verification story
// (hw::check_equivalence): the same kernel runs through ir::CompiledEval
// (the software reference) and through RtlSim, and every output bit,
// the cycle count, and the final register file must agree.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hw/hls.h"

namespace mhs::hw {

/// Everything one RtlSim run produced, beyond the named outputs: the
/// observable architectural state a differential checker can compare.
struct RtlTrace {
  /// Named kernel outputs, latched at their scheduled control step.
  std::map<std::string, std::int64_t> outputs;
  /// FSM states executed (== Schedule::num_steps() on a clean run).
  std::size_t cycles = 0;
  /// Final register-file contents, indexed by register id.
  std::vector<std::int64_t> register_file;
  /// Op issues onto FU instances over the whole run.
  std::size_t fu_fires = 0;
  /// Register-file writes over the whole run.
  std::size_t register_writes = 0;
};

/// The interpreter. Construction validates that the controller's control
/// words agree bit-for-bit with the schedule and binding (every active
/// op's FU-enable bit asserted and vice versa; every registered value's
/// load bit asserted at its latch state and vice versa) and throws
/// InternalError on any disagreement. run() then executes vectors; it is
/// const and safe to share across threads.
class RtlSim {
 public:
  /// `impl` must outlive the RtlSim (the schedule holds a pointer to its
  /// CDFG, and RtlSim holds a pointer to `impl`).
  explicit RtlSim(const HlsResult& impl);

  // Structural accessors (pinned against hw::emit_verilog by tests).
  std::size_t num_states() const;
  std::size_t num_fu_instances() const;
  std::size_t num_registers() const;
  std::size_t num_compute_ops() const { return compute_ops_; }

  /// Executes one input vector through the datapath. Throws
  /// PreconditionError on a missing input or an arithmetic trap
  /// (divide-by-zero, shift out of [0,64)) — the same traps as the
  /// software reference — and InternalError on a resource hazard (a
  /// value unreachable through any bound resource at its read step).
  RtlTrace run(const std::map<std::string, std::int64_t>& inputs) const;

 private:
  void check_controller() const;

  const HlsResult* impl_;
  /// Compute ops issuing at each control step, in op-id order.
  std::vector<std::vector<ir::OpId>> issue_at_;
  /// Output ops latching at each step; outputs whose scheduled step is
  /// the makespan itself latch in the post-loop epilogue.
  std::vector<std::vector<ir::OpId>> output_at_;
  std::vector<ir::OpId> epilogue_outputs_;
  std::size_t compute_ops_ = 0;
};

/// Sign-extends the low `width` bits of `v` (two's complement): the value
/// a `width`-bit datapath slice actually stores. Identity for width >= 64.
std::int64_t wrap_to_width(std::int64_t v, std::size_t width);

}  // namespace mhs::hw
