// Verilog RTL emission for synthesized implementations.
//
// Renders an hw::HlsResult as a synthesizable-style Verilog-2001 module:
// one always-block FSM (the controller), registered intermediate values,
// shared functional units with input muxes, and the start/done handshake
// the StreamPeripheral models. This closes the loop to the paper's world,
// where behavioural synthesis hands off to logic synthesis via HDL.
//
// The emitted text is deterministic (stable names derived from op ids),
// so golden tests can pin its structure.
#pragma once

#include <string>

#include "hw/hls.h"

namespace mhs::hw {

/// Options for the Verilog writer.
struct RtlOptions {
  /// Module name; sanitized from the kernel name when empty.
  std::string module_name;
  /// Data path width in bits.
  int width = 64;
  /// Emit per-state commentary (`// state 3: mul_0 active`).
  bool comments = true;
};

/// Emits the implementation as one Verilog module with ports:
///   input  clk, rst, start;
///   input  signed [W-1:0] in_<name> ...;
///   output reg done;
///   output reg signed [W-1:0] out_<name> ...;
std::string emit_verilog(const HlsResult& impl, const RtlOptions& options = {});

/// Sanitizes an arbitrary kernel/port name into a Verilog identifier.
std::string sanitize_identifier(const std::string& name);

}  // namespace mhs::hw
