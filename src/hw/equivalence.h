// Differential HW/SW co-verification of synthesized implementations.
//
// The paper's validation story is co-simulation: the hardware half of a
// partition must compute exactly what the software specification
// computes. check_equivalence makes that check mechanical for one
// synthesized kernel and one input vector — the RTL-level interpreter
// (hw::RtlSim) executes the FSM + datapath + register binding while
// ir::CompiledEval executes the behavioural reference, and every output
// bit, the cycle count vs. the schedule's promised latency, and the
// final register-file contents must agree. verify_synthesis lifts that
// to a seeded campaign over many vectors, which is what the flow's
// post-synthesis gate (FlowConfig::verify_hls), the tier-2 equiv_fuzz
// campaign, and bench_equiv all run.
//
// Equivalence is claimed only for vectors on which the reference does
// not trap (divide-by-zero, shift amount outside [0,64)): a trapping
// vector is outside both implementations' contract and is reported as
// `trapped`, not compared.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "hw/rtl_sim.h"
#include "ir/cdfg.h"

namespace mhs::hw {

/// Knobs for one differential check.
struct EquivOptions {
  /// Compare RtlSim's cycle count against the schedule's latency.
  bool check_latency = true;
  /// Compare the final register file against reference-derived contents.
  bool check_registers = true;
  /// Additionally compile the kernel to the RISC ISA and run it on the
  /// ISS as a second software reference (slower; the default reference
  /// is ir::CompiledEval either way).
  bool check_iss = false;
  /// Reuse a prebuilt reference evaluator for the kernel (must match
  /// impl's CDFG); null compiles one per call.
  const ir::CompiledEval* reference = nullptr;
};

/// Outcome of one vector.
struct EquivResult {
  /// True when every enabled comparison agreed (vacuously true for a
  /// trapped vector).
  bool equivalent = true;
  /// The reference trapped on this vector; nothing was compared.
  bool trapped = false;
  /// First disagreement, human-readable; empty when equivalent.
  std::string detail;
  /// RtlSim cycles (0 when trapped).
  std::size_t cycles = 0;
  std::map<std::string, std::int64_t> rtl_outputs;
  std::map<std::string, std::int64_t> ref_outputs;
};

/// Runs `inputs` through RtlSim and the software reference and compares.
/// Throws only on caller errors (missing input names); synthesis bugs
/// come back as equivalent == false with a populated detail.
EquivResult check_equivalence(const HlsResult& impl,
                              const std::map<std::string, std::int64_t>& inputs,
                              const EquivOptions& options = {});

/// A seeded multi-vector campaign over one already-synthesized kernel.
struct EquivCampaign {
  std::size_t vectors = 0;    ///< vectors compared (traps excluded)
  std::size_t trapped = 0;    ///< vectors skipped as trapping
  bool all_equivalent = true;
  /// First failing vector's detail + reproducer inputs; empty when clean.
  std::string first_failure;
};

/// Draws `vectors` input vectors (uniform inside each input's declared
/// ir::ValueRange; full-width when unannotated) deterministically from
/// `seed` and checks each. Stops at the first failure.
EquivCampaign verify_synthesis(const HlsResult& impl, std::size_t vectors,
                               std::uint64_t seed,
                               const EquivOptions& options = {});

}  // namespace mhs::hw
