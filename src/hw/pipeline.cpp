#include "hw/pipeline.h"

#include <algorithm>
#include <limits>

namespace mhs::hw {

namespace {

std::size_t op_lat(const ir::Cdfg& cdfg, const ComponentLibrary& lib,
                   ir::OpId op) {
  return lib.op_latency(cdfg.op(op).kind);
}

/// Modulo reservation table: usage[type][slot] over II residue slots.
struct ReservationTable {
  std::size_t ii;
  std::vector<std::array<std::size_t, kNumFuTypes>> slots;

  explicit ReservationTable(std::size_t initiation_interval)
      : ii(initiation_interval), slots(initiation_interval) {}

  void occupy(FuType type, std::size_t start, std::size_t latency,
              int delta) {
    for (std::size_t c = start; c < start + latency; ++c) {
      auto& count = slots[c % ii][static_cast<std::size_t>(type)];
      MHS_ASSERT(delta > 0 || count > 0, "reservation underflow");
      count = static_cast<std::size_t>(static_cast<long long>(count) + delta);
    }
  }

  /// Peak usage of `type` if an op of (type, latency) started at `start`.
  std::size_t peak_after(FuType type, std::size_t start,
                         std::size_t latency) const {
    // Copy-free: compute the max over affected slots of usage+1 and over
    // unaffected slots of usage.
    std::size_t peak = 0;
    std::vector<bool> touched(ii, false);
    for (std::size_t c = start; c < start + latency && c < start + ii; ++c) {
      touched[c % ii] = true;
    }
    const bool wraps_fully = latency >= ii;
    for (std::size_t s = 0; s < ii; ++s) {
      std::size_t use = slots[s][static_cast<std::size_t>(type)];
      if (wraps_fully || touched[s]) {
        // An op longer than II occupies every slot at least once; longer
        // still, multiple times — approximate with ceil(latency / ii).
        use += (latency + ii - 1) / ii;
      }
      peak = std::max(peak, use);
    }
    return peak;
  }

  FuCounts requirement() const {
    FuCounts req;
    for (std::size_t s = 0; s < ii; ++s) {
      for (std::size_t t = 0; t < kNumFuTypes; ++t) {
        req.count[t] = std::max(req.count[t], slots[s][t]);
      }
    }
    return req;
  }
};

}  // namespace

ModuloSchedule::ModuloSchedule(const ir::Cdfg& cdfg,
                               const ComponentLibrary& lib,
                               std::size_t initiation_interval,
                               std::vector<std::size_t> start)
    : cdfg_(&cdfg), lib_(&lib), ii_(initiation_interval),
      start_(std::move(start)) {
  MHS_CHECK(ii_ >= 1, "initiation interval must be >= 1");
  MHS_CHECK(start_.size() == cdfg.num_ops(), "schedule size mismatch");

  ReservationTable table(ii_);
  for (const ir::OpId id : cdfg.op_ids()) {
    const ir::Op& op = cdfg.op(id);
    const std::size_t lat = op_lat(cdfg, lib, id);
    latency_ = std::max(latency_, start_[id.index()] + std::max<std::size_t>(lat, 0));
    if (!ir::op_is_compute(op.kind)) continue;
    ++registers_;
    // Ops longer than II occupy their slots once per overlapped iteration.
    const std::size_t copies = (lat + ii_ - 1) / ii_;
    const std::size_t span = std::min(lat, ii_);
    for (std::size_t k = 0; k < copies; ++k) {
      table.occupy(fu_for_op(op.kind), start_[id.index()], span,
                   /*delta=*/1);
    }
  }
  requirement_ = table.requirement();
  latency_ = std::max<std::size_t>(latency_, 1);
  verify();
}

double ModuloSchedule::area(const ComponentLibrary& lib) const {
  double total = requirement_.area(lib);
  total += lib.register_area * static_cast<double>(registers_);
  std::size_t ctrl_bits = registers_;
  for (std::size_t t = 0; t < kNumFuTypes; ++t) {
    ctrl_bits += requirement_.count[t];
  }
  total += lib.controller_base_area +
           lib.controller_area_per_state * static_cast<double>(ii_) +
           lib.controller_area_per_ctrl_bit *
               static_cast<double>(ctrl_bits);
  return total;
}

std::size_t ModuloSchedule::cycles_for(std::size_t samples) const {
  MHS_CHECK(samples >= 1, "need at least one sample");
  return latency_ + (samples - 1) * ii_;
}

void ModuloSchedule::verify() const {
  for (const ir::OpId id : cdfg_->op_ids()) {
    for (const ir::OpId operand : cdfg_->op(id).operands) {
      const std::size_t avail =
          start_[operand.index()] + op_lat(*cdfg_, *lib_, operand);
      MHS_ASSERT(start_[id.index()] >= avail,
                 "modulo schedule violates precedence at op " << id);
    }
  }
}

ModuloSchedule modulo_schedule(const ir::Cdfg& cdfg,
                               const ComponentLibrary& lib,
                               std::size_t initiation_interval) {
  MHS_CHECK(initiation_interval >= 1, "initiation interval must be >= 1");
  const std::size_t ii = initiation_interval;

  // ASAP lower bounds.
  std::vector<std::size_t> asap(cdfg.num_ops(), 0);
  for (const ir::OpId id : cdfg.op_ids()) {
    for (const ir::OpId operand : cdfg.op(id).operands) {
      asap[id.index()] = std::max(
          asap[id.index()],
          asap[operand.index()] + op_lat(cdfg, lib, operand));
    }
  }

  // Greedy placement in topological (insertion) order: each compute op
  // tries the II offsets after its ASAP time and takes the one with the
  // smallest incremental peak usage of its FU class (earliest on ties, to
  // keep the fill latency short).
  ReservationTable table(ii);
  std::vector<std::size_t> start = asap;
  for (const ir::OpId id : cdfg.op_ids()) {
    const ir::Op& op = cdfg.op(id);
    std::size_t ready = 0;
    for (const ir::OpId operand : cdfg.op(id).operands) {
      ready = std::max(ready,
                       start[operand.index()] + op_lat(cdfg, lib, operand));
    }
    if (!ir::op_is_compute(op.kind)) {
      start[id.index()] = ready;
      continue;
    }
    const FuType type = fu_for_op(op.kind);
    const std::size_t lat = lib.op_latency(op.kind);
    const std::size_t span = std::min(lat, ii);
    std::size_t best_start = ready;
    std::size_t best_peak = std::numeric_limits<std::size_t>::max();
    for (std::size_t offset = 0; offset < ii; ++offset) {
      const std::size_t candidate = ready + offset;
      const std::size_t peak = table.peak_after(type, candidate, lat);
      if (peak < best_peak) {
        best_peak = peak;
        best_start = candidate;
      }
    }
    start[id.index()] = best_start;
    const std::size_t copies = (lat + ii - 1) / ii;
    for (std::size_t k = 0; k < copies; ++k) {
      table.occupy(type, best_start, span, 1);
    }
  }
  return ModuloSchedule(cdfg, lib, ii, std::move(start));
}

std::size_t min_initiation_interval(const ir::Cdfg& cdfg,
                                    const ComponentLibrary& lib,
                                    const FuCounts& resources) {
  // Resource-minimum bound: each FU class needs ceil(opcycles / count).
  std::size_t mii = 1;
  std::size_t total_opcycles = 0;
  for (std::size_t t = 0; t < kNumFuTypes; ++t) {
    std::size_t opcycles = 0;
    for (const ir::OpId id : cdfg.op_ids()) {
      const ir::Op& op = cdfg.op(id);
      if (ir::op_is_compute(op.kind) &&
          fu_for_op(op.kind) == all_fu_types()[t]) {
        opcycles += lib.op_latency(op.kind);
      }
    }
    total_opcycles += opcycles;
    if (opcycles == 0) continue;
    if (resources.count[t] == 0) {
      throw InfeasibleError(std::string("kernel needs ") +
                            fu_name(all_fu_types()[t]) +
                            " units but none are provided");
    }
    mii = std::max(mii, (opcycles + resources.count[t] - 1) /
                            resources.count[t]);
  }

  for (std::size_t ii = mii; ii <= total_opcycles + 1; ++ii) {
    const ModuloSchedule candidate = modulo_schedule(cdfg, lib, ii);
    bool fits = true;
    for (std::size_t t = 0; t < kNumFuTypes; ++t) {
      if (candidate.fu_requirement().count[t] > resources.count[t]) {
        fits = false;
        break;
      }
    }
    if (fits) return ii;
  }
  throw InfeasibleError("no initiation interval fits the given resources");
}

}  // namespace mhs::hw
