#include "hw/binding.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

namespace mhs::hw {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/// Lifetime of an op's value: [def_end, last_use_start]. A value needs a
/// register iff some user starts at a later step than the producing step
/// window (i.e. it crosses a control-step boundary).
struct Lifetime {
  ir::OpId op;
  std::size_t begin;  // step at which the value is produced
  std::size_t end;    // last step at which the value is consumed
};

}  // namespace

Binding bind(const Schedule& schedule) {
  const ir::Cdfg& cdfg = schedule.cdfg();
  const ComponentLibrary& lib = schedule.library();
  Binding b;
  b.fu_instance.assign(cdfg.num_ops(), kNone);
  b.register_of.assign(cdfg.num_ops(), kNone);

  // --- FU binding: left-edge per type ------------------------------------
  for (std::size_t ti = 0; ti < kNumFuTypes; ++ti) {
    const FuType type = all_fu_types()[ti];
    std::vector<ir::OpId> ops;
    for (const ir::OpId id : cdfg.op_ids()) {
      const ir::Op& op = cdfg.op(id);
      if (ir::op_is_compute(op.kind) && fu_for_op(op.kind) == type) {
        ops.push_back(id);
      }
    }
    std::sort(ops.begin(), ops.end(), [&](ir::OpId a, ir::OpId b) {
      if (schedule.start_of(a) != schedule.start_of(b)) {
        return schedule.start_of(a) < schedule.start_of(b);
      }
      return a < b;
    });
    std::vector<std::size_t> instance_free_at;  // next free step per instance
    for (const ir::OpId id : ops) {
      const std::size_t s = schedule.start_of(id);
      const std::size_t e = s + lib.op_latency(cdfg.op(id).kind);
      std::size_t chosen = kNone;
      for (std::size_t i = 0; i < instance_free_at.size(); ++i) {
        if (instance_free_at[i] <= s) {
          chosen = i;
          break;
        }
      }
      if (chosen == kNone) {
        chosen = instance_free_at.size();
        instance_free_at.push_back(0);
      }
      instance_free_at[chosen] = e;
      b.fu_instance[id.index()] = chosen;
    }
    b.fu_counts[type] = instance_free_at.size();
  }

  // --- Register allocation: left-edge on value lifetimes ------------------
  std::vector<Lifetime> lifetimes;
  for (const ir::OpId id : cdfg.op_ids()) {
    const ir::Op& op = cdfg.op(id);
    if (op.kind == ir::OpKind::kOutput) continue;  // outputs are ports
    const std::size_t def_end = schedule.end_of(id);
    std::size_t last_use = def_end;
    bool crosses = false;
    for (const ir::OpId user : cdfg.users(id)) {
      const std::size_t use = schedule.start_of(user);
      last_use = std::max(last_use, use);
      if (use > def_end || cdfg.op(user).kind == ir::OpKind::kOutput) {
        // A same-step chained use could be wired combinationally; any
        // later use (or an output port, which must hold its value) needs
        // the value registered.
        crosses = crosses || use >= def_end;
      }
    }
    // Inputs and constants are assumed latched externally / hardwired.
    if (op.kind == ir::OpKind::kConst || op.kind == ir::OpKind::kInput) {
      continue;
    }
    if (crosses) {
      lifetimes.push_back(Lifetime{id, def_end, last_use});
    }
  }
  std::sort(lifetimes.begin(), lifetimes.end(),
            [](const Lifetime& a, const Lifetime& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              return a.op < b.op;
            });
  std::vector<std::size_t> reg_free_at;
  for (const Lifetime& lt : lifetimes) {
    std::size_t chosen = kNone;
    for (std::size_t r = 0; r < reg_free_at.size(); ++r) {
      if (reg_free_at[r] <= lt.begin) {
        chosen = r;
        break;
      }
    }
    if (chosen == kNone) {
      chosen = reg_free_at.size();
      reg_free_at.push_back(0);
    }
    reg_free_at[chosen] = lt.end + 1;
    b.register_of[lt.op.index()] = chosen;
  }
  b.num_registers = reg_free_at.size();

  // --- Mux cost: distinct sources per FU-instance input port --------------
  // port_sources[(type, instance, port)] -> set of producing ops/ports.
  std::map<std::tuple<std::size_t, std::size_t, std::size_t>,
           std::set<std::uint32_t>>
      port_sources;
  for (const ir::OpId id : cdfg.op_ids()) {
    const ir::Op& op = cdfg.op(id);
    if (!ir::op_is_compute(op.kind)) continue;
    const auto type = static_cast<std::size_t>(fu_for_op(op.kind));
    const std::size_t inst = b.fu_instance[id.index()];
    for (std::size_t port = 0; port < op.operands.size(); ++port) {
      port_sources[{type, inst, port}].insert(op.operands[port].value());
    }
  }
  for (const auto& [key, sources] : port_sources) {
    if (sources.size() > 1) {
      b.mux_inputs += sources.size();
      b.mux_port_sources.push_back(sources.size());
    }
  }

  // --- Datapath widths: roll per-op widths up to shared resources ---------
  // An FU instance (or register) shared by several ops must be as wide as
  // the widest op it serves; with no width annotations everything is
  // implicitly 64-bit and the vectors stay empty.
  if (schedule.has_op_widths()) {
    for (std::size_t ti = 0; ti < kNumFuTypes; ++ti) {
      b.fu_width[ti].assign(b.fu_counts[all_fu_types()[ti]], 1);
    }
    b.register_width.assign(b.num_registers, 1);
    for (const ir::OpId id : cdfg.op_ids()) {
      const ir::Op& op = cdfg.op(id);
      const std::size_t w = schedule.width_of(id);
      if (ir::op_is_compute(op.kind)) {
        auto& widths =
            b.fu_width[static_cast<std::size_t>(fu_for_op(op.kind))];
        std::size_t& slot = widths[b.fu_instance[id.index()]];
        slot = std::max(slot, w);
      }
      if (const std::size_t reg = b.register_of[id.index()]; reg != kNone) {
        b.register_width[reg] = std::max(b.register_width[reg], w);
      }
    }
  }

  verify_binding(schedule, b);
  return b;
}

void verify_binding(const Schedule& schedule, const Binding& binding) {
  const ir::Cdfg& cdfg = schedule.cdfg();
  const ComponentLibrary& lib = schedule.library();

  // FU exclusivity.
  const auto ids = cdfg.op_ids();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const ir::Op& a = cdfg.op(ids[i]);
    if (!ir::op_is_compute(a.kind)) continue;
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      const ir::Op& bop = cdfg.op(ids[j]);
      if (!ir::op_is_compute(bop.kind)) continue;
      if (fu_for_op(a.kind) != fu_for_op(bop.kind)) continue;
      if (binding.fu_instance[ids[i].index()] !=
          binding.fu_instance[ids[j].index()]) {
        continue;
      }
      const std::size_t sa = schedule.start_of(ids[i]);
      const std::size_t ea = sa + lib.op_latency(a.kind);
      const std::size_t sb = schedule.start_of(ids[j]);
      const std::size_t eb = sb + lib.op_latency(bop.kind);
      MHS_ASSERT(ea <= sb || eb <= sa,
                 "ops " << ids[i] << " and " << ids[j]
                        << " overlap on one FU instance");
    }
  }

  // Register exclusivity: recompute lifetimes and check pairwise.
  struct Live {
    std::size_t reg, begin, end;
  };
  std::vector<Live> lives;
  for (const ir::OpId id : cdfg.op_ids()) {
    const std::size_t reg = binding.register_of[id.index()];
    if (reg == kNone) continue;
    const std::size_t begin = schedule.end_of(id);
    std::size_t end = begin;
    for (const ir::OpId user : cdfg.users(id)) {
      end = std::max(end, schedule.start_of(user));
    }
    lives.push_back(Live{reg, begin, end});
  }
  for (std::size_t i = 0; i < lives.size(); ++i) {
    for (std::size_t j = i + 1; j < lives.size(); ++j) {
      if (lives[i].reg != lives[j].reg) continue;
      MHS_ASSERT(lives[i].end < lives[j].begin ||
                     lives[j].end < lives[i].begin,
                 "two live values share register " << lives[i].reg);
    }
  }
}

}  // namespace mhs::hw
