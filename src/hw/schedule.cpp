#include "hw/schedule.h"

#include <algorithm>
#include <limits>

namespace mhs::hw {

namespace {

std::size_t op_lat(const ir::Cdfg& cdfg, const ComponentLibrary& lib,
                   ir::OpId op) {
  return lib.op_latency(cdfg.op(op).kind);
}

/// ASAP start times as a raw vector (shared by several schedulers).
std::vector<std::size_t> asap_starts(const ir::Cdfg& cdfg,
                                     const ComponentLibrary& lib) {
  std::vector<std::size_t> start(cdfg.num_ops(), 0);
  for (const ir::OpId id : cdfg.op_ids()) {
    std::size_t s = 0;
    for (const ir::OpId operand : cdfg.op(id).operands) {
      s = std::max(s, start[operand.index()] + op_lat(cdfg, lib, operand));
    }
    start[id.index()] = s;
  }
  return start;
}

std::size_t makespan(const ir::Cdfg& cdfg, const ComponentLibrary& lib,
                     const std::vector<std::size_t>& start) {
  std::size_t steps = 1;  // even an empty kernel occupies one step
  for (const ir::OpId id : cdfg.op_ids()) {
    const std::size_t lat = op_lat(cdfg, lib, id);
    // Compute ops occupy [start, start+lat); zero-latency ops (const,
    // input, output) are wiring and only require their start time to
    // exist on the timeline.
    steps = std::max(steps, start[id.index()] + lat);
  }
  return steps;
}

}  // namespace

double FuCounts::area(const ComponentLibrary& lib) const {
  double total = 0.0;
  for (std::size_t i = 0; i < kNumFuTypes; ++i) {
    total += static_cast<double>(count[i]) * lib.fu[i].area;
  }
  return total;
}

FuCounts FuCounts::unlimited(std::size_t n) {
  FuCounts c;
  c.count.fill(n);
  return c;
}

Schedule::Schedule(const ir::Cdfg& cdfg, const ComponentLibrary& lib,
                   std::vector<std::size_t> start)
    : cdfg_(&cdfg), lib_(&lib), start_(std::move(start)) {
  MHS_CHECK(start_.size() == cdfg.num_ops(),
            "schedule has " << start_.size() << " entries for "
                            << cdfg.num_ops() << " ops");
  num_steps_ = makespan(cdfg, lib, start_);
  verify();
}

std::size_t Schedule::end_of(ir::OpId op) const {
  return start_of(op) + op_lat(*cdfg_, *lib_, op);
}

void Schedule::set_op_widths(std::vector<std::size_t> width) {
  MHS_CHECK(width.size() == cdfg_->num_ops(),
            "op widths cover " << width.size() << " entries for "
                               << cdfg_->num_ops() << " ops");
  for (std::size_t& w : width) w = std::min<std::size_t>(std::max<std::size_t>(w, 1), 64);
  width_ = std::move(width);
}

std::size_t Schedule::fu_usage(FuType type, std::size_t step) const {
  std::size_t used = 0;
  for (const ir::OpId id : cdfg_->op_ids()) {
    const ir::Op& op = cdfg_->op(id);
    if (!ir::op_is_compute(op.kind) || fu_for_op(op.kind) != type) continue;
    const std::size_t s = start_[id.index()];
    const std::size_t lat = lib_->op_latency(op.kind);
    if (step >= s && step < s + lat) ++used;
  }
  return used;
}

FuCounts Schedule::peak_usage() const {
  FuCounts peak;
  for (std::size_t i = 0; i < kNumFuTypes; ++i) {
    const FuType type = all_fu_types()[i];
    for (std::size_t step = 0; step < num_steps_; ++step) {
      peak.count[i] = std::max(peak.count[i], fu_usage(type, step));
    }
  }
  return peak;
}

void Schedule::verify() const {
  for (const ir::OpId id : cdfg_->op_ids()) {
    for (const ir::OpId operand : cdfg_->op(id).operands) {
      const std::size_t avail =
          start_[operand.index()] + op_lat(*cdfg_, *lib_, operand);
      MHS_ASSERT(start_[id.index()] >= avail,
                 "op " << id << " starts at " << start_[id.index()]
                       << " before operand " << operand << " finishes at "
                       << avail);
    }
  }
}

Schedule asap_schedule(const ir::Cdfg& cdfg, const ComponentLibrary& lib) {
  return Schedule(cdfg, lib, asap_starts(cdfg, lib));
}

Schedule alap_schedule(const ir::Cdfg& cdfg, const ComponentLibrary& lib,
                       std::size_t latency_bound) {
  const auto asap = asap_starts(cdfg, lib);
  const std::size_t min_steps = makespan(cdfg, lib, asap);
  MHS_CHECK(latency_bound >= min_steps,
            "latency bound " << latency_bound << " below ASAP latency "
                             << min_steps);

  // Work backwards: latest start such that all users can still run.
  const auto ids = cdfg.op_ids();
  std::vector<std::size_t> start(cdfg.num_ops());
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    const ir::OpId id = *it;
    const std::size_t lat = op_lat(cdfg, lib, id);
    // Zero-latency ops (const/input/output) are wiring: they may sit at
    // the end of the timeline itself.
    std::size_t latest = latency_bound - lat;
    for (const ir::OpId user : cdfg.users(id)) {
      MHS_ASSERT(start[user.index()] >= lat || lat == 0,
                 "ALAP: user scheduled before operand latency");
      const std::size_t bound = start[user.index()] >= lat
                                    ? start[user.index()] - lat
                                    : 0;
      latest = std::min(latest, bound);
    }
    start[id.index()] = latest;
  }
  return Schedule(cdfg, lib, std::move(start));
}

Schedule list_schedule(const ir::Cdfg& cdfg, const ComponentLibrary& lib,
                       const FuCounts& resources) {
  for (const ir::OpId id : cdfg.op_ids()) {
    const ir::Op& op = cdfg.op(id);
    if (ir::op_is_compute(op.kind)) {
      MHS_CHECK(resources[fu_for_op(op.kind)] >= 1,
                "list_schedule: zero " << fu_name(fu_for_op(op.kind))
                                       << " units but cdfg uses them");
    }
  }

  // Priority: b-level in cycles (critical path to any sink).
  std::vector<double> blevel(cdfg.num_ops(), 0.0);
  const auto ids = cdfg.op_ids();
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    const ir::OpId id = *it;
    double succ = 0.0;
    for (const ir::OpId user : cdfg.users(id)) {
      succ = std::max(succ, blevel[user.index()]);
    }
    blevel[id.index()] =
        succ + static_cast<double>(std::max<std::size_t>(
                   op_lat(cdfg, lib, id), ir::op_is_compute(cdfg.op(id).kind)
                                              ? 1u
                                              : 0u));
  }

  constexpr std::size_t kUnscheduled = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> start(cdfg.num_ops(), kUnscheduled);
  std::size_t scheduled = 0;

  // Zero-latency ops (const/input) are ready at step 0 unconditionally;
  // outputs are pinned when their operand completes.
  for (const ir::OpId id : cdfg.op_ids()) {
    const ir::Op& op = cdfg.op(id);
    if (op.kind == ir::OpKind::kConst || op.kind == ir::OpKind::kInput) {
      start[id.index()] = 0;
      ++scheduled;
    }
  }

  // busy_until[type][instance] would be exact; we only need counts per step.
  std::vector<std::array<std::size_t, kNumFuTypes>> usage;
  auto usage_at = [&](std::size_t step) -> std::array<std::size_t, kNumFuTypes>& {
    if (step >= usage.size()) usage.resize(step + 1, {});
    return usage[step];
  };

  std::size_t step = 0;
  const std::size_t total = cdfg.num_ops();
  while (scheduled < total) {
    // Ops whose operands are all complete by `step`, most critical first.
    std::vector<ir::OpId> ready;
    for (const ir::OpId id : cdfg.op_ids()) {
      if (start[id.index()] != kUnscheduled) continue;
      bool ok = true;
      for (const ir::OpId operand : cdfg.op(id).operands) {
        if (start[operand.index()] == kUnscheduled ||
            start[operand.index()] + op_lat(cdfg, lib, operand) > step) {
          ok = false;
          break;
        }
      }
      if (ok) ready.push_back(id);
    }
    std::sort(ready.begin(), ready.end(), [&](ir::OpId a, ir::OpId b) {
      if (blevel[a.index()] != blevel[b.index()]) {
        return blevel[a.index()] > blevel[b.index()];
      }
      return a < b;
    });

    for (const ir::OpId id : ready) {
      const ir::Op& op = cdfg.op(id);
      if (op.kind == ir::OpKind::kOutput) {
        start[id.index()] = step;
        ++scheduled;
        continue;
      }
      const FuType type = fu_for_op(op.kind);
      const std::size_t lat = lib.op_latency(op.kind);
      bool fits = true;
      for (std::size_t s = step; s < step + lat; ++s) {
        if (usage_at(s)[static_cast<std::size_t>(type)] >= resources[type]) {
          fits = false;
          break;
        }
      }
      if (!fits) continue;
      for (std::size_t s = step; s < step + lat; ++s) {
        ++usage_at(s)[static_cast<std::size_t>(type)];
      }
      start[id.index()] = step;
      ++scheduled;
    }
    ++step;
    MHS_ASSERT(step < 16u * total + 16u, "list scheduling failed to converge");
  }
  return Schedule(cdfg, lib, std::move(start));
}

Schedule force_directed_schedule(const ir::Cdfg& cdfg,
                                 const ComponentLibrary& lib,
                                 std::size_t latency_bound) {
  const auto asap = asap_starts(cdfg, lib);
  const std::size_t min_steps = makespan(cdfg, lib, asap);
  MHS_CHECK(latency_bound >= min_steps,
            "latency bound " << latency_bound << " below ASAP latency "
                             << min_steps);

  const std::size_t n = cdfg.num_ops();
  std::vector<std::size_t> lo = asap;
  std::vector<std::size_t> hi(n);
  {
    const Schedule alap = alap_schedule(cdfg, lib, latency_bound);
    for (const ir::OpId id : cdfg.op_ids()) {
      hi[id.index()] = alap.start_of(id);
    }
  }

  std::vector<bool> fixed(n, false);
  // Non-compute ops do not consume FUs; fix them immediately at ASAP
  // (outputs are re-tightened by frame propagation as operands fix).
  std::vector<ir::OpId> compute_ops;
  for (const ir::OpId id : cdfg.op_ids()) {
    if (ir::op_is_compute(cdfg.op(id).kind)) {
      compute_ops.push_back(id);
    } else {
      fixed[id.index()] = true;
    }
  }

  // Distribution graph: expected FU usage per (type, step), where an op in
  // frame [lo,hi] contributes lat/(hi-lo+1) to each feasible start window.
  auto distribution = [&](FuType type, std::size_t step) {
    double d = 0.0;
    for (const ir::OpId id : compute_ops) {
      const ir::Op& op = cdfg.op(id);
      if (fu_for_op(op.kind) != type) continue;
      const std::size_t l = lo[id.index()];
      const std::size_t h = hi[id.index()];
      const std::size_t lat = lib.op_latency(op.kind);
      const double p = 1.0 / static_cast<double>(h - l + 1);
      // Op occupies [s, s+lat) for each candidate start s in [l, h].
      for (std::size_t s = l; s <= h; ++s) {
        if (step >= s && step < s + lat) d += p;
      }
    }
    return d;
  };

  auto propagate_frames = [&]() {
    // Forward pass: lo respects operand completion.
    for (const ir::OpId id : cdfg.op_ids()) {
      std::size_t m = lo[id.index()];
      for (const ir::OpId operand : cdfg.op(id).operands) {
        m = std::max(m, lo[operand.index()] + op_lat(cdfg, lib, operand));
      }
      lo[id.index()] = m;
    }
    // Backward pass: hi respects user starts.
    const auto ids = cdfg.op_ids();
    for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
      const ir::OpId id = *it;
      const std::size_t lat = op_lat(cdfg, lib, id);
      std::size_t m = hi[id.index()];
      for (const ir::OpId user : cdfg.users(id)) {
        const std::size_t bound =
            hi[user.index()] >= lat ? hi[user.index()] - lat : 0;
        m = std::min(m, bound);
      }
      hi[id.index()] = m;
      MHS_ASSERT(lo[id.index()] <= hi[id.index()],
                 "FDS frame collapsed for op " << id);
    }
  };

  std::size_t remaining = compute_ops.size();
  while (remaining > 0) {
    // Pick the unfixed op/step assignment with minimal self-force
    // (usage added where the distribution is already lowest).
    ir::OpId best_op = ir::OpId::invalid();
    std::size_t best_step = 0;
    double best_force = std::numeric_limits<double>::infinity();
    for (const ir::OpId id : compute_ops) {
      if (fixed[id.index()]) continue;
      const ir::Op& op = cdfg.op(id);
      const FuType type = fu_for_op(op.kind);
      const std::size_t lat = lib.op_latency(op.kind);
      const std::size_t l = lo[id.index()];
      const std::size_t h = hi[id.index()];
      const double p = 1.0 / static_cast<double>(h - l + 1);
      for (std::size_t s = l; s <= h; ++s) {
        // Self-force of committing to start s: added usage at the target
        // steps minus the average the op already contributed.
        double force = 0.0;
        for (std::size_t t = s; t < s + lat; ++t) {
          force += distribution(type, t) - p;
        }
        if (force < best_force - 1e-12 ||
            (std::abs(force - best_force) <= 1e-12 &&
             (best_op == ir::OpId::invalid() || id < best_op))) {
          best_force = force;
          best_op = id;
          best_step = s;
        }
      }
    }
    MHS_ASSERT(best_op.valid(), "FDS found no candidate");
    lo[best_op.index()] = best_step;
    hi[best_op.index()] = best_step;
    fixed[best_op.index()] = true;
    --remaining;
    propagate_frames();
  }

  // Outputs and other zero-latency ops: place at earliest feasible step.
  propagate_frames();
  return Schedule(cdfg, lib, std::move(lo));
}

}  // namespace mhs::hw
