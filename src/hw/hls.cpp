#include "hw/hls.h"

#include <algorithm>
#include <vector>

#include "obs/obs.h"

namespace mhs::hw {

namespace {

FuCounts single_of_each_used(const ir::Cdfg& cdfg) {
  FuCounts counts;
  for (const ir::OpId id : cdfg.op_ids()) {
    const ir::Op& op = cdfg.op(id);
    if (ir::op_is_compute(op.kind)) {
      counts[fu_for_op(op.kind)] = 1;
    }
  }
  return counts;
}

Schedule make_schedule(const ir::Cdfg& cdfg, const ComponentLibrary& lib,
                       const HlsConstraints& c) {
  switch (c.goal) {
    case HlsGoal::kMinLatency:
      return asap_schedule(cdfg, lib);
    case HlsGoal::kMinArea:
      return list_schedule(cdfg, lib, single_of_each_used(cdfg));
    case HlsGoal::kLatencyConstrained:
      return force_directed_schedule(cdfg, lib, c.latency_bound);
    case HlsGoal::kResourceConstrained:
      return list_schedule(cdfg, lib, c.resources);
  }
  MHS_ASSERT(false, "unknown HLS goal");
  return asap_schedule(cdfg, lib);
}

}  // namespace

AreaReport compute_area(const Schedule& schedule, const Binding& binding,
                        const Controller& controller) {
  const ComponentLibrary& lib = schedule.library();
  AreaReport area;
  // With proven per-instance widths the word-wide FU/register costs
  // scale by width/64 (the library areas characterize 64-bit units and
  // FU/register area is dominated by the per-bit slice). Without widths
  // the legacy formulas run verbatim so historic area numbers stay
  // bit-exact. Muxes keep the word-wide model either way: steering cost
  // is already a small term and its width is set by the widest value
  // routed through the port, which the binding does not track per port.
  const bool narrowed = schedule.has_op_widths();
  if (narrowed) {
    area.fu = 0.0;
    for (std::size_t ti = 0; ti < kNumFuTypes; ++ti) {
      const FuType type = all_fu_types()[ti];
      for (const std::size_t w : binding.fu_width[ti]) {
        area.fu += lib.spec(type).area * static_cast<double>(w) / 64.0;
      }
    }
    area.registers = 0.0;
    for (const std::size_t w : binding.register_width) {
      area.registers += lib.register_area * static_cast<double>(w) / 64.0;
    }
  } else {
    area.fu = binding.fu_counts.area(lib);
    area.registers =
        lib.register_area * static_cast<double>(binding.num_registers);
  }
  // An n-input mux costs n-1 2:1 legs.
  double legs = 0.0;
  for (const std::size_t sources : binding.mux_port_sources) {
    legs += static_cast<double>(sources - 1);
  }
  area.muxes = lib.mux_leg_area * legs;
  area.controller = controller.area(lib);
  return area;
}

HlsResult synthesize(const ir::Cdfg& cdfg, const ComponentLibrary& lib,
                     const HlsConstraints& constraints) {
  Schedule schedule = make_schedule(cdfg, lib, constraints);
  if (!constraints.op_width.empty()) {
    schedule.set_op_widths(constraints.op_width);
  }
  Binding binding = bind(schedule);
  Controller controller(schedule, binding);
  AreaReport area = compute_area(schedule, binding, controller);
  const std::size_t latency = schedule.num_steps();
  obs::count("hls.syntheses");
  obs::observe("hls.schedule_len", latency);
  return HlsResult{std::move(schedule), std::move(binding),
                   std::move(controller), area, latency};
}

std::map<std::string, std::int64_t> simulate_datapath(
    const HlsResult& impl, const std::map<std::string, std::int64_t>& inputs,
    std::size_t* cycles) {
  const Schedule& schedule = impl.schedule;
  const ir::Cdfg& cdfg = schedule.cdfg();

  // Order ops by completion time so that each op sees the operand values
  // that were committed in earlier cycles (or the same cycle via chaining).
  std::vector<ir::OpId> order = cdfg.op_ids();
  std::stable_sort(order.begin(), order.end(),
                   [&](ir::OpId a, ir::OpId b) {
                     return schedule.end_of(a) < schedule.end_of(b);
                   });

  std::vector<std::int64_t> value(cdfg.num_ops(), 0);
  std::map<std::string, std::int64_t> out;
  for (const ir::OpId id : order) {
    const ir::Op& op = cdfg.op(id);
    switch (op.kind) {
      case ir::OpKind::kConst:
        value[id.index()] = op.value;
        break;
      case ir::OpKind::kInput: {
        const auto it = inputs.find(op.name);
        MHS_CHECK(it != inputs.end(),
                  "simulate_datapath: missing input '" << op.name << "'");
        value[id.index()] = it->second;
        break;
      }
      case ir::OpKind::kOutput:
        value[id.index()] = value[op.operands[0].index()];
        out[op.name] = value[id.index()];
        break;
      default: {
        std::vector<std::int64_t> args;
        args.reserve(op.operands.size());
        for (const ir::OpId o : op.operands) {
          args.push_back(value[o.index()]);
        }
        value[id.index()] = ir::apply_op(op.kind, args);
        break;
      }
    }
  }
  if (cycles != nullptr) *cycles = schedule.num_steps();
  return out;
}

}  // namespace mhs::hw
