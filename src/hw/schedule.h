// Operation scheduling for high-level synthesis.
//
// Implements the classic scheduling algorithms the paper's behavioural-
// synthesis substrate needs: ASAP, ALAP, resource-constrained list
// scheduling, and latency-constrained force-directed scheduling (FDS).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "hw/component_library.h"
#include "ir/cdfg.h"

namespace mhs::hw {

/// Per-FU-type instance counts (resource constraints or allocation result).
struct FuCounts {
  std::array<std::size_t, kNumFuTypes> count{};

  std::size_t& operator[](FuType t) {
    return count[static_cast<std::size_t>(t)];
  }
  std::size_t operator[](FuType t) const {
    return count[static_cast<std::size_t>(t)];
  }

  /// Total area of these FUs under `lib`.
  double area(const ComponentLibrary& lib) const;

  /// Unlimited resources (one FU per op is always enough).
  static FuCounts unlimited(std::size_t n = 1u << 20);
};

/// A complete schedule of one Cdfg: start control step of every op.
///
/// Non-compute ops (const, input) start at step 0 with zero latency;
/// output ops start when their operand's value is available.
class Schedule {
 public:
  Schedule(const ir::Cdfg& cdfg, const ComponentLibrary& lib,
           std::vector<std::size_t> start);

  std::size_t start_of(ir::OpId op) const { return start_.at(op.index()); }
  /// First step at which the op's result is available.
  std::size_t end_of(ir::OpId op) const;
  /// Total number of control steps (makespan).
  std::size_t num_steps() const { return num_steps_; }

  /// Number of ops of `type` executing at `step`.
  std::size_t fu_usage(FuType type, std::size_t step) const;

  /// Maximum concurrent usage per FU type — the FU allocation this
  /// schedule implies.
  FuCounts peak_usage() const;

  /// Throws InternalError if precedence or latency is violated.
  void verify() const;

  /// Attaches proven-safe per-op signed bitwidths (one entry per op,
  /// each clamped to [1,64]) — typically analysis::AbsintResult::width.
  /// Binding and area estimation consume these to narrow FU datapaths
  /// and registers under the per-bit cost model; scheduling itself is
  /// width-agnostic.
  void set_op_widths(std::vector<std::size_t> width);
  /// Width of one op's datapath; 64 when no widths were attached.
  std::size_t width_of(ir::OpId op) const {
    return width_.empty() ? 64 : width_.at(op.index());
  }
  bool has_op_widths() const { return !width_.empty(); }

  const ir::Cdfg& cdfg() const { return *cdfg_; }
  const ComponentLibrary& library() const { return *lib_; }

 private:
  const ir::Cdfg* cdfg_;
  const ComponentLibrary* lib_;
  std::vector<std::size_t> start_;
  std::vector<std::size_t> width_;
  std::size_t num_steps_ = 0;
};

/// As-soon-as-possible schedule (unlimited resources, minimum latency).
Schedule asap_schedule(const ir::Cdfg& cdfg, const ComponentLibrary& lib);

/// As-late-as-possible schedule meeting `latency_bound` steps.
/// Precondition: latency_bound >= asap latency (throws otherwise).
Schedule alap_schedule(const ir::Cdfg& cdfg, const ComponentLibrary& lib,
                       std::size_t latency_bound);

/// Resource-constrained list scheduling with b-level priority.
/// Every FU type used by the cdfg must have count >= 1.
Schedule list_schedule(const ir::Cdfg& cdfg, const ComponentLibrary& lib,
                       const FuCounts& resources);

/// Latency-constrained force-directed scheduling (Paulin & Knight style):
/// minimizes peak FU usage subject to the latency bound.
Schedule force_directed_schedule(const ir::Cdfg& cdfg,
                                 const ComponentLibrary& lib,
                                 std::size_t latency_bound);

}  // namespace mhs::hw
