// Loop pipelining via modulo scheduling.
//
// Streaming kernels (the FIR/DCT accelerators of the paper's co-processor
// examples) rarely run one sample at a time: a pipelined datapath accepts
// a new sample every II ("initiation interval") cycles, overlapping
// consecutive iterations. Because the CDFG kernels are feed-forward (no
// loop-carried dependences), any II >= 1 is schedulable; what changes is
// the hardware bill: an FU class used U op-cycles per iteration needs
// ceil(U / II) instances. Modulo scheduling balances ops across the II
// residue slots to get close to that bound.
#pragma once

#include "hw/schedule.h"

namespace mhs::hw {

/// A modulo schedule of one kernel iteration.
class ModuloSchedule {
 public:
  ModuloSchedule(const ir::Cdfg& cdfg, const ComponentLibrary& lib,
                 std::size_t initiation_interval,
                 std::vector<std::size_t> start);

  std::size_t initiation_interval() const { return ii_; }
  std::size_t start_of(ir::OpId op) const { return start_.at(op.index()); }
  /// Latency of one iteration (fill time of the pipeline).
  std::size_t iteration_latency() const { return latency_; }
  /// FU instances needed: max concurrent use over the II residue slots,
  /// counting overlapped iterations.
  const FuCounts& fu_requirement() const { return requirement_; }
  /// Pipeline registers: one per compute value (stage-registered style).
  std::size_t pipeline_registers() const { return registers_; }
  /// Samples per cycle in steady state.
  double throughput() const { return 1.0 / static_cast<double>(ii_); }
  /// Steady-state datapath area (FUs + pipeline registers + controller
  /// with II states).
  double area(const ComponentLibrary& lib) const;

  /// Cycles to process `samples` samples: fill + (samples-1) * II.
  std::size_t cycles_for(std::size_t samples) const;

  /// Throws InternalError if precedence or the modulo resource accounting
  /// is inconsistent.
  void verify() const;

  const ir::Cdfg& cdfg() const { return *cdfg_; }

 private:
  const ir::Cdfg* cdfg_;
  const ComponentLibrary* lib_;
  std::size_t ii_;
  std::vector<std::size_t> start_;
  std::size_t latency_ = 0;
  FuCounts requirement_;
  std::size_t registers_ = 0;
};

/// Modulo-schedules `cdfg` at the given initiation interval, balancing FU
/// usage across residue slots (slack-limited greedy placement).
/// Precondition: initiation_interval >= 1.
ModuloSchedule modulo_schedule(const ir::Cdfg& cdfg,
                               const ComponentLibrary& lib,
                               std::size_t initiation_interval);

/// Smallest II whose balanced schedule fits within `resources`; also the
/// classic resource-minimum bound check. Throws InfeasibleError when even
/// fully serial operation (II = total op-cycles) does not fit.
std::size_t min_initiation_interval(const ir::Cdfg& cdfg,
                                    const ComponentLibrary& lib,
                                    const FuCounts& resources);

}  // namespace mhs::hw
