#include "hw/estimate.h"

#include <algorithm>
#include <cmath>

namespace mhs::hw {

namespace {

/// Area of shared FU/register pools plus summed controller/wiring.
double shared_area(const ComponentLibrary& lib, const FuCounts& max_fu,
                   std::size_t max_regs, std::size_t total_states,
                   double total_wiring) {
  double area = max_fu.area(lib);
  area += lib.register_area * static_cast<double>(max_regs);
  std::size_t ctrl_bits = max_regs;
  for (std::size_t t = 0; t < kNumFuTypes; ++t) ctrl_bits += max_fu.count[t];
  area += lib.controller_base_area +
          lib.controller_area_per_state * static_cast<double>(total_states) +
          lib.controller_area_per_ctrl_bit * static_cast<double>(ctrl_bits);
  area += total_wiring;
  return area;
}

}  // namespace

HwProfile profile_from_hls(const HlsResult& impl) {
  HwProfile p;
  p.fu = impl.binding.fu_counts;
  if (impl.binding.register_width.empty()) {
    p.registers = impl.binding.num_registers;
  } else {
    // Narrowed datapath: count word-equivalent registers (total proven
    // bits rounded up to 64-bit words) so the sharing estimator keeps
    // its word-granular units. Uniform 64-bit widths reduce exactly to
    // num_registers.
    std::size_t bits = 0;
    for (const std::size_t w : impl.binding.register_width) bits += w;
    p.registers = (bits + 63) / 64;
  }
  p.states = impl.controller.num_states();
  p.wiring = impl.area.muxes;  // steering logic is function-specific
  return p;
}

HwProfile profile_from_costs(const ir::TaskCosts& costs,
                             const ComponentLibrary& lib) {
  HwProfile p;
  // Interpret hw_area as the stand-alone implementation cost and hw_cycles
  // as its latency. Decompose: ~55% datapath FUs, ~15% registers, ~10%
  // wiring; the controller share is implied by hw_cycles (states).
  const double fu_budget = costs.hw_area * 0.55;
  // Distribute the FU budget over ALU/MUL capacity proportional to the
  // task's parallelism annotation (parallel tasks want wider datapaths).
  const double alu_area = lib.spec(FuType::kAlu).area;
  const double mul_area = lib.spec(FuType::kMul).area;
  const double width = 1.0 + 3.0 * costs.parallelism;
  const double unit = alu_area + 0.5 * mul_area;
  const double copies = std::max(1.0, fu_budget / (unit * width)) * width;
  p.fu[FuType::kAlu] = static_cast<std::size_t>(std::max(1.0, copies));
  p.fu[FuType::kMul] =
      static_cast<std::size_t>(std::max(0.0, std::round(copies * 0.5)));
  p.registers = static_cast<std::size_t>(
      std::max(1.0, costs.hw_area * 0.15 / lib.register_area));
  p.states = static_cast<std::size_t>(std::max(1.0, costs.hw_cycles));
  p.wiring = costs.hw_area * 0.10;
  return p;
}

double shared_area_from_scratch(const ComponentLibrary& lib,
                                std::span<const HwProfile> residents) {
  if (residents.empty()) return 0.0;
  FuCounts max_fu;
  std::size_t max_regs = 0;
  std::size_t total_states = 0;
  double total_wiring = 0.0;
  for (const HwProfile& p : residents) {
    for (std::size_t t = 0; t < kNumFuTypes; ++t) {
      max_fu.count[t] = std::max(max_fu.count[t], p.fu.count[t]);
    }
    max_regs = std::max(max_regs, p.registers);
    total_states += p.states;
    total_wiring += p.wiring;
  }
  return shared_area(lib, max_fu, max_regs, total_states, total_wiring);
}

IncrementalAreaEstimator::IncrementalAreaEstimator(
    const ComponentLibrary& lib)
    : lib_(&lib) {}

void IncrementalAreaEstimator::add(std::size_t key,
                                   const HwProfile& profile) {
  MHS_CHECK(!contains(key), "function " << key << " already resident");
  profiles_.emplace(key, profile);
  for (std::size_t t = 0; t < kNumFuTypes; ++t) {
    ++fu_counts_[t][profile.fu.count[t]];
  }
  ++register_counts_[profile.registers];
  total_states_ += profile.states;
  total_wiring_ += profile.wiring;
}

void IncrementalAreaEstimator::remove(std::size_t key) {
  const auto it = profiles_.find(key);
  MHS_CHECK(it != profiles_.end(), "function " << key << " not resident");
  const HwProfile& profile = it->second;
  for (std::size_t t = 0; t < kNumFuTypes; ++t) {
    auto cit = fu_counts_[t].find(profile.fu.count[t]);
    MHS_ASSERT(cit != fu_counts_[t].end(), "estimator bookkeeping lost");
    if (--cit->second == 0) fu_counts_[t].erase(cit);
  }
  auto rit = register_counts_.find(profile.registers);
  MHS_ASSERT(rit != register_counts_.end(), "estimator bookkeeping lost");
  if (--rit->second == 0) register_counts_.erase(rit);
  total_states_ -= profile.states;
  total_wiring_ -= profile.wiring;
  profiles_.erase(it);
}

bool IncrementalAreaEstimator::contains(std::size_t key) const {
  return profiles_.count(key) != 0;
}

double IncrementalAreaEstimator::area() const {
  if (profiles_.empty()) return 0.0;
  FuCounts max_fu;
  for (std::size_t t = 0; t < kNumFuTypes; ++t) {
    max_fu.count[t] = fu_counts_[t].empty() ? 0 : fu_counts_[t].rbegin()->first;
  }
  const std::size_t max_regs =
      register_counts_.empty() ? 0 : register_counts_.rbegin()->first;
  return shared_area(*lib_, max_fu, max_regs, total_states_, total_wiring_);
}

}  // namespace mhs::hw
