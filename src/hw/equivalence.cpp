#include "hw/equivalence.h"

#include <limits>
#include <sstream>
#include <vector>

#include "base/rng.h"
#include "obs/obs.h"
#include "sw/codegen.h"
#include "sw/iss.h"

namespace mhs::hw {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/// Reference evaluation with per-op values and apply_op's trap rules made
/// non-throwing (a trapping vector is outside the equivalence contract).
bool eval_reference(const ir::Cdfg& cdfg,
                    const std::map<std::string, std::int64_t>& inputs,
                    std::vector<std::int64_t>* value) {
  value->assign(cdfg.num_ops(), 0);
  std::vector<std::int64_t> args;
  for (const ir::OpId id : cdfg.op_ids()) {
    const ir::Op& op = cdfg.op(id);
    args.clear();
    for (const ir::OpId operand : op.operands) {
      args.push_back((*value)[operand.index()]);
    }
    switch (op.kind) {
      case ir::OpKind::kConst:
        (*value)[id.index()] = op.value;
        break;
      case ir::OpKind::kInput: {
        const auto it = inputs.find(op.name);
        MHS_CHECK(it != inputs.end(),
                  "check_equivalence: missing input '" << op.name << "'");
        (*value)[id.index()] = it->second;
        break;
      }
      case ir::OpKind::kOutput:
        (*value)[id.index()] = args[0];
        break;
      case ir::OpKind::kDiv:
        if (args[1] == 0) return false;
        (*value)[id.index()] = ir::apply_op(op.kind, args);
        break;
      case ir::OpKind::kShl:
      case ir::OpKind::kShr:
        if (args[1] < 0 || args[1] >= 64) return false;
        (*value)[id.index()] = ir::apply_op(op.kind, args);
        break;
      default:
        (*value)[id.index()] = ir::apply_op(op.kind, args);
        break;
    }
  }
  return true;
}

std::string render_outputs(const std::map<std::string, std::int64_t>& m) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, v] : m) {
    os << (first ? "" : ", ") << name << "=" << v;
    first = false;
  }
  return os.str();
}

/// A full-width uniform draw built from two 32-bit halves (uniform_int
/// over the whole i64 span would compute hi - lo in signed arithmetic).
std::uint64_t raw_u64(Rng& rng) {
  constexpr std::int64_t kHalf = (std::int64_t{1} << 32) - 1;
  const auto low = static_cast<std::uint64_t>(rng.uniform_int(0, kHalf));
  const auto high = static_cast<std::uint64_t>(rng.uniform_int(0, kHalf));
  return (high << 32) | low;
}

std::int64_t draw_in_range(Rng& rng, std::int64_t lo, std::int64_t hi) {
  const std::uint64_t width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  if (width == ~std::uint64_t{0}) {
    return static_cast<std::int64_t>(raw_u64(rng));
  }
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   raw_u64(rng) % (width + 1));
}

}  // namespace

EquivResult check_equivalence(const HlsResult& impl,
                              const std::map<std::string, std::int64_t>& inputs,
                              const EquivOptions& options) {
  const Schedule& schedule = impl.schedule;
  const ir::Cdfg& cdfg = schedule.cdfg();
  EquivResult result;

  // Software reference first: per-op values (for the register-file
  // expectation) and the trap screen.
  std::vector<std::int64_t> ref_value;
  if (!eval_reference(cdfg, inputs, &ref_value)) {
    result.trapped = true;
    return result;
  }
  // The production reference path: CompiledEval is what the co-simulator
  // actually runs per sample, so the equivalence claim is against it.
  ir::CompiledEval local;
  const ir::CompiledEval* ref = options.reference;
  if (ref == nullptr) {
    local = ir::CompiledEval(cdfg);
    ref = &local;
  }
  result.ref_outputs = ref->evaluate(inputs);

  const auto fail = [&](const std::string& what) {
    result.equivalent = false;
    if (result.detail.empty()) result.detail = what;
  };

  // Hardware: the RTL-level interpreter over FSM + datapath + binding.
  RtlTrace trace;
  try {
    const RtlSim sim(impl);
    trace = sim.run(inputs);
  } catch (const Error& e) {
    fail(std::string("RtlSim failed: ") + e.what());
    return result;
  }
  result.cycles = trace.cycles;
  result.rtl_outputs = trace.outputs;

  if (trace.outputs != result.ref_outputs) {
    fail("outputs diverge: rtl {" + render_outputs(trace.outputs) +
         "} vs reference {" + render_outputs(result.ref_outputs) + "}");
  }
  if (options.check_latency) {
    if (trace.cycles != schedule.num_steps() ||
        trace.cycles != impl.latency) {
      std::ostringstream os;
      os << "latency diverges: rtl ran " << trace.cycles
         << " cycles, schedule promises " << schedule.num_steps()
         << ", HlsResult reports " << impl.latency;
      fail(os.str());
    }
  }
  if (options.check_registers) {
    // Expected register file: the value of the last op latched into each
    // register (latest commit step wins; lifetimes never tie), wrapped
    // to that op's datapath width exactly as the hardware stores it.
    std::vector<std::size_t> last_op(impl.binding.num_registers, kNone);
    for (const ir::OpId id : cdfg.op_ids()) {
      const std::size_t r = impl.binding.register_of[id.index()];
      if (r == kNone) continue;
      if (last_op[r] == kNone ||
          schedule.end_of(ir::OpId(static_cast<std::uint32_t>(last_op[r]))) <
              schedule.end_of(id)) {
        last_op[r] = id.index();
      }
    }
    for (std::size_t r = 0; r < impl.binding.num_registers; ++r) {
      if (last_op[r] == kNone) continue;
      const auto id = ir::OpId(static_cast<std::uint32_t>(last_op[r]));
      const std::int64_t expected =
          wrap_to_width(ref_value[last_op[r]], schedule.width_of(id));
      if (trace.register_file[r] != expected) {
        std::ostringstream os;
        os << "register " << r << " final state diverges: rtl "
           << trace.register_file[r] << " vs reference " << expected
           << " (op " << last_op[r] << ")";
        fail(os.str());
      }
    }
  }
  if (options.check_iss) {
    // Second software leg: the compiled RISC program on the ISS.
    const sw::Program program = sw::compile(cdfg);
    sw::Iss iss;
    const auto iss_out = sw::run_program(iss, program, inputs);
    if (iss_out != result.ref_outputs) {
      fail("ISS outputs diverge from reference: iss {" +
           render_outputs(iss_out) + "} vs {" +
           render_outputs(result.ref_outputs) + "}");
    }
  }
  obs::count(result.equivalent ? "hw.equiv.vectors_ok"
                               : "hw.equiv.vectors_failed");
  return result;
}

EquivCampaign verify_synthesis(const HlsResult& impl, std::size_t vectors,
                               std::uint64_t seed,
                               const EquivOptions& options) {
  const ir::Cdfg& cdfg = impl.schedule.cdfg();
  // One compile amortized over the whole campaign unless the caller
  // already supplied a reference.
  ir::CompiledEval compiled;
  EquivOptions opts = options;
  if (opts.reference == nullptr) {
    compiled = ir::CompiledEval(cdfg);
    opts.reference = &compiled;
  }

  const std::vector<ir::OpId> input_ids = cdfg.inputs();
  Rng rng(seed);
  EquivCampaign campaign;
  for (std::size_t v = 0; v < vectors; ++v) {
    std::map<std::string, std::int64_t> inputs;
    for (const ir::OpId id : input_ids) {
      const ir::ValueRange r = cdfg.op(id).range.value_or(ir::ValueRange{});
      // Corner draws mixed with uniform draws inside the declared range.
      std::int64_t value;
      switch (rng.uniform_int(0, 3)) {
        case 0:  value = r.lo; break;
        case 1:  value = r.hi; break;
        default: value = draw_in_range(rng, r.lo, r.hi); break;
      }
      inputs[cdfg.op(id).name] = value;
    }
    const EquivResult result = check_equivalence(impl, inputs, opts);
    if (result.trapped) {
      ++campaign.trapped;
      continue;
    }
    ++campaign.vectors;
    if (!result.equivalent) {
      campaign.all_equivalent = false;
      std::ostringstream os;
      os << result.detail << "; inputs: ";
      bool first = true;
      for (const auto& [name, value] : inputs) {
        os << (first ? "" : ", ") << name << "=" << value;
        first = false;
      }
      campaign.first_failure = os.str();
      break;
    }
  }
  return campaign;
}

}  // namespace mhs::hw
