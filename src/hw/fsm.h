// FSM controller generation for synthesized datapaths.
//
// The controller is a Moore machine with one state per control step. Each
// state asserts a control word: one enable bit per FU instance, one load
// bit per register, and select bits for every multiplexed FU input port.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hw/binding.h"
#include "hw/schedule.h"

namespace mhs::hw {

/// A generated Moore controller.
class Controller {
 public:
  /// Builds the controller for a scheduled + bound CDFG.
  Controller(const Schedule& schedule, const Binding& binding);

  std::size_t num_states() const { return words_.size(); }
  std::size_t num_control_bits() const { return num_bits_; }

  /// Control word asserted in `state` (bit-packed as vector<bool>).
  const std::vector<bool>& word(std::size_t state) const;

  /// True if control bit `bit` is asserted in `state`.
  bool asserted(std::size_t state, std::size_t bit) const;

  /// Area under the library's controller model.
  double area(const ComponentLibrary& lib) const;

  /// Index of the enable bit of FU instance `inst` of `type`.
  std::size_t fu_enable_bit(FuType type, std::size_t inst) const;
  /// Index of the load bit of register `reg`.
  std::size_t register_load_bit(std::size_t reg) const;

  /// Textual dump (one line per state) for debugging and docs.
  std::string dump() const;

 private:
  std::vector<std::vector<bool>> words_;
  std::size_t num_bits_ = 0;
  std::size_t fu_bit_base_[kNumFuTypes] = {};
  std::size_t reg_bit_base_ = 0;
  std::size_t select_bit_base_ = 0;
};

}  // namespace mhs::hw
