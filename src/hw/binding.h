// Resource binding: mapping scheduled operations to functional-unit
// instances and values to registers.
//
// FU binding uses the left-edge strategy per FU type (ops sorted by start
// step, each assigned to the first instance free at that step). Register
// allocation computes value lifetimes from the schedule and colors the
// interval graph with the left-edge algorithm, which is optimal for
// intervals.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "hw/schedule.h"

namespace mhs::hw {

/// Result of binding one scheduled CDFG.
struct Binding {
  /// FU instance per op (index within its FU type); SIZE_MAX for
  /// non-compute ops that need no FU.
  std::vector<std::size_t> fu_instance;
  /// FU instances actually allocated per type.
  FuCounts fu_counts;
  /// Register index per op whose value must be stored across a control-
  /// step boundary; SIZE_MAX when no register is needed.
  std::vector<std::size_t> register_of;
  /// Number of registers allocated.
  std::size_t num_registers = 0;
  /// Per FU instance, the number of distinct operation sources feeding
  /// each input port (drives mux cost). Summed into mux_inputs.
  std::size_t mux_inputs = 0;
  /// Source count for each FU input port fed by more than one producer
  /// (one entry per muxed port); drives controller select-bit cost.
  std::vector<std::size_t> mux_port_sources;
  /// Per FU type, the proven-safe datapath width of each allocated
  /// instance: the max schedule width over the ops bound to it. Empty
  /// when the schedule carries no width annotations (implicitly 64-bit),
  /// which keeps the legacy word-wide area model bit-exact.
  std::array<std::vector<std::size_t>, kNumFuTypes> fu_width;
  /// Width each allocated register must hold (max over the values stored
  /// in it); empty when unnarrowed.
  std::vector<std::size_t> register_width;
};

/// Binds a scheduled CDFG. The binding never uses more FUs of a type than
/// the schedule's peak usage of that type.
Binding bind(const Schedule& schedule);

/// Verifies binding invariants; throws InternalError on violation:
///  * no two ops share an FU instance in overlapping steps,
///  * no two simultaneously-live values share a register.
void verify_binding(const Schedule& schedule, const Binding& binding);

}  // namespace mhs::hw
