#include "hw/component_library.h"

namespace mhs::hw {

const FuType* all_fu_types() {
  static const FuType kTypes[kNumFuTypes] = {FuType::kAlu, FuType::kMul,
                                             FuType::kDiv, FuType::kShift};
  return kTypes;
}

const char* fu_name(FuType type) {
  switch (type) {
    case FuType::kAlu:   return "alu";
    case FuType::kMul:   return "mul";
    case FuType::kDiv:   return "div";
    case FuType::kShift: return "shift";
  }
  return "?";
}

FuType fu_for_op(ir::OpKind kind) {
  using ir::OpKind;
  MHS_CHECK(ir::op_is_compute(kind),
            "fu_for_op on non-compute op " << ir::op_name(kind));
  switch (kind) {
    case OpKind::kMul:
      return FuType::kMul;
    case OpKind::kDiv:
      return FuType::kDiv;
    case OpKind::kShl:
    case OpKind::kShr:
      return FuType::kShift;
    default:
      return FuType::kAlu;
  }
}

std::size_t ComponentLibrary::op_latency(ir::OpKind kind) const {
  if (!ir::op_is_compute(kind)) return 0;
  return spec(fu_for_op(kind)).latency;
}

ComponentLibrary default_library() {
  ComponentLibrary lib;
  lib.spec(FuType::kAlu) = FuSpec{120.0, 1};
  lib.spec(FuType::kMul) = FuSpec{800.0, 2};
  lib.spec(FuType::kDiv) = FuSpec{1400.0, 8};
  lib.spec(FuType::kShift) = FuSpec{90.0, 1};
  return lib;
}

}  // namespace mhs::hw
