// Register-transfer component library.
//
// Characterizes the functional units, registers, multiplexers, and control
// logic from which mhs::hw builds datapaths. Areas are abstract gate-count
// units; delays are clock cycles. The default library is loosely modelled
// on a mid-1990s standard-cell process, which is the technology context of
// the paper, but every figure/bench depends only on cost *ratios*.
#pragma once

#include <cstddef>
#include <string>

#include "base/error.h"
#include "ir/cdfg.h"

namespace mhs::hw {

/// Functional-unit classes the scheduler allocates.
enum class FuType {
  kAlu,    ///< add/sub/neg/abs/min/max/compare/select/logic
  kMul,    ///< multiplier
  kDiv,    ///< divider
  kShift,  ///< barrel shifter
};

inline constexpr std::size_t kNumFuTypes = 4;

/// All FuType values, for iteration.
const FuType* all_fu_types();

/// Human-readable FU name.
const char* fu_name(FuType type);

/// Which FU class executes a CDFG compute op.
/// Precondition: op_is_compute(kind).
FuType fu_for_op(ir::OpKind kind);

/// Cost/latency characterization of one FU class.
struct FuSpec {
  double area = 0.0;
  /// Latency in cycles (an op occupies the FU for this many steps).
  std::size_t latency = 1;
};

/// The component library: FU specs plus storage/steering/control costs.
struct ComponentLibrary {
  FuSpec fu[kNumFuTypes];
  /// Area of one word-wide register.
  double register_area = 8.0;
  /// Area of one 2:1 mux leg; an n-input mux costs (n-1) legs.
  double mux_leg_area = 2.0;
  /// Controller model: area = base + per_state * states + per_bit * bits.
  double controller_base_area = 20.0;
  double controller_area_per_state = 4.0;
  double controller_area_per_ctrl_bit = 1.0;

  const FuSpec& spec(FuType type) const {
    return fu[static_cast<std::size_t>(type)];
  }
  FuSpec& spec(FuType type) { return fu[static_cast<std::size_t>(type)]; }

  /// Latency of a CDFG op under this library (0 for non-compute ops).
  std::size_t op_latency(ir::OpKind kind) const;
};

/// A reasonable default characterization (ALU=1cy, MUL=2cy, DIV=8cy).
ComponentLibrary default_library();

}  // namespace mhs::hw
