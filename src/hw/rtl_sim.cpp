#include "hw/rtl_sim.h"

#include <array>
#include <limits>

namespace mhs::hw {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/// One tagged storage element: which op's value it holds, if any.
struct Cell {
  std::size_t op = kNone;
  std::int64_t value = 0;
};

}  // namespace

std::int64_t wrap_to_width(std::int64_t v, std::size_t width) {
  if (width >= 64) return v;
  const unsigned shift = static_cast<unsigned>(64 - width);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(v) << shift) >>
         shift;
}

RtlSim::RtlSim(const HlsResult& impl) : impl_(&impl) {
  const Schedule& schedule = impl.schedule;
  const ir::Cdfg& cdfg = schedule.cdfg();
  const ComponentLibrary& lib = schedule.library();
  const std::size_t steps = schedule.num_steps();
  issue_at_.assign(steps, {});
  output_at_.assign(steps, {});
  for (const ir::OpId id : cdfg.op_ids()) {
    const ir::Op& op = cdfg.op(id);
    if (ir::op_is_compute(op.kind)) {
      // The commit model assumes results appear strictly after issue.
      MHS_CHECK(lib.op_latency(op.kind) >= 1,
                "RtlSim requires latency >= 1 for " << ir::op_name(op.kind));
      issue_at_.at(schedule.start_of(id)).push_back(id);
      ++compute_ops_;
    } else if (op.kind == ir::OpKind::kOutput) {
      const std::size_t s = schedule.start_of(id);
      if (s < steps) {
        output_at_[s].push_back(id);
      } else {
        epilogue_outputs_.push_back(id);
      }
    }
  }
  check_controller();
}

std::size_t RtlSim::num_states() const { return impl_->schedule.num_steps(); }

std::size_t RtlSim::num_fu_instances() const {
  std::size_t total = 0;
  for (std::size_t t = 0; t < kNumFuTypes; ++t) {
    total += impl_->binding.fu_counts.count[t];
  }
  return total;
}

std::size_t RtlSim::num_registers() const {
  return impl_->binding.num_registers;
}

void RtlSim::check_controller() const {
  const Schedule& schedule = impl_->schedule;
  const Binding& binding = impl_->binding;
  const Controller& ctl = impl_->controller;
  const ir::Cdfg& cdfg = schedule.cdfg();
  const ComponentLibrary& lib = schedule.library();
  const std::size_t steps = schedule.num_steps();
  MHS_ASSERT(ctl.num_states() == steps,
             "controller has " << ctl.num_states() << " states for "
                               << steps << " control steps");

  // Expected occupancy per (step, FU enable bit) and the register-load
  // state of every registered value, straight from schedule + binding.
  std::vector<std::vector<bool>> fu_active(
      steps, std::vector<bool>(ctl.num_control_bits(), false));
  std::vector<std::vector<bool>> reg_loads(
      steps, std::vector<bool>(ctl.num_control_bits(), false));
  for (const ir::OpId id : cdfg.op_ids()) {
    const ir::Op& op = cdfg.op(id);
    if (ir::op_is_compute(op.kind)) {
      const std::size_t enable = ctl.fu_enable_bit(
          fu_for_op(op.kind), binding.fu_instance[id.index()]);
      const std::size_t start = schedule.start_of(id);
      const std::size_t lat = lib.op_latency(op.kind);
      for (std::size_t s = start; s < start + lat && s < steps; ++s) {
        fu_active[s][enable] = true;
      }
    }
    const std::size_t reg = binding.register_of[id.index()];
    if (reg != kNone) {
      const std::size_t latch =
          std::min(schedule.end_of(id), steps == 0 ? 0 : steps - 1);
      reg_loads[latch][ctl.register_load_bit(reg)] = true;
    }
  }
  for (std::size_t s = 0; s < steps; ++s) {
    for (std::size_t t = 0; t < kNumFuTypes; ++t) {
      const FuType type = all_fu_types()[t];
      for (std::size_t i = 0; i < binding.fu_counts.count[t]; ++i) {
        const std::size_t bit = ctl.fu_enable_bit(type, i);
        MHS_ASSERT(ctl.asserted(s, bit) == fu_active[s][bit],
                   "controller state " << s << ": " << fu_name(type) << "["
                                       << i << "] enable bit disagrees with "
                                          "the schedule");
      }
    }
    for (std::size_t r = 0; r < binding.num_registers; ++r) {
      const std::size_t bit = ctl.register_load_bit(r);
      MHS_ASSERT(ctl.asserted(s, bit) == reg_loads[s][bit],
                 "controller state " << s << ": register " << r
                                     << " load bit disagrees with the "
                                        "binding's latch step");
    }
  }
}

RtlTrace RtlSim::run(const std::map<std::string, std::int64_t>& inputs) const {
  const Schedule& schedule = impl_->schedule;
  const Binding& binding = impl_->binding;
  const ir::Cdfg& cdfg = schedule.cdfg();
  const std::size_t steps = schedule.num_steps();

  // Input/const ports: latched once, wrapped to the port's proven width
  // (identity when unnarrowed or when the input honors its declared
  // range — the narrowing soundness contract).
  std::vector<std::int64_t> port(cdfg.num_ops(), 0);
  std::vector<bool> is_port(cdfg.num_ops(), false);
  for (const ir::OpId id : cdfg.op_ids()) {
    const ir::Op& op = cdfg.op(id);
    if (op.kind == ir::OpKind::kConst) {
      port[id.index()] = wrap_to_width(op.value, schedule.width_of(id));
      is_port[id.index()] = true;
    } else if (op.kind == ir::OpKind::kInput) {
      const auto it = inputs.find(op.name);
      MHS_CHECK(it != inputs.end(),
                "RtlSim: missing input '" << op.name << "'");
      port[id.index()] = wrap_to_width(it->second, schedule.width_of(id));
      is_port[id.index()] = true;
    }
  }

  // The bound storage: one output latch per FU instance, one cell per
  // register. Every value a consumer reads must be reachable through one
  // of these — that is the structural claim under test.
  std::array<std::vector<Cell>, kNumFuTypes> fu_latch;
  for (std::size_t t = 0; t < kNumFuTypes; ++t) {
    fu_latch[t].assign(binding.fu_counts.count[t], Cell{});
  }
  std::vector<Cell> reg_file(binding.num_registers, Cell{});

  // In-flight results: computed at issue, committed to their FU latch
  // (and register, if allocated) when their latency elapses.
  struct Pending {
    ir::OpId op;
    std::size_t ready;  // step at whose clock edge the value commits
    std::int64_t value;
  };
  std::vector<Pending> pending;

  RtlTrace trace;
  trace.register_file.assign(binding.num_registers, 0);

  const auto commit_ready = [&](std::size_t step) {
    for (std::size_t i = 0; i < pending.size();) {
      if (pending[i].ready != step) {
        ++i;
        continue;
      }
      const ir::OpId id = pending[i].op;
      const auto type = static_cast<std::size_t>(fu_for_op(cdfg.op(id).kind));
      fu_latch[type][binding.fu_instance[id.index()]] =
          Cell{id.index(), pending[i].value};
      if (const std::size_t r = binding.register_of[id.index()]; r != kNone) {
        reg_file[r] = Cell{id.index(), pending[i].value};
        ++trace.register_writes;
      }
      pending[i] = pending.back();
      pending.pop_back();
    }
  };

  // Reads an operand at step `s` through a bound resource only.
  const auto read = [&](ir::OpId o, std::size_t s) -> std::int64_t {
    if (is_port[o.index()]) return port[o.index()];
    if (const std::size_t r = binding.register_of[o.index()];
        r != kNone && reg_file[r].op == o.index()) {
      return reg_file[r].value;
    }
    const ir::Op& op = cdfg.op(o);
    MHS_ASSERT(ir::op_is_compute(op.kind),
               "RtlSim: operand " << o << " is not a port or compute value");
    const auto type = static_cast<std::size_t>(fu_for_op(op.kind));
    const Cell& latch = fu_latch[type][binding.fu_instance[o.index()]];
    MHS_ASSERT(latch.op == o.index(),
               "RtlSim: value of op " << o << " unreachable at step " << s
                                      << " — its FU latch was recycled and "
                                         "no register holds it");
    return latch.value;
  };

  std::vector<std::int64_t> args;
  const auto latch_output = [&](ir::OpId id, std::size_t s) {
    trace.outputs[cdfg.op(id).name] = read(cdfg.op(id).operands[0], s);
  };

  for (std::size_t s = 0; s < steps; ++s) {
    commit_ready(s);                          // clock edge entering step s
    for (const ir::OpId id : output_at_[s]) {  // output ports latch
      latch_output(id, s);
    }
    for (const ir::OpId id : issue_at_[s]) {  // FUs start their ops
      const ir::Op& op = cdfg.op(id);
      args.clear();
      for (const ir::OpId operand : op.operands) {
        args.push_back(read(operand, s));
      }
      const std::int64_t result = wrap_to_width(ir::apply_op(op.kind, args),
                                                schedule.width_of(id));
      pending.push_back(Pending{id, schedule.end_of(id), result});
      ++trace.fu_fires;
    }
    ++trace.cycles;
  }
  // Values completing at the makespan commit on the final edge; outputs
  // scheduled there latch from them.
  commit_ready(steps);
  for (const ir::OpId id : epilogue_outputs_) {
    latch_output(id, steps);
  }
  MHS_ASSERT(pending.empty(), "RtlSim: " << pending.size()
                                         << " results never committed");

  for (std::size_t r = 0; r < binding.num_registers; ++r) {
    trace.register_file[r] = reg_file[r].value;
  }
  return trace;
}

}  // namespace mhs::hw
