#include "hw/fsm.h"

#include <cmath>
#include <sstream>

namespace mhs::hw {

namespace {
std::size_t ceil_log2(std::size_t n) {
  std::size_t bits = 0;
  std::size_t cap = 1;
  while (cap < n) {
    cap <<= 1;
    ++bits;
  }
  return bits;
}
}  // namespace

Controller::Controller(const Schedule& schedule, const Binding& binding) {
  const ir::Cdfg& cdfg = schedule.cdfg();
  const ComponentLibrary& lib = schedule.library();

  // Lay out the control word: FU enables, then register loads, then mux
  // select fields.
  std::size_t bit = 0;
  for (std::size_t t = 0; t < kNumFuTypes; ++t) {
    fu_bit_base_[t] = bit;
    bit += binding.fu_counts.count[t];
  }
  reg_bit_base_ = bit;
  bit += binding.num_registers;
  select_bit_base_ = bit;
  for (const std::size_t sources : binding.mux_port_sources) {
    bit += ceil_log2(sources);
  }
  num_bits_ = bit;

  words_.assign(schedule.num_steps(), std::vector<bool>(num_bits_, false));

  for (const ir::OpId id : cdfg.op_ids()) {
    const ir::Op& op = cdfg.op(id);
    if (ir::op_is_compute(op.kind)) {
      const FuType type = fu_for_op(op.kind);
      const std::size_t inst = binding.fu_instance[id.index()];
      const std::size_t enable = fu_enable_bit(type, inst);
      const std::size_t start = schedule.start_of(id);
      const std::size_t lat = lib.op_latency(op.kind);
      for (std::size_t s = start; s < start + lat && s < words_.size(); ++s) {
        words_[s][enable] = true;
      }
    }
    const std::size_t reg = binding.register_of[id.index()];
    if (reg != std::numeric_limits<std::size_t>::max()) {
      // The register latches the value on the step it becomes available.
      const std::size_t latch_step =
          std::min(schedule.end_of(id),
                   words_.empty() ? 0 : words_.size() - 1);
      words_[latch_step][register_load_bit(reg)] = true;
    }
  }
}

const std::vector<bool>& Controller::word(std::size_t state) const {
  MHS_CHECK(state < words_.size(),
            "state " << state << " out of range (controller has "
                     << words_.size() << " states)");
  return words_[state];
}

bool Controller::asserted(std::size_t state, std::size_t bit) const {
  const auto& w = word(state);
  MHS_CHECK(bit < w.size(), "control bit " << bit << " out of range");
  return w[bit];
}

double Controller::area(const ComponentLibrary& lib) const {
  return lib.controller_base_area +
         lib.controller_area_per_state * static_cast<double>(num_states()) +
         lib.controller_area_per_ctrl_bit * static_cast<double>(num_bits_);
}

std::size_t Controller::fu_enable_bit(FuType type, std::size_t inst) const {
  return fu_bit_base_[static_cast<std::size_t>(type)] + inst;
}

std::size_t Controller::register_load_bit(std::size_t reg) const {
  return reg_bit_base_ + reg;
}

std::string Controller::dump() const {
  std::ostringstream os;
  for (std::size_t s = 0; s < words_.size(); ++s) {
    os << "S" << s << ": ";
    for (const bool b : words_[s]) os << (b ? '1' : '0');
    os << '\n';
  }
  return os.str();
}

}  // namespace mhs::hw
