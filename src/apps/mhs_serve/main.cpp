// mhs_serve — the co-design service daemon.
//
// Serves the whole library behind the unified svc:: schema:
//
//   POST /v1/flow            one end-to-end codesign flow
//   POST /v1/explore         a strategy x objective design-space sweep
//   POST /v1/cosim           HLS + co-simulation of one kernel
//   POST /v1/lint            verifier + lint over serialized IR
//   POST /v1/fault-campaign  co-simulation under a fault plan
//   GET  /v1/health          liveness + endpoint listing
//   GET  /v1/metrics         dispatcher stats + obs registry summary
//                            (?format=prometheus for text exposition)
//   GET  /v1/requests        flight recorder: last N completed requests
//   GET  /v1/trace/<id>      per-request Chrome trace (Perfetto-loadable)
//
// See README.md ("Running the service" / "Observability") for curl
// examples.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/obs.h"
#include "svc/dispatch.h"
#include "svc/server.h"

namespace {

constexpr const char kUsage[] =
    "usage: mhs_serve [options]\n"
    "\n"
    "options:\n"
    "  --host <addr>         bind address (default 127.0.0.1)\n"
    "  --port <n>            TCP port; 0 picks an ephemeral port "
    "(default 8080)\n"
    "  --workers <n>         worker threads; 0 = deterministic replay mode\n"
    "                        (requests evaluated inline, in arrival order)\n"
    "                        (default 4)\n"
    "  --max-connections <n> concurrent connections before 503 (default 64)\n"
    "  --max-queue <n>       queued requests before 503 (default 128)\n"
    "  --replay              shorthand for --workers 0\n"
    "  --recorder-entries <n> flight-recorder ring size for /v1/requests\n"
    "                        (default 256)\n"
    "  --trace-entries <n>   Chrome traces kept for /v1/trace/<id>\n"
    "                        (default 64)\n"
    "  --slow-trace-us <n>   pin traces of requests at or above this\n"
    "                        end-to-end latency (default 100000; 0 = off)\n"
    "  --no-tracing          disable per-request registries (requests\n"
    "                        record into the global registry only)\n"
    "  --help                this text\n";

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

bool parse_number(const char* text, long* out) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < 0) return false;
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  mhs::svc::ServerConfig config;
  config.port = 8080;
  config.slow_trace_us = 100000;  // pin traces of requests over 100 ms

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto number_arg = [&](long* out) {
      if (i + 1 >= argc || !parse_number(argv[++i], out)) {
        std::fprintf(stderr, "mhs_serve: %s needs a non-negative number\n",
                     arg.c_str());
        return false;
      }
      return true;
    };
    long value = 0;
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--host") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mhs_serve: --host needs an address\n");
        return 2;
      }
      config.host = argv[++i];
    } else if (arg == "--port") {
      if (!number_arg(&value) || value > 65535) return 2;
      config.port = static_cast<std::uint16_t>(value);
    } else if (arg == "--workers") {
      if (!number_arg(&value)) return 2;
      config.workers = static_cast<std::size_t>(value);
    } else if (arg == "--max-connections") {
      if (!number_arg(&value) || value == 0) return 2;
      config.max_connections = static_cast<std::size_t>(value);
    } else if (arg == "--max-queue") {
      if (!number_arg(&value)) return 2;
      config.max_queue = static_cast<std::size_t>(value);
    } else if (arg == "--replay") {
      config.workers = 0;
    } else if (arg == "--recorder-entries") {
      if (!number_arg(&value) || value == 0) return 2;
      config.recorder_entries = static_cast<std::size_t>(value);
    } else if (arg == "--trace-entries") {
      if (!number_arg(&value) || value == 0) return 2;
      config.trace_entries = static_cast<std::size_t>(value);
    } else if (arg == "--slow-trace-us") {
      if (!number_arg(&value)) return 2;
      config.slow_trace_us = static_cast<std::uint64_t>(value);
    } else if (arg == "--no-tracing") {
      config.request_tracing = false;
    } else {
      std::fprintf(stderr, "mhs_serve: unknown option %s\n%s", arg.c_str(),
                   kUsage);
      return 2;
    }
  }

  // A registry makes /v1/metrics meaningful (svc.* counters, flow spans).
  mhs::obs::Registry registry;
  mhs::obs::ScopedRegistry scoped(registry);

  mhs::svc::Dispatcher dispatcher;
  config.metrics_text = [&dispatcher] {
    return dispatcher.metrics_prometheus();
  };
  mhs::svc::Server server(
      config,
      [&dispatcher](const mhs::svc::Request& request,
                    const mhs::obs::TraceContext& trace,
                    mhs::svc::RequestOutcome* outcome) {
        return dispatcher.handle(request, trace, outcome);
      });
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "mhs_serve: %s\n", error.c_str());
    return 1;
  }
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::printf("mhs_serve: listening on %s:%u (%s)\n", config.host.c_str(),
              static_cast<unsigned>(server.port()),
              server.replay() ? "replay mode"
                              : "worker pool");
  std::fflush(stdout);

  sigset_t mask;
  sigemptyset(&mask);
  while (g_stop == 0) sigsuspend(&mask);

  server.stop();
  const mhs::svc::ServerStats stats = server.stats();
  std::printf(
      "mhs_serve: stopped (accepted=%llu served=%llu overloaded=%llu "
      "conn_rejected=%llu parse_errors=%llu)\n",
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.served),
      static_cast<unsigned long long>(stats.overloaded),
      static_cast<unsigned long long>(stats.conn_rejected),
      static_cast<unsigned long long>(stats.parse_errors));
  return 0;
}
