#include "apps/mhs_lint/lint_lib.h"

#include <fstream>
#include <iostream>
#include <ostream>
#include <sstream>

#include "analysis/lint.h"
#include "obs/json.h"
#include "svc/api.h"
#include "svc/artifact.h"

namespace mhs::apps {

namespace {

constexpr const char* kUsage =
    "usage: mhs_lint [--json] [--strict] [--ranges] <file>...\n"
    "       mhs_lint --check-json <file>...\n"
    "       mhs_lint --server-json [--strict] [--ranges] <file>... | -\n"
    "\n"
    "Verifies and lints serialized IR artifacts (taskgraph, network, or\n"
    "cdfg text format). Exit 0 when no errors, 1 when any error\n"
    "diagnostic (or any warning with --strict), 2 on usage/IO/parse\n"
    "failure.\n"
    "\n"
    "  --json        print findings as a JSON array instead of text\n"
    "  --strict      treat warnings as failures\n"
    "  --ranges      also run the CDFG2xx value-range lints (abstract\n"
    "                interpretation over declared input ranges)\n"
    "  --check-json  instead of IR, check each file is well-formed JSON\n"
    "                (reports line and column of the first syntax error)\n"
    "  --server-json speak the service schema: wrap the files into the\n"
    "                same request POST /v1/lint accepts (or, with '-',\n"
    "                read a complete request JSON from stdin) and print\n"
    "                the full response JSON; exit codes are unchanged\n";

bool read_file(const std::string& path, std::string* text, std::ostream& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err << "mhs_lint: cannot read " << path << "\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *text = buffer.str();
  return true;
}

/// Loads one artifact structurally and analyzes it through the shared
/// svc::artifact plumbing (the same code path POST /v1/lint runs, which
/// is what keeps the CLI and the endpoint byte-identical). Returns false
/// (with a message on `err`) when the text does not even tokenize.
bool analyze_file(const std::string& path, const std::string& text,
                  analysis::Diagnostics* diags, bool ranges,
                  std::ostream& err) {
  std::string reason;
  if (svc::analyze_artifact(text, diags, &reason, ranges)) return true;
  err << "mhs_lint: " << path << ": " << reason << "\n";
  return false;
}

int check_json_files(const std::vector<std::string>& files, std::ostream& out,
                     std::ostream& err) {
  if (files.empty()) {
    err << kUsage;
    return 2;
  }
  int exit_code = 0;
  for (const std::string& path : files) {
    std::string text;
    if (!read_file(path, &text, err)) {
      exit_code = 2;
      continue;
    }
    obs::JsonError error;
    if (obs::json_parse(text, &error)) {
      out << path << ": valid JSON\n";
    } else {
      out << path << ": " << error.str() << "\n";
      if (exit_code == 0) exit_code = 1;
    }
  }
  return exit_code;
}

/// The --server-json mode: build (or read) a /v1/lint request, run it
/// through the same svc::run seam the daemon uses, print the response
/// JSON, and map the outcome back onto mhs_lint's exit codes.
int serve_json(const std::vector<std::string>& files, bool strict,
               bool ranges, std::ostream& out, std::ostream& err) {
  svc::Request request;
  request.endpoint = svc::Endpoint::kLint;
  request.lint.strict = strict;
  request.lint.ranges = ranges;
  if (files.size() == 1 && files[0] == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    std::string reason;
    std::optional<svc::Request> parsed =
        svc::Request::from_json(buffer.str(), &reason);
    if (!parsed) {
      err << "mhs_lint: " << reason << "\n";
      return 2;
    }
    if (parsed->endpoint != svc::Endpoint::kLint) {
      err << "mhs_lint: request endpoint must be \"lint\"\n";
      return 2;
    }
    request = std::move(*parsed);
  } else {
    if (files.empty()) {
      err << kUsage;
      return 2;
    }
    for (const std::string& path : files) {
      std::string text;
      if (!read_file(path, &text, err)) return 2;
      request.lint.artifacts.push_back(std::move(text));
    }
  }

  const svc::Response response = svc::run(request);
  out << response.json() << "\n";
  if (!response.ok()) {
    err << "mhs_lint: " << response.error << "\n";
    return 2;
  }
  const std::optional<obs::JsonValue> result =
      obs::json_parse(response.result_json);
  const obs::JsonValue* exit_code =
      result.has_value() ? result->find("exit_code") : nullptr;
  return exit_code != nullptr && exit_code->is_number()
             ? static_cast<int>(exit_code->as_number())
             : 0;
}

}  // namespace

ArtifactKind sniff_artifact(const std::string& text) {
  switch (svc::sniff_artifact(text)) {
    case svc::ArtifactKind::kTaskGraph: return ArtifactKind::kTaskGraph;
    case svc::ArtifactKind::kNetwork:   return ArtifactKind::kNetwork;
    case svc::ArtifactKind::kCdfg:      return ArtifactKind::kCdfg;
    case svc::ArtifactKind::kUnknown:   break;
  }
  return ArtifactKind::kUnknown;
}

int run_lint(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  bool json = false;
  bool strict = false;
  bool ranges = false;
  bool check_json = false;
  bool server_json = false;
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    if (arg == "--json") {
      json = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--ranges") {
      ranges = true;
    } else if (arg == "--check-json") {
      check_json = true;
    } else if (arg == "--server-json") {
      server_json = true;
    } else if (arg == "--help" || arg == "-h") {
      out << kUsage;
      return 0;
    } else if (arg == "-" && server_json) {
      files.push_back(arg);  // stdin sentinel, only meaningful here
    } else if (!arg.empty() && arg[0] == '-') {
      err << "mhs_lint: unknown option " << arg << "\n" << kUsage;
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  if (check_json) {
    return check_json_files(files, out, err);
  }
  if (server_json) {
    return serve_json(files, strict, ranges, out, err);
  }
  if (files.empty()) {
    err << kUsage;
    return 2;
  }

  analysis::Diagnostics diags;
  for (const std::string& path : files) {
    std::string text;
    if (!read_file(path, &text, err)) return 2;
    if (!analyze_file(path, text, &diags, ranges, err)) return 2;
  }

  if (json) {
    out << diags.json() << "\n";
  } else if (diags.empty()) {
    out << "clean: no findings\n";
  } else {
    out << diags.str();
  }

  if (diags.has_errors()) return 1;
  if (strict && !diags.clean()) return 1;
  return 0;
}

}  // namespace mhs::apps
