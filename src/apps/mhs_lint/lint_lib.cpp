#include "apps/mhs_lint/lint_lib.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "analysis/lint.h"
#include "analysis/verify.h"
#include "base/error.h"
#include "ir/serialize.h"
#include "obs/json.h"

namespace mhs::apps {

namespace {

constexpr const char* kUsage =
    "usage: mhs_lint [--json] [--strict] <file>...\n"
    "       mhs_lint --check-json <file>...\n"
    "\n"
    "Verifies and lints serialized IR artifacts (taskgraph, network, or\n"
    "cdfg text format). Exit 0 when no errors, 1 when any error\n"
    "diagnostic (or any warning with --strict), 2 on usage/IO/parse\n"
    "failure.\n"
    "\n"
    "  --json        print findings as a JSON array instead of text\n"
    "  --strict      treat warnings as failures\n"
    "  --check-json  instead of IR, check each file is well-formed JSON\n"
    "                (reports line and column of the first syntax error)\n";

bool read_file(const std::string& path, std::string* text, std::ostream& err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err << "mhs_lint: cannot read " << path << "\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *text = buffer.str();
  return true;
}

/// Loads one artifact structurally and analyzes it. Returns false (with
/// a message on `err`) when the text does not even tokenize.
bool analyze_file(const std::string& path, const std::string& text,
                  analysis::Diagnostics* diags, std::ostream& err) {
  const ArtifactKind kind = sniff_artifact(text);
  try {
    switch (kind) {
      case ArtifactKind::kTaskGraph:
        diags->merge(analysis::analyze_task_graph(
            ir::task_graph_from_text(text, /*validate=*/false)));
        return true;
      case ArtifactKind::kNetwork:
        diags->merge(analysis::analyze_network(
            ir::process_network_from_text(text, /*validate=*/false)));
        return true;
      case ArtifactKind::kCdfg:
        diags->merge(analysis::analyze_cdfg(ir::cdfg_from_text(text)));
        return true;
      case ArtifactKind::kUnknown:
        err << "mhs_lint: " << path
            << ": unrecognized artifact (expected a file starting with "
               "'taskgraph', 'network', or 'cdfg')\n";
        return false;
    }
  } catch (const Error& e) {
    err << "mhs_lint: " << path << ": " << e.what() << "\n";
    return false;
  }
  return false;
}

int check_json_files(const std::vector<std::string>& files, std::ostream& out,
                     std::ostream& err) {
  if (files.empty()) {
    err << kUsage;
    return 2;
  }
  int exit_code = 0;
  for (const std::string& path : files) {
    std::string text;
    if (!read_file(path, &text, err)) {
      exit_code = 2;
      continue;
    }
    obs::JsonError error;
    if (obs::json_parse(text, &error)) {
      out << path << ": valid JSON\n";
    } else {
      out << path << ": " << error.str() << "\n";
      if (exit_code == 0) exit_code = 1;
    }
  }
  return exit_code;
}

}  // namespace

ArtifactKind sniff_artifact(const std::string& text) {
  std::istringstream in(text);
  std::string keyword;
  // Skip comment and blank lines; the first real token decides.
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream tokens(line);
    if (!(tokens >> keyword) || keyword[0] == '#') continue;
    if (keyword == "taskgraph") return ArtifactKind::kTaskGraph;
    if (keyword == "network") return ArtifactKind::kNetwork;
    if (keyword == "cdfg") return ArtifactKind::kCdfg;
    return ArtifactKind::kUnknown;
  }
  return ArtifactKind::kUnknown;
}

int run_lint(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  bool json = false;
  bool strict = false;
  bool check_json = false;
  std::vector<std::string> files;
  for (const std::string& arg : args) {
    if (arg == "--json") {
      json = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--check-json") {
      check_json = true;
    } else if (arg == "--help" || arg == "-h") {
      out << kUsage;
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "mhs_lint: unknown option " << arg << "\n" << kUsage;
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  if (check_json) {
    return check_json_files(files, out, err);
  }
  if (files.empty()) {
    err << kUsage;
    return 2;
  }

  analysis::Diagnostics diags;
  for (const std::string& path : files) {
    std::string text;
    if (!read_file(path, &text, err)) return 2;
    if (!analyze_file(path, text, &diags, err)) return 2;
  }

  if (json) {
    out << diags.json() << "\n";
  } else if (diags.empty()) {
    out << "clean: no findings\n";
  } else {
    out << diags.str();
  }

  if (diags.has_errors()) return 1;
  if (strict && !diags.clean()) return 1;
  return 0;
}

}  // namespace mhs::apps
