// The library half of the mhs_lint CLI, split out so the argument
// handling, artifact sniffing, and exit-code mapping are unit testable
// without spawning the binary.
//
// mhs_lint loads serialized IR artifacts (ir/serialize.h text format),
// runs the mhs::analysis verifier and lint passes over each, and prints
// the diagnostics:
//
//   mhs_lint graph.tg kernel.cdfg        # text diagnostics
//   mhs_lint --json kernel.cdfg          # JSON array of findings
//   mhs_lint --strict net.pn             # warnings also fail (exit 1)
//   mhs_lint --check-json trace.json     # JSON well-formedness, with
//                                        # line/column on parse errors
//
// The artifact type is sniffed from the first keyword of the file
// (`taskgraph`, `network`, or `cdfg`); loading is structural
// (validate=false), so hand-corrupted artifacts reach the verifier and
// are reported with stable diagnostic codes instead of a parse abort.
//
// Exit codes: 0 — no errors (warnings allowed unless --strict);
//             1 — at least one error diagnostic (or a warning under
//                 --strict);
//             2 — usage error, unreadable file, or untokenizable input.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mhs::apps {

/// Runs the whole CLI over `args` (argv[1..]), writing diagnostics to
/// `out` and usage/IO errors to `err`. Returns the process exit code.
int run_lint(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err);

/// The artifact type sniffed from the first keyword of serialized text.
enum class ArtifactKind { kTaskGraph, kNetwork, kCdfg, kUnknown };

/// Sniffs the artifact type: the first whitespace-delimited token must
/// be `taskgraph`, `network`, or `cdfg`.
ArtifactKind sniff_artifact(const std::string& text);

}  // namespace mhs::apps
