#include <iostream>
#include <string>
#include <vector>

#include "apps/mhs_lint/lint_lib.h"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return mhs::apps::run_lint(args, std::cout, std::cerr);
}
