// System-level workloads: task graphs and process networks that model the
// embedded applications the paper's example systems run.
#pragma once

#include "ir/cdfg.h"
#include "ir/process_network.h"
#include "ir/task_graph.h"

namespace mhs::apps {

/// A JPEG-style still-image pipeline: color convert → 2×DCT → quantize →
/// zigzag → RLE → entropy code, with cost annotations typical of the
/// stages (DCT dominates and is highly parallel).
ir::TaskGraph jpeg_pipeline_graph();

/// Kernel-backed version of the image pipeline: returns the graph plus a
/// per-task kernel list for core::run_codesign_flow (tasks without a
/// behavioural kernel keep annotation-only costs). The caller owns the
/// returned kernels via the provided storage vector.
struct KernelBackedWorkload {
  ir::TaskGraph graph;
  /// Storage for the kernels; pointers below index into this.
  std::vector<ir::Cdfg> kernel_storage;
  /// Per-task kernel (parallel to graph tasks; nullptr = annotation only).
  std::vector<const ir::Cdfg*> kernels;
};
KernelBackedWorkload dsp_chain_workload();

/// An EKG-style patient monitor as a process network: sampler → baseline
/// filter → QRS detector → heart-rate calculator → {display, logger},
/// with an alarm path. Computation/communication annotated per process.
ir::ProcessNetwork ekg_monitor_network();

/// A packet-processing network: rx → {checksum, classify} → route → tx,
/// with high traffic volumes (communication-dominated).
ir::ProcessNetwork packet_pipeline_network();

/// Parameterized producer→(N workers)→consumer network with adjustable
/// available parallelism — the knob of the E9 experiment.
ir::ProcessNetwork worker_farm_network(std::size_t workers,
                                       double work_cycles,
                                       double message_bytes);

}  // namespace mhs::apps
