// Behavioural kernels used by the examples, tests, and benchmarks.
//
// Each builder returns a Cdfg over 64-bit integers; fixed-point kernels
// use Q16.16 coefficients baked in as constants. The kernels deliberately
// span the "nature of computation" axis of §3.3:
//
//   dct8        — wide, multiplier-rich, highly parallel (HW-affine)
//   fir         — MAC chain, moderately parallel
//   iir_biquad  — short recurrence, moderate
//   xtea_round  — long dependency chain, control-free crypto (SW-ish)
//   median5     — compare/select network (benefits from native select)
//   checksum    — xor/shift/add chain, serial
#pragma once

#include <cstddef>

#include "ir/cdfg.h"

namespace mhs::apps {

/// N-tap FIR filter: inputs x0..x{taps-1}, Q16.16 low-pass coefficients,
/// output "y" (Q16.16). Precondition: 1 <= taps <= 64.
ir::Cdfg fir_kernel(std::size_t taps);

/// Direct-form-I biquad section: inputs x, x1, x2, y1, y2; output "y".
ir::Cdfg iir_biquad_kernel();

/// 8-point 1-D DCT-II (integer, Q16.16 coefficient matrix): inputs
/// x0..x7, outputs X0..X7.
ir::Cdfg dct8_kernel();

/// `rounds` rounds of the XTEA block cipher: inputs v0, v1, k0..k3;
/// outputs v0_out, v1_out. Precondition: rounds >= 1.
ir::Cdfg xtea_kernel(std::size_t rounds);

/// 5-element median network: inputs a..e, output "median".
ir::Cdfg median5_kernel();

/// Fletcher-style checksum over `words` inputs w0..: outputs "ck_a","ck_b".
ir::Cdfg checksum_kernel(std::size_t words);

/// Sum of absolute differences over `n` pairs (inputs a_i, b_i;
/// output "sad") — the motion-estimation kernel of video workloads.
ir::Cdfg sad_kernel(std::size_t n);

/// n x n integer matrix multiply: inputs a{r}{c}, b{r}{c}; outputs
/// c{r}{c}. Wide and multiplier-rich. Precondition: 1 <= n <= 6.
ir::Cdfg matmul_kernel(std::size_t n);

/// Sobel gradient magnitude over one 3x3 window: inputs p00..p22,
/// output "mag" = |gx| + |gy| — the edge-detection inner loop.
ir::Cdfg sobel3_kernel();

/// Reciprocal-multiply quantizer over `n` coefficients: inputs x0..,
/// outputs q0.. = clamp((x * recip_i) >> 16, -bound, bound). The
/// division-free quantization used by image codecs.
ir::Cdfg quantize_kernel(std::size_t n);

}  // namespace mhs::apps
