#include "apps/kernels.h"

#include <cmath>
#include <string>

#include "base/error.h"
#include "base/fixed_point.h"

namespace mhs::apps {

namespace {

/// Q16.16 representation of a double coefficient.
std::int64_t q16(double v) { return Q16::from_double(v).raw(); }

/// value * coeff in Q16.16: (value * coeff) >> 16.
ir::OpId qmul(ir::Cdfg& c, ir::OpId value, std::int64_t coeff_q16) {
  const ir::OpId k = c.constant(coeff_q16);
  const ir::OpId sixteen = c.constant(16);
  return c.shr(c.mul(value, k), sixteen);
}

}  // namespace

ir::Cdfg fir_kernel(std::size_t taps) {
  MHS_CHECK(taps >= 1 && taps <= 64, "fir taps out of [1,64]");
  ir::Cdfg c("fir" + std::to_string(taps));
  // Windowed-sinc-ish low-pass coefficients, normalized to sum ~ 1.
  std::vector<double> h(taps);
  double sum = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double x = static_cast<double>(i) - static_cast<double>(taps - 1) / 2.0;
    h[i] = std::exp(-0.5 * (x * x) / (static_cast<double>(taps) / 4.0 + 1.0));
    sum += h[i];
  }
  ir::OpId acc = ir::OpId::invalid();
  for (std::size_t i = 0; i < taps; ++i) {
    const ir::OpId x = c.input("x" + std::to_string(i));
    const ir::OpId term = qmul(c, x, q16(h[i] / sum));
    acc = acc.valid() ? c.add(acc, term) : term;
  }
  c.output("y", acc);
  return c;
}

ir::Cdfg iir_biquad_kernel() {
  ir::Cdfg c("iir_biquad");
  // Butterworth-ish low-pass section.
  const double b0 = 0.2929, b1 = 0.5858, b2 = 0.2929;
  const double a1 = -0.0000, a2 = 0.1716;
  const ir::OpId x = c.input("x");
  const ir::OpId x1 = c.input("x1");
  const ir::OpId x2 = c.input("x2");
  const ir::OpId y1 = c.input("y1");
  const ir::OpId y2 = c.input("y2");
  ir::OpId acc = qmul(c, x, q16(b0));
  acc = c.add(acc, qmul(c, x1, q16(b1)));
  acc = c.add(acc, qmul(c, x2, q16(b2)));
  acc = c.sub(acc, qmul(c, y1, q16(a1)));
  acc = c.sub(acc, qmul(c, y2, q16(a2)));
  c.output("y", acc);
  return c;
}

ir::Cdfg dct8_kernel() {
  ir::Cdfg c("dct8");
  std::vector<ir::OpId> x;
  for (int i = 0; i < 8; ++i) x.push_back(c.input("x" + std::to_string(i)));
  for (int k = 0; k < 8; ++k) {
    ir::OpId acc = ir::OpId::invalid();
    const double scale = k == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
    for (int n = 0; n < 8; ++n) {
      const double coeff =
          scale * std::cos((2.0 * n + 1.0) * k * M_PI / 16.0);
      const ir::OpId term = qmul(c, x[static_cast<std::size_t>(n)], q16(coeff));
      acc = acc.valid() ? c.add(acc, term) : term;
    }
    c.output("X" + std::to_string(k), acc);
  }
  return c;
}

ir::Cdfg xtea_kernel(std::size_t rounds) {
  MHS_CHECK(rounds >= 1, "xtea needs at least one round");
  ir::Cdfg c("xtea" + std::to_string(rounds));
  constexpr std::int64_t kDelta = 0x9E3779B9;
  constexpr std::int64_t kMask = 0xFFFFFFFF;  // keep arithmetic in 32 bits

  ir::OpId v0 = c.input("v0");
  ir::OpId v1 = c.input("v1");
  const ir::OpId key[4] = {c.input("k0"), c.input("k1"), c.input("k2"),
                           c.input("k3")};
  const ir::OpId mask = c.constant(kMask);
  const ir::OpId four = c.constant(4);
  const ir::OpId five = c.constant(5);
  const ir::OpId eleven = c.constant(11);
  const ir::OpId three = c.constant(3);

  std::int64_t sum = 0;
  auto mix = [&](ir::OpId v, ir::OpId other, std::int64_t s,
                 ir::OpId k_lo) {
    // v += (((other << 4) ^ (other >> 5)) + other) ^ (sum + key[..]);
    const ir::OpId shifted =
        c.bxor(c.band(c.shl(other, four), mask), c.shr(other, five));
    const ir::OpId lhs = c.band(c.add(shifted, other), mask);
    const ir::OpId rhs =
        c.band(c.add(c.constant(s & kMask), k_lo), mask);
    return c.band(c.add(v, c.bxor(lhs, rhs)), mask);
  };

  for (std::size_t r = 0; r < rounds; ++r) {
    // key index sum & 3 — sum is a compile-time constant per round, so the
    // key selection is static, exactly as an unrolled XTEA would be.
    v0 = mix(v0, v1, sum, key[static_cast<std::size_t>(sum & 3)]);
    sum = (sum + kDelta) & kMask;
    v1 = mix(v1, v0, sum, key[static_cast<std::size_t>((sum >> 11) & 3)]);
    (void)eleven;
    (void)three;
  }
  c.output("v0_out", v0);
  c.output("v1_out", v1);
  return c;
}

ir::Cdfg median5_kernel() {
  ir::Cdfg c("median5");
  const ir::OpId a = c.input("a");
  const ir::OpId b = c.input("b");
  const ir::OpId d = c.input("c");
  const ir::OpId e = c.input("d");
  const ir::OpId f = c.input("e");
  // Median-of-5 via a small exchange network of min/max pairs.
  auto lo = [&](ir::OpId x, ir::OpId y) { return c.binary(ir::OpKind::kMin, x, y); };
  auto hi = [&](ir::OpId x, ir::OpId y) { return c.binary(ir::OpKind::kMax, x, y); };
  const ir::OpId ab_lo = lo(a, b), ab_hi = hi(a, b);
  const ir::OpId de_lo = lo(d, e), de_hi = hi(d, e);
  const ir::OpId s1 = hi(ab_lo, de_lo);   // drop global min candidate
  const ir::OpId s2 = lo(ab_hi, de_hi);   // drop global max candidate
  const ir::OpId m1 = lo(s1, s2);
  const ir::OpId m2 = hi(s1, s2);
  const ir::OpId med = hi(m1, lo(m2, f));
  c.output("median", med);
  return c;
}

ir::Cdfg checksum_kernel(std::size_t words) {
  MHS_CHECK(words >= 1, "checksum needs at least one word");
  ir::Cdfg c("checksum" + std::to_string(words));
  const ir::OpId mod = c.constant(65535);
  ir::OpId a = c.constant(1);
  ir::OpId b = c.constant(0);
  for (std::size_t i = 0; i < words; ++i) {
    const ir::OpId w = c.input("w" + std::to_string(i));
    a = c.band(c.add(a, w), mod);
    b = c.band(c.add(b, a), mod);
  }
  c.output("ck_a", a);
  c.output("ck_b", b);
  return c;
}

ir::Cdfg sad_kernel(std::size_t n) {
  MHS_CHECK(n >= 1, "sad needs at least one pair");
  ir::Cdfg c("sad" + std::to_string(n));
  ir::OpId acc = ir::OpId::invalid();
  for (std::size_t i = 0; i < n; ++i) {
    const ir::OpId a = c.input("a" + std::to_string(i));
    const ir::OpId b = c.input("b" + std::to_string(i));
    const ir::OpId diff = c.unary(ir::OpKind::kAbs, c.sub(a, b));
    acc = acc.valid() ? c.add(acc, diff) : diff;
  }
  c.output("sad", acc);
  return c;
}

ir::Cdfg matmul_kernel(std::size_t n) {
  MHS_CHECK(n >= 1 && n <= 6, "matmul size out of [1,6]");
  ir::Cdfg c("matmul" + std::to_string(n));
  std::vector<std::vector<ir::OpId>> a(n), b(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = 0; k < n; ++k) {
      a[r].push_back(c.input("a" + std::to_string(r) + std::to_string(k)));
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = 0; k < n; ++k) {
      b[r].push_back(c.input("b" + std::to_string(r) + std::to_string(k)));
    }
  }
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = 0; k < n; ++k) {
      ir::OpId acc = ir::OpId::invalid();
      for (std::size_t j = 0; j < n; ++j) {
        const ir::OpId term = c.mul(a[r][j], b[j][k]);
        acc = acc.valid() ? c.add(acc, term) : term;
      }
      c.output("c" + std::to_string(r) + std::to_string(k), acc);
    }
  }
  return c;
}

ir::Cdfg sobel3_kernel() {
  ir::Cdfg c("sobel3");
  ir::OpId p[3][3];
  for (int r = 0; r < 3; ++r) {
    for (int k = 0; k < 3; ++k) {
      // The Sobel gradient never reads the window's centre pixel, so the
      // kernel does not declare it (a dead input would fail strict lint).
      if (r == 1 && k == 1) continue;
      p[r][k] = c.input("p" + std::to_string(r) + std::to_string(k));
    }
  }
  const ir::OpId two = c.constant(2);
  // gx = (p02 + 2*p12 + p22) - (p00 + 2*p10 + p20)
  const ir::OpId right =
      c.add(c.add(p[0][2], c.mul(two, p[1][2])), p[2][2]);
  const ir::OpId left =
      c.add(c.add(p[0][0], c.mul(two, p[1][0])), p[2][0]);
  const ir::OpId gx = c.sub(right, left);
  // gy = (p20 + 2*p21 + p22) - (p00 + 2*p01 + p02)
  const ir::OpId bottom =
      c.add(c.add(p[2][0], c.mul(two, p[2][1])), p[2][2]);
  const ir::OpId top =
      c.add(c.add(p[0][0], c.mul(two, p[0][1])), p[0][2]);
  const ir::OpId gy = c.sub(bottom, top);
  c.output("mag", c.add(c.unary(ir::OpKind::kAbs, gx),
                        c.unary(ir::OpKind::kAbs, gy)));
  return c;
}

ir::Cdfg quantize_kernel(std::size_t n) {
  MHS_CHECK(n >= 1 && n <= 64, "quantizer size out of [1,64]");
  ir::Cdfg c("quantize" + std::to_string(n));
  const ir::OpId sixteen = c.constant(16);
  for (std::size_t i = 0; i < n; ++i) {
    const ir::OpId x = c.input("x" + std::to_string(i));
    // Reciprocal of a JPEG-ish quant step (steps grow with index).
    const std::int64_t step = static_cast<std::int64_t>(8 + 3 * i);
    const ir::OpId recip = c.constant((std::int64_t{1} << 16) / step);
    const ir::OpId scaled = c.shr(c.mul(x, recip), sixteen);
    // Clamp to [-1024, 1023].
    const ir::OpId lo = c.constant(-1024);
    const ir::OpId hi = c.constant(1023);
    const ir::OpId clamped = c.binary(
        ir::OpKind::kMin, c.binary(ir::OpKind::kMax, scaled, lo), hi);
    c.output("q" + std::to_string(i), clamped);
  }
  return c;
}

}  // namespace mhs::apps
