#include "apps/workloads.h"

#include "apps/kernels.h"

namespace mhs::apps {

namespace {

ir::TaskCosts costs(double sw, double hw_speedup, double area,
                    double modifiability, double parallelism) {
  ir::TaskCosts c;
  c.sw_cycles = sw;
  c.hw_cycles = sw / hw_speedup;
  c.hw_area = area;
  c.sw_size = sw * 0.4;
  c.modifiability = modifiability;
  c.parallelism = parallelism;
  return c;
}

}  // namespace

ir::TaskGraph jpeg_pipeline_graph() {
  ir::TaskGraph g("jpeg_pipeline");
  // Stage costs loosely follow profiling folklore for baseline JPEG:
  // the DCT dominates and parallelizes well; entropy coding is serial
  // and frequently revised (modifiable).
  const ir::TaskId cc = g.add_task(
      "color_convert", costs(3000, 8.0, 900, 0.2, 0.8));
  const ir::TaskId dct_y = g.add_task("dct_luma",
                                      costs(9000, 16.0, 1600, 0.1, 0.95));
  const ir::TaskId dct_c = g.add_task("dct_chroma",
                                      costs(5000, 16.0, 1600, 0.1, 0.95));
  const ir::TaskId quant = g.add_task("quantize",
                                      costs(2200, 6.0, 700, 0.5, 0.7));
  const ir::TaskId zigzag = g.add_task("zigzag",
                                       costs(800, 3.0, 300, 0.3, 0.4));
  const ir::TaskId rle = g.add_task("rle", costs(1500, 2.5, 500, 0.6, 0.2));
  const ir::TaskId entropy = g.add_task(
      "entropy_code", costs(4200, 2.0, 1400, 0.9, 0.1));
  g.add_edge(cc, dct_y, 256);
  g.add_edge(cc, dct_c, 128);
  g.add_edge(dct_y, quant, 256);
  g.add_edge(dct_c, quant, 128);
  g.add_edge(quant, zigzag, 384);
  g.add_edge(zigzag, rle, 384);
  g.add_edge(rle, entropy, 192);
  g.validate();
  return g;
}

KernelBackedWorkload dsp_chain_workload() {
  KernelBackedWorkload w;
  w.graph.set_name("dsp_chain");
  w.kernel_storage.reserve(8);  // pointers below must stay stable

  const ir::TaskId acquire =
      w.graph.add_task("acquire", costs(600, 2.0, 250, 0.2, 0.2));
  w.kernel_storage.push_back(fir_kernel(12));
  const ir::TaskId fir =
      w.graph.add_task("fir12", ir::TaskCosts{});
  w.kernel_storage.push_back(dct8_kernel());
  const ir::TaskId dct = w.graph.add_task("dct8", ir::TaskCosts{});
  w.kernel_storage.push_back(median5_kernel());
  const ir::TaskId med = w.graph.add_task("median5", ir::TaskCosts{});
  w.kernel_storage.push_back(checksum_kernel(8));
  const ir::TaskId ck = w.graph.add_task("checksum", ir::TaskCosts{});
  const ir::TaskId report =
      w.graph.add_task("report", costs(900, 1.5, 300, 0.8, 0.1));

  w.graph.add_edge(acquire, fir, 96);
  w.graph.add_edge(fir, dct, 64);
  w.graph.add_edge(dct, med, 64);
  w.graph.add_edge(med, ck, 64);
  w.graph.add_edge(ck, report, 16);
  w.graph.validate();

  w.kernels.assign(w.graph.num_tasks(), nullptr);
  w.kernels[fir.index()] = &w.kernel_storage[0];
  w.kernels[dct.index()] = &w.kernel_storage[1];
  w.kernels[med.index()] = &w.kernel_storage[2];
  w.kernels[ck.index()] = &w.kernel_storage[3];
  return w;
}

ir::ProcessNetwork ekg_monitor_network() {
  ir::ProcessNetwork net("ekg_monitor");
  auto proc = [&](const char* name, double sw, double speedup,
                  double area) {
    ir::Process p;
    p.name = name;
    p.sw_cycles = sw;
    p.hw_cycles = sw / speedup;
    p.hw_area = area;
    return net.add_process(std::move(p));
  };
  const auto sampler = proc("sampler", 400, 4.0, 500);
  const auto filter = proc("baseline_filter", 2600, 12.0, 1500);
  const auto qrs = proc("qrs_detect", 3400, 10.0, 2100);
  const auto hr = proc("heart_rate", 900, 3.0, 700);
  const auto display = proc("display", 1200, 1.5, 900);
  const auto logger = proc("logger", 700, 1.2, 600);
  const auto alarm = proc("alarm", 300, 2.0, 350);

  const auto c_sf = net.add_channel("samples", sampler, filter, 4);
  const auto c_fq = net.add_channel("filtered", filter, qrs, 4);
  const auto c_qh = net.add_channel("beats", qrs, hr, 2);
  const auto c_hd = net.add_channel("rate_d", hr, display, 2);
  const auto c_hl = net.add_channel("rate_l", hr, logger, 2);
  const auto c_qa = net.add_channel("anomaly", qrs, alarm, 2);

  net.add_transfer(c_sf, 64);
  net.add_transfer(c_fq, 64);
  net.add_transfer(c_qh, 16);
  net.add_transfer(c_hd, 8);
  net.add_transfer(c_hl, 8);
  net.add_transfer(c_qa, 4);
  net.validate();
  return net;
}

ir::ProcessNetwork packet_pipeline_network() {
  ir::ProcessNetwork net("packet_pipeline");
  auto proc = [&](const char* name, double sw, double speedup,
                  double area) {
    ir::Process p;
    p.name = name;
    p.sw_cycles = sw;
    p.hw_cycles = sw / speedup;
    p.hw_area = area;
    return net.add_process(std::move(p));
  };
  const auto rx = proc("rx", 500, 6.0, 800);
  const auto checksum = proc("checksum", 1800, 14.0, 1200);
  const auto classify = proc("classify", 2400, 8.0, 1900);
  const auto route = proc("route", 1100, 4.0, 1000);
  const auto tx = proc("tx", 500, 6.0, 800);

  const auto c_rc = net.add_channel("pkt_in", rx, checksum, 8);
  const auto c_rk = net.add_channel("hdr", rx, classify, 8);
  const auto c_cr = net.add_channel("ok", checksum, route, 8);
  const auto c_kr = net.add_channel("class", classify, route, 8);
  const auto c_rt = net.add_channel("pkt_out", route, tx, 8);

  net.add_transfer(c_rc, 512);
  net.add_transfer(c_rk, 64);
  net.add_transfer(c_cr, 512);
  net.add_transfer(c_kr, 32);
  net.add_transfer(c_rt, 512);
  net.validate();
  return net;
}

ir::ProcessNetwork worker_farm_network(std::size_t workers,
                                       double work_cycles,
                                       double message_bytes) {
  MHS_CHECK(workers >= 1, "farm needs at least one worker");
  ir::ProcessNetwork net("farm" + std::to_string(workers));
  auto proc = [&](std::string name, double sw, double speedup,
                  double area) {
    ir::Process p;
    p.name = std::move(name);
    p.sw_cycles = sw;
    p.hw_cycles = sw / speedup;
    p.hw_area = area;
    return net.add_process(std::move(p));
  };
  const auto src = proc("source", work_cycles * 0.15, 3.0, 400);
  const auto sink = proc("sink", work_cycles * 0.15, 3.0, 400);
  for (std::size_t i = 0; i < workers; ++i) {
    const auto worker = proc("worker" + std::to_string(i),
                             work_cycles, 10.0, 1200);
    const auto in = net.add_channel("job" + std::to_string(i), src, worker, 2);
    const auto out =
        net.add_channel("res" + std::to_string(i), worker, sink, 2);
    net.add_transfer(in, message_bytes);
    net.add_transfer(out, message_bytes);
  }
  net.validate();
  return net;
}

}  // namespace mhs::apps
