#include "apps/bench_report/report_lib.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <set>
#include <sstream>

#include "base/table.h"
#include "obs/json.h"

namespace mhs::apps {

namespace {

bool is_direction(const std::string& d) {
  return d == "lower" || d == "higher" || d == "info";
}

/// Extracts one bench document from an already-parsed JSON value.
/// `raw` is the document's own text (for lossless re-aggregation).
std::optional<BenchDoc> doc_from_value(const obs::JsonValue& value,
                                       std::string raw, std::string* error) {
  const auto fail = [error](const std::string& why) -> std::optional<BenchDoc> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  if (!value.is_object()) return fail("document is not a JSON object");

  const obs::JsonValue* version = value.find("schema_version");
  if (version == nullptr || !version->is_number()) {
    return fail("missing numeric schema_version");
  }
  if (version->as_number() != 1.0) {
    std::ostringstream os;
    os << "unsupported schema_version " << version->as_number();
    return fail(os.str());
  }

  BenchDoc doc;
  doc.raw = std::move(raw);
  const obs::JsonValue* name = value.find("name");
  if (name == nullptr || !name->is_string() || name->as_string().empty()) {
    return fail("missing non-empty string name");
  }
  doc.name = name->as_string();
  if (const obs::JsonValue* title = value.find("title")) {
    doc.title = title->string_or("");
  }
  if (const obs::JsonValue* rev = value.find("git_rev")) {
    doc.git_rev = rev->string_or("");
  }
  if (const obs::JsonValue* wall = value.find("wall_ms")) {
    if (!wall->is_number()) return fail(doc.name + ": wall_ms not a number");
    doc.wall_ms = wall->as_number();
  }

  const obs::JsonValue* metrics = value.find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    return fail(doc.name + ": missing metrics array");
  }
  for (const obs::JsonValue& entry : metrics->as_array()) {
    const obs::JsonValue* mname = entry.find("name");
    const obs::JsonValue* mvalue = entry.find("value");
    if (mname == nullptr || !mname->is_string() || mvalue == nullptr ||
        !mvalue->is_number()) {
      return fail(doc.name + ": metric without string name / numeric value");
    }
    BenchMetric metric;
    metric.name = mname->as_string();
    metric.value = mvalue->as_number();
    if (const obs::JsonValue* unit = entry.find("unit")) {
      metric.unit = unit->string_or("");
    }
    if (const obs::JsonValue* dir = entry.find("direction")) {
      metric.direction = dir->string_or("info");
    }
    if (!is_direction(metric.direction)) {
      return fail(doc.name + ": metric " + metric.name +
                  " has unknown direction '" + metric.direction + "'");
    }
    doc.metrics.push_back(std::move(metric));
  }

  const obs::JsonValue* claims = value.find("claims");
  if (claims == nullptr || !claims->is_array()) {
    return fail(doc.name + ": missing claims array");
  }
  for (const obs::JsonValue& entry : claims->as_array()) {
    const obs::JsonValue* text = entry.find("text");
    const obs::JsonValue* held = entry.find("held");
    if (text == nullptr || !text->is_string() || held == nullptr ||
        !held->is_bool()) {
      return fail(doc.name + ": claim without string text / boolean held");
    }
    doc.claims.push_back({text->as_string(), held->as_bool()});
  }
  return doc;
}

const BenchMetric* find_metric(const BenchDoc& doc, const std::string& name) {
  for (const BenchMetric& m : doc.metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

const BenchDoc* find_doc(const std::vector<BenchDoc>& docs,
                         const std::string& name) {
  for (const BenchDoc& d : docs) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

}  // namespace

std::optional<BenchDoc> parse_bench_doc(const std::string& text,
                                        std::string* error) {
  const std::optional<obs::JsonValue> value = obs::json_parse(text);
  if (!value.has_value()) {
    if (error != nullptr) *error = "invalid JSON";
    return std::nullopt;
  }
  return doc_from_value(*value, text, error);
}

std::optional<std::vector<std::string>> collect_inputs(
    const std::vector<std::string>& paths, std::string* error) {
  namespace fs = std::filesystem;
  std::set<std::string> files;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (const fs::directory_entry& entry : fs::directory_iterator(path, ec)) {
        const std::string base = entry.path().filename().string();
        if (entry.is_regular_file() && base.rfind("BENCH_", 0) == 0 &&
            base.size() > 5 &&
            base.compare(base.size() - 5, 5, ".json") == 0) {
          files.insert(entry.path().string());
        }
      }
      if (ec) {
        if (error != nullptr) *error = "cannot list " + path;
        return std::nullopt;
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.insert(path);
    } else {
      if (error != nullptr) *error = "no such file or directory: " + path;
      return std::nullopt;
    }
  }
  return std::vector<std::string>(files.begin(), files.end());
}

std::optional<std::vector<BenchDoc>> parse_baseline(const std::string& text,
                                                    std::string* error) {
  const std::optional<obs::JsonValue> value = obs::json_parse(text);
  if (!value.has_value()) {
    if (error != nullptr) *error = "baseline is not valid JSON";
    return std::nullopt;
  }
  std::vector<BenchDoc> docs;
  if (const obs::JsonValue* benches = value->find("benches")) {
    if (!benches->is_array()) {
      if (error != nullptr) *error = "baseline 'benches' is not an array";
      return std::nullopt;
    }
    for (const obs::JsonValue& entry : benches->as_array()) {
      std::optional<BenchDoc> doc = doc_from_value(entry, "", error);
      if (!doc.has_value()) return std::nullopt;
      docs.push_back(std::move(*doc));
    }
    return docs;
  }
  std::optional<BenchDoc> doc = doc_from_value(*value, text, error);
  if (!doc.has_value()) return std::nullopt;
  docs.push_back(std::move(*doc));
  return docs;
}

std::string aggregate_json(const std::vector<BenchDoc>& docs) {
  std::ostringstream os;
  os << "{\"schema_version\": 1, \"benches\": [";
  for (std::size_t i = 0; i < docs.size(); ++i) {
    // Strip the document's trailing newline so the array reads cleanly.
    std::string body = docs[i].raw;
    while (!body.empty() && (body.back() == '\n' || body.back() == ' ')) {
      body.pop_back();
    }
    os << (i == 0 ? "\n" : ",\n") << body;
  }
  os << (docs.empty() ? "]}" : "\n]}") << "\n";
  return os.str();
}

std::string summary_table(const std::vector<BenchDoc>& docs) {
  TextTable table({"bench", "wall ms", "metrics", "claims held", "git rev"});
  for (const BenchDoc& doc : docs) {
    std::size_t held = 0;
    for (const BenchClaim& c : doc.claims) held += c.held ? 1 : 0;
    table.add_row({doc.name, fmt(doc.wall_ms, 1), fmt(doc.metrics.size()),
                   fmt(held) + "/" + fmt(doc.claims.size()),
                   doc.git_rev.empty() ? "-" : doc.git_rev});
  }
  return table.str();
}

std::vector<Regression> compare_to_baseline(
    const std::vector<BenchDoc>& current,
    const std::vector<BenchDoc>& baseline, double threshold_pct) {
  std::vector<Regression> regressions;
  const double slack = threshold_pct / 100.0;
  for (const BenchDoc& doc : current) {
    const BenchDoc* base_doc = find_doc(baseline, doc.name);
    if (base_doc == nullptr) continue;
    for (const BenchMetric& metric : doc.metrics) {
      if (metric.direction == "info") continue;
      const BenchMetric* base = find_metric(*base_doc, metric.name);
      if (base == nullptr || !std::isfinite(base->value) ||
          base->value == 0.0) {
        continue;
      }
      const double change = (metric.value - base->value) / base->value;
      const bool worse = metric.direction == "lower" ? change > slack
                                                     : change < -slack;
      if (!worse) continue;
      regressions.push_back({doc.name, metric.name, metric.direction,
                             base->value, metric.value, 100.0 * change});
    }
  }
  return regressions;
}

std::string comparison_table(const std::vector<BenchDoc>& current,
                             const std::vector<BenchDoc>& baseline,
                             double threshold_pct) {
  const std::vector<Regression> regressions =
      compare_to_baseline(current, baseline, threshold_pct);
  const auto is_regression = [&](const std::string& bench,
                                 const std::string& metric) {
    return std::any_of(regressions.begin(), regressions.end(),
                       [&](const Regression& r) {
                         return r.bench == bench && r.metric == metric;
                       });
  };
  TextTable table({"bench", "metric", "dir", "baseline", "current",
                   "change %", "verdict"});
  std::size_t matched = 0;
  for (const BenchDoc& doc : current) {
    const BenchDoc* base_doc = find_doc(baseline, doc.name);
    if (base_doc == nullptr) continue;
    for (const BenchMetric& metric : doc.metrics) {
      const BenchMetric* base = find_metric(*base_doc, metric.name);
      if (base == nullptr) continue;
      ++matched;
      const double change = base->value == 0.0
                                ? 0.0
                                : 100.0 * (metric.value - base->value) /
                                      base->value;
      table.add_row({doc.name, metric.name, metric.direction,
                     fmt(base->value, 3), fmt(metric.value, 3),
                     fmt(change, 1),
                     is_regression(doc.name, metric.name) ? "REGRESSED"
                                                          : "ok"});
    }
  }
  return matched == 0 ? std::string() : table.str();
}

}  // namespace mhs::apps
