// bench_report — aggregate and compare BENCH_<name>.json documents.
//
// Usage:
//   bench_report [--check] [--baseline FILE] [--threshold PCT]
//                [--out FILE] <files-or-dirs>...
//
// Inputs are BENCH_*.json files (directories are scanned for them).
// Modes compose:
//   default          print a summary table of every document;
//   --check          additionally stop at the first schema violation;
//   --out FILE       write the aggregate {"benches":[...]} document;
//   --baseline FILE  compare against an earlier run (a single document
//                    or an aggregate) and flag direction-aware metric
//                    regressions past --threshold (default 10%).
//
// Exit codes: 0 clean, 1 usage or I/O error, 2 schema violation,
// 3 regression detected.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "apps/bench_report/report_lib.h"

namespace {

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitSchema = 2;
constexpr int kExitRegression = 3;

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int usage() {
  std::cerr << "usage: bench_report [--check] [--baseline FILE] "
               "[--threshold PCT] [--out FILE] <files-or-dirs>...\n";
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mhs::apps;
  std::vector<std::string> inputs;
  std::string baseline_path;
  std::string out_path;
  double threshold_pct = 10.0;
  bool check_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check_only = true;
    } else if (arg == "--baseline") {
      if (++i >= argc) return usage();
      baseline_path = argv[i];
    } else if (arg == "--threshold") {
      if (++i >= argc) return usage();
      try {
        threshold_pct = std::stod(argv[i]);
      } catch (const std::exception&) {
        return usage();
      }
    } else if (arg == "--out") {
      if (++i >= argc) return usage();
      out_path = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return kExitOk;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage();

  std::string error;
  const std::optional<std::vector<std::string>> files =
      collect_inputs(inputs, &error);
  if (!files.has_value()) {
    std::cerr << "bench_report: " << error << "\n";
    return kExitUsage;
  }
  if (files->empty()) {
    std::cerr << "bench_report: no BENCH_*.json files found\n";
    return kExitUsage;
  }

  std::vector<BenchDoc> docs;
  for (const std::string& path : *files) {
    const std::optional<std::string> text = read_file(path);
    if (!text.has_value()) {
      std::cerr << "bench_report: cannot read " << path << "\n";
      return kExitUsage;
    }
    std::optional<BenchDoc> doc = parse_bench_doc(*text, &error);
    if (!doc.has_value()) {
      std::cerr << "bench_report: " << path << ": " << error << "\n";
      return kExitSchema;
    }
    docs.push_back(std::move(*doc));
  }

  std::cout << summary_table(docs);
  if (check_only) {
    std::cout << docs.size() << " document(s) valid\n";
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "bench_report: cannot write " << out_path << "\n";
      return kExitUsage;
    }
    out << aggregate_json(docs);
    std::cout << "aggregate: " << out_path << "\n";
  }

  if (!baseline_path.empty()) {
    const std::optional<std::string> text = read_file(baseline_path);
    if (!text.has_value()) {
      std::cerr << "bench_report: cannot read baseline " << baseline_path
                << "\n";
      return kExitUsage;
    }
    const std::optional<std::vector<BenchDoc>> baseline =
        parse_baseline(*text, &error);
    if (!baseline.has_value()) {
      std::cerr << "bench_report: " << baseline_path << ": " << error << "\n";
      return kExitSchema;
    }
    const std::string table = comparison_table(docs, *baseline, threshold_pct);
    if (table.empty()) {
      std::cout << "baseline: no matching (bench, metric) pairs\n";
    } else {
      std::cout << "baseline comparison (threshold " << threshold_pct
                << "%):\n" << table;
    }
    const std::vector<Regression> regressions =
        compare_to_baseline(docs, *baseline, threshold_pct);
    if (!regressions.empty()) {
      std::cerr << "bench_report: " << regressions.size()
                << " metric(s) regressed past " << threshold_pct << "%\n";
      return kExitRegression;
    }
  }
  return kExitOk;
}
