// Reader, aggregator, and baseline comparator for the BENCH_<name>.json
// documents bench::Reporter writes.
//
// The library half of the bench_report CLI, split out so the regression
// logic (schema checking, direction-aware deltas, thresholding) is unit
// testable without spawning the binary. The CLI maps the outcomes to
// exit codes: 0 clean, 1 usage/IO error, 2 schema violation, 3
// regression past the threshold.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace mhs::apps {

/// One metric from a bench document. `direction` is "lower", "higher",
/// or "info" — which way improvement points.
struct BenchMetric {
  std::string name;
  double value = 0.0;
  std::string unit;
  std::string direction = "info";
};

struct BenchClaim {
  std::string text;
  bool held = false;
};

/// One parsed BENCH_<name>.json document.
struct BenchDoc {
  std::string name;
  std::string title;
  std::string git_rev;
  double wall_ms = 0.0;
  std::vector<BenchMetric> metrics;
  std::vector<BenchClaim> claims;
  /// The original document text (re-embedded verbatim by aggregate_json,
  /// so aggregation is lossless).
  std::string raw;
};

/// Parses and schema-checks one bench document. On failure returns
/// nullopt and, when `error` is non-null, a description of the first
/// violation (invalid JSON, wrong schema_version, missing/ill-typed
/// fields).
std::optional<BenchDoc> parse_bench_doc(const std::string& text,
                                        std::string* error);

/// Expands a list of files and directories into the BENCH_*.json files
/// they contain (a directory contributes every BENCH_*.json directly
/// inside it; a file is taken as-is). Sorted, deduplicated. Returns
/// nullopt on a nonexistent path (described in `error`).
std::optional<std::vector<std::string>> collect_inputs(
    const std::vector<std::string>& paths, std::string* error);

/// Parses a baseline file: either a single bench document or an
/// aggregate ({"schema_version":1,"benches":[...]}) as written by
/// aggregate_json.
std::optional<std::vector<BenchDoc>> parse_baseline(const std::string& text,
                                                    std::string* error);

/// The aggregate document: {"schema_version":1,"benches":[<docs>]}.
std::string aggregate_json(const std::vector<BenchDoc>& docs);

/// Plain-text overview of the aggregated benches (name, wall, metric
/// count, claims held).
std::string summary_table(const std::vector<BenchDoc>& docs);

/// One metric whose current value is worse than the baseline by more
/// than the threshold, judged by the metric's direction ("info" metrics
/// never regress).
struct Regression {
  std::string bench;
  std::string metric;
  std::string direction;
  double baseline = 0.0;
  double current = 0.0;
  /// Signed percent change, positive = value went up.
  double change_pct = 0.0;
};

/// Compares current docs against a baseline by (bench, metric) name.
/// `threshold_pct` is the allowed relative slack in percent (e.g. 10.0
/// lets a lower-is-better metric grow up to 10% before it counts).
/// Metrics or benches absent from either side are skipped.
std::vector<Regression> compare_to_baseline(
    const std::vector<BenchDoc>& current,
    const std::vector<BenchDoc>& baseline, double threshold_pct);

/// Plain-text rendering of a comparison (all matched metrics, with the
/// regressions flagged); empty when nothing matched.
std::string comparison_table(const std::vector<BenchDoc>& current,
                             const std::vector<BenchDoc>& baseline,
                             double threshold_pct);

}  // namespace mhs::apps
