// Quickstart: one behavioural specification, two implementations.
//
// Builds a small dataflow kernel, then derives and cross-checks both of
// the paper's implementation styles from it:
//   software — compiled to the RISC ISA and executed on the cycle-counting
//              instruction-set simulator;
//   hardware — scheduled/bound by high-level synthesis and executed as a
//              datapath + FSM.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>

#include "base/table.h"
#include "hw/hls.h"
#include "ir/cdfg.h"
#include "sw/estimate.h"
#include "sw/iss.h"

int main() {
  using namespace mhs;

  // ---- 1. Specify: y = max(a*b + c, (a - c) << 2) ------------------------
  ir::Cdfg kernel("quickstart");
  const ir::OpId a = kernel.input("a");
  const ir::OpId b = kernel.input("b");
  const ir::OpId c = kernel.input("c");
  const ir::OpId mac = kernel.add(kernel.mul(a, b), c);
  const ir::OpId shifted = kernel.shl(kernel.sub(a, c), kernel.constant(2));
  kernel.output("y", kernel.binary(ir::OpKind::kMax, mac, shifted));

  const std::map<std::string, std::int64_t> inputs = {
      {"a", 7}, {"b", -3}, {"c", 100}};
  const auto reference = kernel.evaluate(inputs);
  std::cout << "reference result: y = " << reference.at("y") << "\n\n";

  // ---- 2. Software implementation ----------------------------------------
  const sw::Program program = sw::compile(kernel);
  std::cout << "compiled software (" << program.code.size()
            << " instructions, " << program.code_bytes << " bytes):\n"
            << sw::disassemble(program.code) << "\n";
  sw::Iss iss;
  double sw_cycles = 0.0;
  const auto sw_result =
      sw::run_program(iss, program, inputs, 1'000'000, &sw_cycles);

  // ---- 3. Hardware implementation ----------------------------------------
  const hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  const hw::HlsResult impl = hw::synthesize(kernel, lib, constraints);
  std::size_t hw_cycles = 0;
  const auto hw_result = hw::simulate_datapath(impl, inputs, &hw_cycles);

  // ---- 4. Compare ---------------------------------------------------------
  TextTable table({"implementation", "y", "cycles", "cost"});
  table.add_row({"interpreter", std::to_string(reference.at("y")), "-",
                 "-"});
  table.add_row({"software (ISS)", std::to_string(sw_result.at("y")),
                 fmt(sw_cycles, 0),
                 fmt(program.code_bytes) + " B code"});
  table.add_row({"hardware (HLS)", std::to_string(hw_result.at("y")),
                 fmt(static_cast<std::size_t>(hw_cycles)),
                 fmt(impl.area.total(), 0) + " area"});
  std::cout << table;

  const bool agree = sw_result == reference && hw_result == reference;
  std::cout << (agree ? "all implementations agree\n"
                      : "IMPLEMENTATIONS DISAGREE\n");
  return agree ? 0 : 1;
}
