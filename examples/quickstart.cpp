// Quickstart: one behavioural specification, two implementations.
//
// Builds a small dataflow kernel, then derives and cross-checks both of
// the paper's implementation styles from it:
//   software — compiled to the RISC ISA and executed on the cycle-counting
//              instruction-set simulator;
//   hardware — scheduled/bound by high-level synthesis and executed as a
//              datapath + FSM.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
//
// Set MHS_TRACE=/path/to/trace.json to record an observability trace of
// the run (Chrome trace_event JSON — load it in chrome://tracing or
// https://ui.perfetto.dev). The example validates the exported JSON and
// fails if it does not parse.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>

#include "analysis/lint.h"
#include "base/table.h"
#include "hw/hls.h"
#include "ir/cdfg.h"
#include "obs/obs.h"
#include "sw/estimate.h"
#include "sw/iss.h"

int main() {
  using namespace mhs;

  // Optional tracing: installing the registry turns every instrumented
  // layer on; leaving it out keeps the run at zero overhead.
  const char* trace_path = std::getenv("MHS_TRACE");
  std::unique_ptr<obs::Registry> registry;
  std::unique_ptr<obs::ScopedRegistry> scope;
  if (trace_path != nullptr) {
    registry = std::make_unique<obs::Registry>();
    scope = std::make_unique<obs::ScopedRegistry>(*registry);
  }

  // ---- 1. Specify: y = max(a*b + c, (a - c) << 2) ------------------------
  obs::Span specify_span("specify", "quickstart");
  ir::Cdfg kernel("quickstart");
  const ir::OpId a = kernel.input("a");
  const ir::OpId b = kernel.input("b");
  const ir::OpId c = kernel.input("c");
  const ir::OpId mac = kernel.add(kernel.mul(a, b), c);
  const ir::OpId shifted = kernel.shl(kernel.sub(a, c), kernel.constant(2));
  kernel.output("y", kernel.binary(ir::OpKind::kMax, mac, shifted));

  // Static analysis at the strict bar: the specification must carry no
  // errors AND no warnings (dead ops, unused inputs) before either
  // implementation is derived from it.
  const analysis::Diagnostics diags = analysis::analyze_cdfg(kernel);
  if (!diags.clean()) {
    std::cerr << "kernel is not lint-clean:\n" << diags.str();
    return 1;
  }
  std::cout << "analysis: kernel is lint-clean (strict)\n";

  const std::map<std::string, std::int64_t> inputs = {
      {"a", 7}, {"b", -3}, {"c", 100}};
  const auto reference = kernel.evaluate(inputs);
  std::cout << "reference result: y = " << reference.at("y") << "\n\n";
  specify_span = obs::Span();  // close the phase

  // ---- 2. Software implementation ----------------------------------------
  obs::Span sw_span("software", "quickstart");
  const sw::Program program = sw::compile(kernel);
  std::cout << "compiled software (" << program.code.size()
            << " instructions, " << program.code_bytes << " bytes):\n"
            << sw::disassemble(program.code) << "\n";
  sw::Iss iss;
  double sw_cycles = 0.0;
  const auto sw_result =
      sw::run_program(iss, program, inputs, 1'000'000, &sw_cycles);
  obs::count("quickstart.sw_instructions", program.code.size());
  sw_span = obs::Span();

  // ---- 3. Hardware implementation ----------------------------------------
  obs::Span hw_span("hardware", "quickstart");
  const hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  const hw::HlsResult impl = hw::synthesize(kernel, lib, constraints);
  std::size_t hw_cycles = 0;
  const auto hw_result = hw::simulate_datapath(impl, inputs, &hw_cycles);
  obs::count("quickstart.hw_cycles", hw_cycles);
  hw_span = obs::Span();

  // ---- 4. Compare ---------------------------------------------------------
  TextTable table({"implementation", "y", "cycles", "cost"});
  table.add_row({"interpreter", std::to_string(reference.at("y")), "-",
                 "-"});
  table.add_row({"software (ISS)", std::to_string(sw_result.at("y")),
                 fmt(sw_cycles, 0),
                 fmt(program.code_bytes) + " B code"});
  table.add_row({"hardware (HLS)", std::to_string(hw_result.at("y")),
                 fmt(static_cast<std::size_t>(hw_cycles)),
                 fmt(impl.area.total(), 0) + " area"});
  std::cout << table;

  const bool agree = sw_result == reference && hw_result == reference;
  std::cout << (agree ? "all implementations agree\n"
                      : "IMPLEMENTATIONS DISAGREE\n");

  // ---- 5. Export + self-validate the trace (when enabled) ----------------
  if (registry != nullptr) {
    const std::string json = registry->chrome_trace_json();
    if (!obs::json_is_valid(json)) {
      std::cerr << "exported trace is not valid JSON\n";
      return 1;
    }
    std::ofstream out(trace_path);
    out << json;
    if (!out) {
      std::cerr << "failed to write trace to " << trace_path << "\n";
      return 1;
    }
    std::cout << "\n" << registry->summary().table();
    std::cout << "trace written to " << trace_path << "\n";
  }
  return agree ? 0 : 1;
}
