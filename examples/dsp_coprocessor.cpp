// DSP co-processor example (the paper's Figure 8 system).
//
// A signal-processing chain — acquire, FIR, DCT, median filter, checksum,
// report — is specified with behavioural kernels and pushed through the
// complete co-design flow:
//   estimate    software costs by compilation, hardware costs by HLS;
//   partition   between the instruction-set processor and a custom
//               co-processor (three strategies compared);
//   co-simulate the biggest hardware kernel behind its register interface.
//
// Run: ./build/examples/dsp_coprocessor
#include <iostream>

#include "apps/workloads.h"
#include "base/table.h"
#include "core/flow.h"
#include "ir/dot.h"

int main() {
  using namespace mhs;

  apps::KernelBackedWorkload workload = apps::dsp_chain_workload();
  std::cout << "workload: " << workload.graph.name() << " ("
            << workload.graph.num_tasks() << " tasks)\n\n"
            << "task graph (Graphviz):\n"
            << ir::to_dot(workload.graph) << "\n";

  TextTable comparison({"strategy", "tasks in HW", "speedup", "HW area",
                        "post-HLS area", "cross comm"});
  for (const cosynth::CoprocStrategy strategy :
       {cosynth::CoprocStrategy::kHotSpot, cosynth::CoprocStrategy::kKl,
        cosynth::CoprocStrategy::kGclp}) {
    core::FlowConfig cfg = core::FlowConfig::defaults()
                               .with_strategy(strategy)
                               .with_area_weight(0.02);
    // The hot-spot strategy needs a target; estimate one from the
    // annotated costs on a first pass.
    if (strategy == cosynth::CoprocStrategy::kHotSpot) {
      const ir::TaskGraph annotated =
          core::annotate_costs(workload.graph, workload.kernels, cfg);
      cfg = cfg.with_latency_target(annotated.total_sw_cycles() * 0.5);
    }
    const core::FlowReport report =
        core::run_codesign_flow(workload.graph, workload.kernels, cfg);
    const auto& m = report.design.partition.metrics;
    comparison.add_row(
        {cosynth::coproc_strategy_name(strategy), fmt(m.tasks_in_hw),
         fmt(report.design.speedup(), 2), fmt(m.hw_area, 0),
         fmt(report.validated_hw_area, 0), fmt(m.cross_comm_cycles, 0)});
    if (strategy == cosynth::CoprocStrategy::kKl) {
      std::cout << report.summary << "\n";
    }
  }
  std::cout << "strategy comparison:\n" << comparison;
  return 0;
}
