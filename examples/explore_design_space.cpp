// Design-space exploration example.
//
// Instead of running the co-design flow once per hand-picked strategy,
// hand the whole search to mhs::core::Explorer: a batch of design points
// (every §4.5 partitioning strategy × several objectives × two flow
// variants) is evaluated in parallel with memoized cost evaluation, and
// the report carries the Pareto frontier over (latency, area,
// evaluations) plus the cache statistics that explain why the sweep is
// cheap.
//
// Run: ./build/examples/explore_design_space
#include <iostream>

#include "apps/workloads.h"
#include "base/table.h"
#include "core/explorer.h"

int main() {
  using namespace mhs;

  apps::KernelBackedWorkload workload = apps::dsp_chain_workload();

  // Two flow variants forked from one base config with the fluent
  // builder: with and without the kernel-optimization pass.
  const core::FlowConfig base =
      core::FlowConfig::defaults().without_cosim().without_hls_validation();
  const std::vector<core::FlowConfig> configs = {
      base, base.without_kernel_optimization()};

  // Latency targets as fractions of the all-software serial latency.
  const ir::TaskGraph annotated =
      core::annotate_costs(workload.graph, workload.kernels, base);
  std::vector<partition::Objective> objectives;
  for (const double fraction : {0.4, 0.7}) {
    partition::Objective objective;
    objective.latency_target = fraction * annotated.total_sw_cycles();
    objective.area_weight = 0.05;
    objectives.push_back(objective);
  }

  const std::vector<partition::Strategy> strategies(
      std::begin(partition::kSearchStrategies),
      std::end(partition::kSearchStrategies));

  core::Explorer explorer(workload.graph, workload.kernels);
  const core::ExploreReport report =
      explorer.sweep(configs, strategies, objectives);
  std::cout << report.summary;

  std::cout << "\nPareto-optimal designs:\n";
  for (const std::size_t idx : report.frontier) {
    const core::PointResult& p = report.points[idx];
    std::cout << "  " << partition::strategy_name(p.strategy)
              << " (variant " << p.config_index << "): "
              << p.partition.metrics.tasks_in_hw << " tasks in HW, "
              << fmt(p.speedup, 2) << "x over all-software, area "
              << fmt(p.partition.metrics.hw_area, 0) << "\n";
  }
  return 0;
}
