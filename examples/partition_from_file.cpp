// Command-line partitioning of a task graph in the text IR format.
//
// Usage:
//   ./build/examples/partition_from_file [graph.txt] [latency_target]
//
// Reads a task graph (file argument, or a built-in demo system when
// omitted), runs every partitioning strategy, and prints the comparison —
// the scriptable front door to the library for graphs produced outside
// C++ (see ir/serialize.h for the format).
#include <fstream>
#include <iostream>
#include <sstream>

#include "base/table.h"
#include "cosynth/run.h"
#include "ir/serialize.h"

namespace {

const char* kDemoSystem = R"(# set-top-box video path (demo system)
taskgraph settop_video
task demux      sw=2400 hw=900  area=1100 size=960  mod=0.7 par=0.2
task huffman    sw=5200 hw=1800 area=2400 size=2100 mod=0.6 par=0.2
task idct       sw=8800 hw=540  area=2100 size=3500 mod=0.1 par=0.95
task motioncomp sw=7600 hw=620  area=2600 size=3000 mod=0.2 par=0.9
task deblock    sw=3900 hw=700  area=1500 size=1600 mod=0.4 par=0.7
task scale      sw=2900 hw=450  area=1200 size=1200 mod=0.3 par=0.8
task osd        sw=1400 hw=900  area=800  size=560  mod=0.9 par=0.3
edge 0 1 bytes=1024
edge 1 2 bytes=768
edge 2 3 bytes=768
edge 3 4 bytes=768
edge 4 5 bytes=768
edge 5 6 bytes=512
end
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace mhs;

  std::string text = kDemoSystem;
  if (argc >= 2) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  ir::TaskGraph graph;
  try {
    graph = ir::task_graph_from_text(text);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  const double target_fraction =
      argc >= 3 ? std::stod(argv[2]) : 0.45;
  const partition::CostModel model(graph, hw::default_library());
  partition::Objective objective;
  objective.latency_target = graph.total_sw_cycles() * target_fraction;
  objective.area_weight = 0.02;

  std::cout << "system: " << graph.name() << " (" << graph.num_tasks()
            << " tasks, all-SW latency " << fmt(graph.total_sw_cycles(), 0)
            << " cycles, target " << fmt(objective.latency_target, 0)
            << ")\n\n";

  TextTable table({"strategy", "tasks in HW", "latency", "HW area",
                   "speedup", "meets target"});
  cosynth::Request request;
  request.model = &model;
  request.objective = objective;
  for (const cosynth::CoprocStrategy strategy :
       {cosynth::CoprocStrategy::kHotSpot, cosynth::CoprocStrategy::kUnload,
        cosynth::CoprocStrategy::kKl, cosynth::CoprocStrategy::kGclp}) {
    request.strategy = strategy;
    const cosynth::CoprocDesign d =
        *cosynth::run(cosynth::Target::kCoprocessor, request).coprocessor;
    const auto& m = d.partition.metrics;
    table.add_row({cosynth::coproc_strategy_name(strategy),
                   fmt(m.tasks_in_hw), fmt(m.latency_cycles, 0),
                   fmt(m.hw_area, 0), fmt(d.speedup(), 2),
                   m.latency_cycles <= objective.latency_target ? "yes"
                                                                : "no"});
  }
  std::cout << table;
  return 0;
}
