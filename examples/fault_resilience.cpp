// Fault injection & resilience: a fault campaign against one accelerator.
//
// Synthesizes a FIR kernel into hardware, then co-simulates it three
// ways:
//
//   1. fault-free — the golden reference run;
//   2. under injected faults with the default resilient driver — the
//      watchdog detects stalls/hangs, retries with exponential backoff,
//      and falls back to a software implementation of the same kernel
//      when hardware retries are exhausted, so the checksum survives;
//   3. the same campaign at a harsher fault rate, showing the
//      ResilienceReport counters and the recovery-cycle cost growing.
//
// Everything is deterministic: the same (seed, plan) reproduces every
// injection bit-exactly, and MHS_FAULT_SEED=<n> overrides the seed from
// the environment to re-roll a campaign without recompiling.
//
// Build & run:  cmake -B build && cmake --build build
//               ./build/examples/fault_resilience
#include <iostream>

#include "apps/kernels.h"
#include "base/rng.h"
#include "base/table.h"
#include "hw/hls.h"
#include "sim/cosim.h"
#include "sim/run.h"


namespace {

/// Drives the accelerator co-simulation through the sim::run seam.
mhs::sim::CosimReport accel_cosim(
    const mhs::hw::HlsResult& impl, const mhs::sim::CosimConfig& config,
    const std::vector<std::vector<std::int64_t>>& samples) {
  mhs::sim::SimRequest sreq;
  sreq.impl = &impl;
  sreq.samples = &samples;
  sreq.cosim = config;
  return mhs::sim::run(sreq).cosim.value();
}

}  // namespace

int main() {
  using namespace mhs;

  // One behavioural spec, one synthesized accelerator.
  const ir::Cdfg kernel = apps::fir_kernel(6);
  const hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  const hw::HlsResult impl = hw::synthesize(kernel, lib, constraints);

  Rng rng(42);
  std::vector<std::vector<std::int64_t>> samples;
  for (int s = 0; s < 24; ++s) {
    std::vector<std::int64_t> in;
    for (std::size_t k = 0; k < kernel.inputs().size(); ++k) {
      in.push_back(rng.uniform_int(-1000, 1000));
    }
    samples.push_back(std::move(in));
  }

  // The campaign: occasional long stalls, rare outright hangs.
  fault::FaultPlan mild;
  mild.add(fault::FaultSpec::peripheral_stall(0.2, 80))
      .add(fault::FaultSpec::peripheral_hang(0.05));
  fault::FaultPlan harsh;
  harsh.add(fault::FaultSpec::peripheral_stall(0.5, 200))
      .add(fault::FaultSpec::peripheral_hang(0.2))
      .add(fault::FaultSpec::bus_bit_flip(0.01));

  TextTable table({"campaign", "cycles", "checksum", "injected", "detected",
                   "recovered", "degraded", "recovery cyc"});
  std::int64_t golden = 0;
  for (const auto& [name, plan] :
       {std::pair<const char*, const fault::FaultPlan*>{"fault-free", nullptr},
        {"mild", &mild},
        {"harsh", &harsh}}) {
    sim::CosimConfig cfg;
    cfg.level = sim::InterfaceLevel::kRegister;
    if (plan != nullptr) cfg.fault_plan = *plan;
    cfg.fault_seed = 2026;
    const sim::CosimReport report = accel_cosim(impl, cfg, samples);
    if (plan == nullptr) golden = report.checksum;
    const fault::ResilienceReport& r = report.resilience;
    table.add_row({name, fmt(report.total_cycles, 0),
                   fmt(static_cast<long long>(report.checksum)),
                   fmt(r.injected), fmt(r.detected), fmt(r.recovered),
                   fmt(r.degradations), fmt(r.recovery_cycles)});
    // Stalls and hangs only delay completions — the resilient driver
    // must deliver the golden checksum regardless. (The harsh campaign
    // also flips bus bits, which silent-corrupt data by design; only
    // compare when the plan cannot corrupt payloads.)
    if (plan == &mild && report.checksum != golden) {
      std::cerr << "resilience failed: checksum diverged under stalls\n";
      return 1;
    }
  }
  std::cout << table << "\n";

  std::cout << "Campaigns are deterministic from (seed, plan); set\n"
               "MHS_FAULT_SEED=<n> to re-roll the schedule, e.g.\n"
               "  MHS_FAULT_SEED=7 ./build/examples/fault_resilience\n";
  return 0;
}
