// export_ir — regenerate the serialized IR artifacts in examples/ir/.
//
// Writes the stock workloads and kernels in the ir/serialize.h text
// format. The checked-in copies under examples/ir/ were produced by this
// binary; every one of them is covered by a `lint_example_*` ctest that
// runs mhs_lint over it and requires a clean exit.
//
//   export_ir [output-dir]     # default: current directory

#include <fstream>
#include <iostream>
#include <string>

#include "apps/kernels.h"
#include "apps/workloads.h"
#include "ir/serialize.h"

namespace {

bool write_file(const std::string& dir, const std::string& name,
                const std::string& text) {
  const std::string path = dir + "/" + name;
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "export_ir: cannot write " << path << "\n";
    return false;
  }
  out << text;
  std::cout << "wrote " << path << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mhs;
  const std::string dir = argc > 1 ? argv[1] : ".";
  bool ok = true;
  ok &= write_file(dir, "jpeg_pipeline.tg",
                   ir::to_text(apps::jpeg_pipeline_graph()));
  ok &= write_file(dir, "ekg_monitor.pn",
                   ir::to_text(apps::ekg_monitor_network()));
  ok &= write_file(dir, "packet_pipeline.pn",
                   ir::to_text(apps::packet_pipeline_network()));
  ok &= write_file(dir, "fir8.cdfg", ir::to_text(apps::fir_kernel(8)));
  ok &= write_file(dir, "dct8.cdfg", ir::to_text(apps::dct8_kernel()));
  ok &= write_file(dir, "checksum16.cdfg",
                   ir::to_text(apps::checksum_kernel(16)));
  return ok ? 0 : 1;
}
