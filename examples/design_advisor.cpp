// Design advisor example (the paper's §5 criteria, plus its §2 open
// problem).
//
// Part 1: a designer states the characteristics of the system to be
// designed; the advisor ranks the surveyed co-design approaches by the
// paper's four comparison criteria and names the mhs implementation of
// each.
//
// Part 2: for a system that genuinely mixes boundary types — a CPU whose
// instruction set can be extended (Type I) next to a co-processor that
// can absorb tasks (Type II) — no surveyed approach applies ("no
// published work has addressed this situation"), so the mixed-boundary
// synthesizer is run instead, and its design is exported in the text IR
// format.
//
// Run: ./build/examples/design_advisor
#include <iostream>

#include "apps/workloads.h"
#include "base/table.h"
#include "core/advisor.h"
#include "core/flow.h"
#include "cosynth/run.h"
#include "ir/serialize.h"

int main() {
  using namespace mhs;

  // ---- Part 1: rank approaches for a concrete project --------------------
  std::cout << "project: Type II co-processor system; needs co-synthesis\n"
            << "         with partitioning; the partition must weigh\n"
            << "         concurrency and communication.\n\n";
  core::DesignCharacteristics needs;
  needs.system_type = core::SystemType::kTypeII;
  needs.required_tasks = {core::DesignTask::kCoSynthesis,
                          core::DesignTask::kPartitioning};
  needs.required_factors = {core::PartitionFactor::kConcurrency,
                            core::PartitionFactor::kCommunication};
  const auto recs = core::recommend(needs);
  std::cout << core::recommendation_table(recs, 5) << "\n";

  // ---- Part 2: the mixed-boundary system no survey entry covers ----------
  std::cout << "project: one silicon budget, spendable on ISA extensions\n"
            << "         (Type I) AND a co-processor (Type II) — the\n"
            << "         paper's unaddressed mixed case. Synthesizing\n"
            << "         jointly:\n\n";

  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  const core::FlowConfig flow_cfg =
      core::FlowConfig::defaults().without_kernel_optimization();
  const ir::TaskGraph annotated =
      core::annotate_costs(w.graph, w.kernels, flow_cfg);

  const double budget = 4100.0;
  cosynth::Request mixed_request;
  mixed_request.graph = &annotated;
  mixed_request.kernels = &w.kernels;
  mixed_request.area_budget = budget;
  const cosynth::MixedDesign mixed =
      *cosynth::run(cosynth::Target::kMixed, mixed_request).mixed;

  TextTable design({"decision", "value"});
  std::string features;
  for (const cosynth::IsaFeature f : mixed.features) {
    if (!features.empty()) features += ",";
    features += cosynth::isa_feature_name(f);
  }
  design.add_row({"silicon budget", fmt(budget, 0)});
  design.add_row({"ISA extensions (Type I)",
                  features.empty() ? "-" : features});
  design.add_row({"ISA area", fmt(mixed.isa_area, 0)});
  std::string offloaded;
  for (const ir::TaskId t : annotated.task_ids()) {
    if (mixed.mapping[t.index()]) {
      if (!offloaded.empty()) offloaded += ",";
      offloaded += annotated.task(t).name;
    }
  }
  design.add_row({"offloaded tasks (Type II)",
                  offloaded.empty() ? "-" : offloaded});
  design.add_row({"co-processor area", fmt(mixed.coproc_area, 0)});
  design.add_row({"end-to-end latency (cyc)", fmt(mixed.latency_cycles, 0)});
  design.add_row({"feature subsets explored",
                  fmt(mixed.feature_subsets_tried)});
  std::cout << design << "\n";

  // Export the annotated system in the text IR for reuse.
  std::cout << "annotated system (text IR):\n" << ir::to_text(annotated);
  return 0;
}
