// Embedded controller example (the paper's Figure 4 system).
//
// A microprocessor drives a synthesized FIR accelerator over the system
// bus. Interface co-synthesis (Chinook-style) evaluates the polling and
// interrupt-driven drivers by co-simulation, picks one per design intent,
// and the chosen stack is then validated at the pin level.
//
// Run: ./build/examples/embedded_controller
#include <iostream>

#include "apps/kernels.h"
#include "base/rng.h"
#include "base/table.h"
#include "cosynth/run.h"
#include "hw/rtl_emit.h"
#include "sim/bus.h"
#include "sim/cosim.h"
#include "sim/run.h"
#include "sim/vcd.h"


namespace {

/// Drives the accelerator co-simulation through the sim::run seam.
mhs::sim::CosimReport accel_cosim(
    const mhs::hw::HlsResult& impl, const mhs::sim::CosimConfig& config,
    const std::vector<std::vector<std::int64_t>>& samples) {
  mhs::sim::SimRequest sreq;
  sreq.impl = &impl;
  sreq.samples = &samples;
  sreq.cosim = config;
  return mhs::sim::run(sreq).cosim.value();
}

}  // namespace

int main() {
  using namespace mhs;

  // The accelerator: an 8-tap FIR, synthesized for minimum area.
  const ir::Cdfg kernel = apps::fir_kernel(8);
  const hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  const hw::HlsResult impl = hw::synthesize(kernel, lib, constraints);
  std::cout << "accelerator: " << kernel.name() << ", latency "
            << impl.latency << " cycles, area " << fmt(impl.area.total(), 0)
            << "\n\n";

  // A stream of samples to process.
  Rng rng(99);
  std::vector<std::vector<std::int64_t>> samples;
  for (int s = 0; s < 24; ++s) {
    std::vector<std::int64_t> in;
    for (std::size_t k = 0; k < kernel.inputs().size(); ++k) {
      in.push_back(rng.uniform_int(-2000, 2000));
    }
    samples.push_back(in);
  }

  // Interface synthesis under two different design intents.
  TextTable table({"intent", "driver", "base addr", "cycles/sample",
                   "bus accesses", "background units"});
  for (const double latency_weight : {1.0, 0.15}) {
    cosynth::AddressMapAllocator alloc;
    cosynth::Request request;
    request.impl = &impl;
    request.samples = &samples;
    request.allocator = &alloc;
    request.interface_reqs.latency_weight = latency_weight;
    request.interface_reqs.background_unroll = 6;
    const cosynth::InterfaceDesign design =
        *cosynth::run(cosynth::Target::kInterface, request).iface;
    const auto& chosen = design.candidates[design.selected];
    std::ostringstream addr;
    addr << "0x" << std::hex << design.base_address;
    table.add_row({latency_weight > 0.5 ? "latency-critical"
                                        : "background-throughput",
                   chosen.use_irq ? "interrupt" : "polling", addr.str(),
                   fmt(chosen.cycles_per_sample, 1),
                   fmt(chosen.report.bus_accesses),
                   fmt(static_cast<long long>(
                       chosen.report.background_units))});
  }
  std::cout << table << "\n";

  // Validate the full stack at the most detailed abstraction level.
  sim::CosimConfig pin;
  pin.level = sim::InterfaceLevel::kPin;
  const sim::CosimReport report = accel_cosim(impl, pin, samples);
  std::cout << "pin-level validation: " << report.sw_instructions
            << " instructions retired, " << report.sim_events
            << " simulation events, " << report.signal_transitions
            << " pin transitions, checksum " << report.checksum << "\n\n";

  // Waveform capture of a single bus handshake, as a debug engineer
  // would view it (VCD excerpt; pipe to a file for GTKWave).
  {
    sim::Simulator wave_sim;
    sim::BusModel bus(wave_sim, sim::BusConfig{},
                      sim::InterfaceLevel::kPin);
    sim::VcdTracer vcd(wave_sim);
    vcd.trace(bus.strobe_pin());
    vcd.trace(bus.ack_pin());
    vcd.trace(bus.addr_pins());
    bus.access(0x10040, /*is_write=*/true);
    wave_sim.run();
    std::cout << "one bus write as VCD:\n" << vcd.str() << "\n";
  }

  // And the accelerator itself as synthesizable Verilog (first lines).
  const std::string rtl = hw::emit_verilog(impl);
  std::cout << "generated RTL (" << rtl.size() << " bytes), header:\n"
            << rtl.substr(0, rtl.find("\n\n")) << "\n";
  return 0;
}
