// Heterogeneous multiprocessor example (the paper's Figure 5 system)
// plus a multi-threaded co-processor partition (Figure 9).
//
// Part 1 sizes a processor farm for a random periodic task set under a
// deadline sweep, comparing the exact (SOS-style) synthesizer with the
// bin-packing heuristic. Part 2 partitions the EKG patient-monitor
// process network between a CPU and a multi-threaded co-processor and
// verifies the result by message-level co-simulation.
//
// Run: ./build/examples/multiproc_design
#include <iostream>

#include "apps/workloads.h"
#include "base/rng.h"
#include "base/table.h"
#include "cosynth/mtcoproc.h"
#include "cosynth/multiproc.h"
#include "ir/task_graph_gen.h"

int main() {
  using namespace mhs;

  // ---- Part 1: size a heterogeneous multiprocessor ------------------------
  Rng rng(2026);
  ir::TaskGraphGenConfig gen;
  gen.num_tasks = 8;
  gen.mean_sw_cycles = 1500.0;
  const ir::TaskGraph tasks = ir::generate_task_graph(gen, rng);
  const auto catalog = cosynth::default_pe_catalog();
  const double serial = tasks.total_sw_cycles();

  std::cout << "task set: " << tasks.num_tasks() << " tasks, "
            << fmt(serial, 0) << " serial cycles\n";
  TextTable sizing({"deadline", "engine", "PEs bought", "total cost",
                    "makespan"});
  for (const double factor : {1.5, 0.8, 0.55}) {
    const double deadline = serial * factor;
    for (const bool exact : {true, false}) {
      const cosynth::MpDesign d =
          exact ? cosynth::synthesize_exact(tasks, catalog, deadline)
                : cosynth::synthesize_binpack(tasks, catalog, deadline);
      std::string pes;
      for (const std::size_t t : d.instance_type) {
        if (!pes.empty()) pes += "+";
        pes += catalog[t].name;
      }
      sizing.add_row({fmt(deadline, 0), exact ? "exact" : "bin-pack",
                      d.feasible ? pes : "(infeasible)", fmt(d.cost, 0),
                      fmt(d.makespan, 0)});
    }
  }
  std::cout << sizing << "\n";

  // ---- Part 2: multi-threaded co-processor for the EKG monitor -----------
  const ir::ProcessNetwork ekg = apps::ekg_monitor_network();
  sim::OsCosimConfig eval;
  eval.iterations = 64;
  const cosynth::MtCoprocDesign design =
      cosynth::mt_partition_exhaustive(ekg, 4500.0, eval);

  std::cout << "EKG monitor partition (budget 4500):\n";
  TextTable mapping({"process", "side"});
  for (const ir::ProcessId p : ekg.process_ids()) {
    mapping.add_row({ekg.process(p).name,
                     design.in_hw[p.index()] ? "co-processor thread"
                                             : "software"});
  }
  std::cout << mapping;
  std::cout << "makespan " << fmt(design.evaluation.makespan, 0)
            << " cycles, HW area " << fmt(design.hw_area, 0)
            << ", cross-boundary comm "
            << fmt(design.evaluation.cross_comm_cycles, 0)
            << " cycles, deadlock-free: "
            << (design.evaluation.deadlocked ? "no" : "yes") << "\n";
  return 0;
}
