// Tier-1 corpus replay: every committed fuzzer reproducer in
// tests/fixtures/corpus/*.cdfg is a past (or representative) fuzz find
// frozen as a permanent regression. Each file must parse, pass the
// structural verifier and the full analysis gates cleanly, and — the
// point of the corpus — hold up under differential HW/SW
// co-verification: synthesized under both min-area and min-latency
// goals, word-wide and narrowed, RtlSim must agree with the compiled
// reference on a seeded vector campaign (hw::verify_synthesis).
//
// To grow the corpus: take the "shrunk reproducer" block an equiv_fuzz
// or absint_fuzz failure prints, save it as a new .cdfg file here, fix
// the bug, and this test keeps it fixed.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/absint.h"
#include "analysis/lint.h"
#include "analysis/verify.h"
#include "hw/equivalence.h"
#include "hw/hls.h"
#include "ir/cdfg.h"
#include "ir/serialize.h"

namespace mhs {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus_files() {
  const fs::path dir = fs::path(MHS_FIXTURE_DIR) / "corpus";
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".cdfg") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Corpus, IsNonEmpty) {
  EXPECT_GE(corpus_files().size(), 1u)
      << "the reproducer corpus must never regress to empty";
}

TEST(Corpus, EveryReproducerParsesVerifiesAndLintsClean) {
  for (const fs::path& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const ir::Cdfg k = ir::cdfg_from_text(slurp(path));
    const analysis::Diagnostics verify = analysis::verify_cdfg(k);
    EXPECT_FALSE(verify.has_errors()) << verify.str();
    // Full gate stack (verify + lint + range lints), as the flow runs it.
    const analysis::Diagnostics diags = analysis::analyze_cdfg(k);
    EXPECT_FALSE(diags.has_errors()) << diags.str();
    // Round-trip stability: a committed reproducer re-serializes to
    // itself, so corpus files stay in canonical form.
    EXPECT_EQ(ir::to_text(k), slurp(path));
  }
}

TEST(Corpus, EveryReproducerIsEquivalentUnderDifferentialCheck) {
  // The schedule inside each HlsResult points at this library; it must
  // stay alive for as long as the implementations are exercised.
  const hw::ComponentLibrary lib = hw::default_library();
  for (const fs::path& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const ir::Cdfg k = ir::cdfg_from_text(slurp(path));
    ASSERT_FALSE(analysis::verify_cdfg(k).has_errors());
    const std::vector<std::size_t> widths = analysis::absint_cdfg(k).width;
    for (const hw::HlsGoal goal :
         {hw::HlsGoal::kMinArea, hw::HlsGoal::kMinLatency}) {
      for (const bool narrowed : {false, true}) {
        hw::HlsConstraints constraints;
        constraints.goal = goal;
        if (narrowed) constraints.op_width = widths;
        const hw::HlsResult impl = hw::synthesize(k, lib, constraints);
        const hw::EquivCampaign campaign =
            hw::verify_synthesis(impl, 16, 0xc02b05);
        EXPECT_TRUE(campaign.all_equivalent)
            << (narrowed ? "narrowed" : "word-wide") << ": "
            << campaign.first_failure;
        EXPECT_EQ(campaign.vectors + campaign.trapped, 16u);
      }
    }
  }
}

}  // namespace
}  // namespace mhs
