// Tier-2 differential HW/SW co-verification fuzzer (built with the
// tree's sanitizer presets in the sanitize gate; see
// cmake/run_sanitized.cmake).
//
// The contract under attack: for every randomly generated CDFG, every
// synthesis goal, narrowed or word-wide datapath, and every input vector
// inside the declared ranges on which the reference does not trap, the
// synthesized implementation — executed cycle-by-cycle by hw::RtlSim
// through its FSM controller, FU binding, and register file — computes
// bit-identical outputs to ir::CompiledEval, in exactly the schedule's
// promised number of cycles, with the reference-predicted register-file
// final state (hw::check_equivalence).
//
// Kernels come from the shared generator (tests/fuzz_kernels.h): kernel
// i uses seed base+i (base overridable via MHS_EQUIV_SEED), so any
// mismatch reproduces from the printed seed alone. On a mismatch the
// harness shrinks twice — first to the smallest op cone that still
// fails under re-synthesis, then the inputs toward zero — and prints an
// ir::to_text reproducer ready for tests/fixtures/corpus/.
//
// Iteration counts honor MHS_FUZZ_ITERS; the default is 2500 kernels x
// 4 input vectors x (goal, narrowing) drawn per kernel = 10000 cases
// (ISSUE acceptance floor).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/absint.h"
#include "analysis/verify.h"
#include "base/rng.h"
#include "fuzz_env.h"
#include "fuzz_kernels.h"
#include "hw/equivalence.h"
#include "hw/hls.h"
#include "ir/cdfg.h"
#include "ir/serialize.h"

namespace mhs::hw {
namespace {

constexpr std::uint64_t kSeedBase = 0x0e91f00dull;
constexpr std::size_t kSamplesPerKernel = 4;

/// One synthesis configuration drawn per kernel: a goal (with feasible
/// bounds derived from the kernel itself) plus optional PR-9 narrowing.
struct SynthPlan {
  HlsConstraints constraints;
  bool narrowed = false;
};

SynthPlan draw_plan(Rng& rng, const ir::Cdfg& k, const ComponentLibrary& lib) {
  SynthPlan plan;
  switch (rng.uniform_int(0, 3)) {
    case 0:
      plan.constraints.goal = HlsGoal::kMinLatency;
      break;
    case 1:
      plan.constraints.goal = HlsGoal::kMinArea;
      break;
    case 2: {
      plan.constraints.goal = HlsGoal::kLatencyConstrained;
      const std::size_t asap = asap_schedule(k, lib).num_steps();
      plan.constraints.latency_bound =
          asap + static_cast<std::size_t>(rng.uniform_int(0, 8));
      break;
    }
    default: {
      plan.constraints.goal = HlsGoal::kResourceConstrained;
      for (std::size_t t = 0; t < kNumFuTypes; ++t) {
        plan.constraints.resources[all_fu_types()[t]] =
            1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
      }
      break;
    }
  }
  if (rng.bernoulli(0.5)) {
    plan.narrowed = true;
    plan.constraints.op_width = analysis::absint_cdfg(k).width;
  }
  return plan;
}

/// Re-derives the plan's constraints for a shrunk kernel (bounds and
/// widths are per-kernel, so they cannot be reused verbatim).
HlsConstraints refit(const SynthPlan& plan, const ir::Cdfg& k,
                     const ComponentLibrary& lib) {
  HlsConstraints c = plan.constraints;
  if (c.goal == HlsGoal::kLatencyConstrained) {
    // Keep the original slack over the (new) ASAP latency.
    c.latency_bound = asap_schedule(k, lib).num_steps() +
                      (plan.constraints.latency_bound > 0 ? 2 : 0);
  }
  if (plan.narrowed) {
    c.op_width = analysis::absint_cdfg(k).width;
  }
  return c;
}

/// Restricts a named input map to the inputs `k` actually has.
std::map<std::string, std::int64_t> restrict_inputs(
    const ir::Cdfg& k, const std::map<std::string, std::int64_t>& inputs) {
  std::map<std::string, std::int64_t> out;
  for (const ir::OpId id : k.inputs()) {
    const auto it = inputs.find(k.op(id).name);
    if (it != inputs.end()) out.insert(*it);
  }
  return out;
}

/// True when `k` synthesized under `plan` fails equivalence on `inputs`.
/// Trapping or infeasible configurations do not count as failures.
bool fails(const ir::Cdfg& k, const SynthPlan& plan,
           const ComponentLibrary& lib,
           const std::map<std::string, std::int64_t>& inputs,
           EquivResult* result = nullptr) {
  if (analysis::verify_cdfg(k).has_errors()) return false;
  try {
    const HlsResult impl = synthesize(k, lib, refit(plan, k, lib));
    const EquivResult r = check_equivalence(impl, inputs);
    if (result != nullptr) *result = r;
    return !r.trapped && !r.equivalent;
  } catch (const Error&) {
    return false;
  }
}

/// Two-stage minimization: smallest failing op cone, then inputs toward
/// zero. Returns the shrunk kernel and rewrites `inputs` in place.
ir::Cdfg shrink(const ir::Cdfg& k, const SynthPlan& plan,
                const ComponentLibrary& lib,
                std::map<std::string, std::int64_t>* inputs) {
  // Stage 1 — cone shrink: of all op cones that still fail (after
  // re-synthesis under refitted constraints), keep the smallest.
  ir::Cdfg best = k;
  std::map<std::string, std::int64_t> best_inputs = *inputs;
  for (const ir::OpId id : k.op_ids()) {
    if (!ir::op_is_compute(k.op(id).kind)) continue;
    const ir::Cdfg cone = ir::extract_cone(k, id);
    if (cone.num_ops() >= best.num_ops()) continue;
    const auto cone_inputs = restrict_inputs(cone, *inputs);
    if (fails(cone, plan, lib, cone_inputs)) {
      best = cone;
      best_inputs = cone_inputs;
    }
  }
  // Stage 2 — input shrink: push each input toward zero (then toward
  // its range's nearest bound) while the failure persists.
  for (const ir::OpId id : best.inputs()) {
    const std::string& name = best.op(id).name;
    const ir::ValueRange r =
        best.op(id).range.value_or(ir::ValueRange{});
    for (const std::int64_t candidate :
         {std::int64_t{0}, std::int64_t{1}, r.lo, r.hi}) {
      if (candidate < r.lo || candidate > r.hi) continue;
      if (best_inputs[name] == candidate) continue;
      std::map<std::string, std::int64_t> trial = best_inputs;
      trial[name] = candidate;
      if (fails(best, plan, lib, trial)) {
        best_inputs = trial;
        break;
      }
    }
  }
  *inputs = best_inputs;
  return best;
}

std::string describe_plan(const SynthPlan& plan) {
  std::string s;
  switch (plan.constraints.goal) {
    case HlsGoal::kMinLatency:          s = "min-latency"; break;
    case HlsGoal::kMinArea:             s = "min-area"; break;
    case HlsGoal::kLatencyConstrained:  s = "latency-constrained"; break;
    case HlsGoal::kResourceConstrained: s = "resource-constrained"; break;
  }
  return s + (plan.narrowed ? ", narrowed" : ", word-wide");
}

TEST(EquivFuzz, RtlSimMatchesCompiledReferenceAtScale) {
  const std::size_t kernels = fuzz::fuzz_iters(2500);
  const std::uint64_t base = fuzz::fuzz_seed_base("MHS_EQUIV_SEED", kSeedBase);
  const ComponentLibrary lib = default_library();
  std::size_t checked = 0;
  std::size_t trapped = 0;
  std::size_t synthesized = 0;
  // Seeds advance until `kernels` verify-clean kernels have been
  // synthesized (a random kernel may trip the structural verifier, e.g.
  // a constant shift amount outside [0,63]); the attempt cap only
  // guards against a generator regression starving the loop.
  for (std::uint64_t i = 0; synthesized < kernels; ++i) {
    ASSERT_LT(i, kernels * 8) << "generator yields too few valid kernels";
    const std::uint64_t seed = base + i;
    const ir::Cdfg k = fuzz::random_kernel(seed);
    if (analysis::verify_cdfg(k).has_errors()) continue;
    ++synthesized;
    Rng rng(seed ^ 0xd1ffe2e4ce5ull);
    const SynthPlan plan = draw_plan(rng, k, lib);
    std::optional<HlsResult> impl;
    try {
      impl.emplace(synthesize(k, lib, plan.constraints));
    } catch (const Error&) {
      // Infeasible bound draws are not failures of the contract.
      continue;
    }
    const ir::CompiledEval reference(k);
    EquivOptions options;
    options.reference = &reference;
    const std::vector<ir::OpId> input_ids = k.inputs();
    for (std::size_t s = 0; s < kSamplesPerKernel; ++s) {
      std::map<std::string, std::int64_t> inputs;
      for (const ir::OpId id : input_ids) {
        const ir::ValueRange r =
            k.op(id).range.value_or(ir::ValueRange{});
        std::int64_t v;
        switch (rng.uniform_int(0, 3)) {
          case 0:  v = r.lo; break;
          case 1:  v = r.hi; break;
          default: v = fuzz::draw_in_range(rng, r.lo, r.hi); break;
        }
        inputs[k.op(id).name] = v;
      }
      const EquivResult result = check_equivalence(*impl, inputs, options);
      if (result.trapped) {
        ++trapped;
        continue;
      }
      ++checked;
      if (result.equivalent) continue;
      // Mismatch: shrink to the smallest failing cone + inputs, print
      // the full reproducer, and stop the campaign (first escape only).
      auto shrunk_inputs = inputs;
      const ir::Cdfg reproducer = shrink(k, plan, lib, &shrunk_inputs);
      std::string inputs_text;
      for (const auto& [name, value] : shrunk_inputs) {
        inputs_text +=
            (inputs_text.empty() ? "" : ", ") + name + "=" +
            std::to_string(value);
      }
      ADD_FAILURE() << "equivalence mismatch (seed " << seed << "; "
                    << describe_plan(plan) << "): " << result.detail
                    << "\n  shrunk inputs: " << inputs_text
                    << "\nshrunk reproducer:\n" << ir::to_text(reproducer);
      return;
    }
  }
  // The campaign must have compared at scale: most vectors do not trap.
  EXPECT_GT(checked, kernels);
  EXPECT_EQ(synthesized, kernels);
  RecordProperty("kernels", static_cast<int>(kernels));
  RecordProperty("checked_vectors", static_cast<int>(checked));
  RecordProperty("trapped_vectors", static_cast<int>(trapped));
}

// Determinism of the campaign inputs: the same seed regenerates the
// same kernel and the same synthesis plan — the printed-seed reproducer
// contract.
TEST(EquivFuzz, CampaignIsDeterministic) {
  const ComponentLibrary lib = default_library();
  for (const std::uint64_t seed :
       {kSeedBase, kSeedBase + 77, kSeedBase + 4242}) {
    const ir::Cdfg a = fuzz::random_kernel(seed);
    const ir::Cdfg b = fuzz::random_kernel(seed);
    EXPECT_EQ(ir::to_text(a), ir::to_text(b));
    if (analysis::verify_cdfg(a).has_errors()) continue;
    Rng ra(seed ^ 0xd1ffe2e4ce5ull);
    Rng rb(seed ^ 0xd1ffe2e4ce5ull);
    const SynthPlan pa = draw_plan(ra, a, lib);
    const SynthPlan pb = draw_plan(rb, b, lib);
    EXPECT_EQ(describe_plan(pa), describe_plan(pb));
    EXPECT_EQ(pa.constraints.op_width, pb.constraints.op_width);
  }
}

}  // namespace
}  // namespace mhs::hw
