// The shared random-kernel generator behind the CDFG fuzz campaigns
// (absint_fuzz's soundness sweep, equiv_fuzz's differential RTL/SW
// sweep). One generator, one distribution: a kernel seeded with the
// same value is bit-identical across fuzzers and across runs, so a seed
// printed by any campaign reproduces the exact kernel everywhere.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "base/rng.h"
#include "ir/cdfg.h"

namespace mhs::fuzz {

/// A random input range biased toward the shapes that stress the
/// domains: unannotated (full), small ranges near zero, single points,
/// sign-crossing spans, and the i64 corners.
inline ir::ValueRange random_range(Rng& rng) {
  constexpr std::int64_t kI64Min = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();
  switch (rng.uniform_int(0, 5)) {
    case 0:
      return {kI64Min, kI64Max};  // unannotated
    case 1: {                     // small, near zero
      const std::int64_t lo = rng.uniform_int(-300, 300);
      return {lo, lo + rng.uniform_int(0, 64)};
    }
    case 2: {  // single point (often a hazardous one)
      const std::int64_t v =
          rng.bernoulli(0.3) ? rng.uniform_int(-2, 2)
                             : rng.uniform_int(-100000, 100000);
      return {v, v};
    }
    case 3: {  // top corner
      const std::int64_t lo = kI64Max - rng.uniform_int(0, 1000);
      return {lo, kI64Max};
    }
    case 4: {  // bottom corner
      const std::int64_t hi = kI64Min + rng.uniform_int(0, 1000);
      return {kI64Min, hi};
    }
    default: {  // wide, sign-crossing
      const std::int64_t lo = rng.uniform_int(-1'000'000'000, 0);
      return {lo, rng.uniform_int(0, 1'000'000'000)};
    }
  }
}

inline std::int64_t random_constant(Rng& rng) {
  constexpr std::int64_t kI64Min = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();
  switch (rng.uniform_int(0, 4)) {
    case 0:  return rng.uniform_int(-4, 4);           // small (0, ±1, ±2...)
    case 1:  return std::int64_t{1} << rng.uniform_int(0, 62);  // pow2
    case 2:  return rng.uniform_int(0, 70);           // shift-amount-ish
    case 3:  return rng.bernoulli(0.5) ? kI64Min : kI64Max;     // corners
    default: return rng.uniform_int(-100000, 100000);
  }
}

/// One random kernel: a few ranged inputs and constants, then a chain of
/// random compute ops over random existing operands, then one output.
inline ir::Cdfg random_kernel(std::uint64_t seed) {
  Rng rng(seed);
  ir::Cdfg k("fuzz" + std::to_string(seed));
  std::vector<ir::OpId> pool;
  const std::int64_t num_inputs = rng.uniform_int(1, 4);
  for (std::int64_t i = 0; i < num_inputs; ++i) {
    const ir::ValueRange r = random_range(rng);
    pool.push_back(k.input("x" + std::to_string(i), r));
  }
  const std::int64_t num_consts = rng.uniform_int(0, 3);
  for (std::int64_t i = 0; i < num_consts; ++i) {
    pool.push_back(k.constant(random_constant(rng)));
  }
  static const std::vector<ir::OpKind> kComputeKinds = {
      ir::OpKind::kAdd, ir::OpKind::kSub,   ir::OpKind::kMul,
      ir::OpKind::kDiv, ir::OpKind::kShl,   ir::OpKind::kShr,
      ir::OpKind::kAnd, ir::OpKind::kOr,    ir::OpKind::kXor,
      ir::OpKind::kNeg, ir::OpKind::kAbs,   ir::OpKind::kMin,
      ir::OpKind::kMax, ir::OpKind::kCmpLt, ir::OpKind::kCmpEq,
      ir::OpKind::kSelect};
  const std::int64_t num_ops = rng.uniform_int(1, 12);
  for (std::int64_t i = 0; i < num_ops; ++i) {
    const ir::OpKind kind = rng.pick(kComputeKinds);
    const auto operand = [&] { return rng.pick(pool); };
    switch (ir::op_arity(kind)) {
      case 1:
        pool.push_back(k.unary(kind, operand()));
        break;
      case 2:
        pool.push_back(k.binary(kind, operand(), operand()));
        break;
      default:
        pool.push_back(k.select(operand(), operand(), operand()));
        break;
    }
  }
  k.output("y", pool.back());
  return k;
}

}  // namespace mhs::fuzz
