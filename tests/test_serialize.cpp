// Tests for the text serialization of task graphs and process networks.
#include <gtest/gtest.h>

#include "apps/workloads.h"
#include "base/rng.h"
#include "ir/serialize.h"
#include "ir/task_graph_gen.h"

namespace mhs::ir {
namespace {

TEST(SerializeTaskGraph, RoundTripPreservesEverything) {
  Rng rng(9);
  TaskGraphGenConfig cfg;
  cfg.num_tasks = 12;
  const TaskGraph original = generate_task_graph(cfg, rng);
  const TaskGraph parsed = task_graph_from_text(to_text(original));

  ASSERT_EQ(parsed.num_tasks(), original.num_tasks());
  ASSERT_EQ(parsed.num_edges(), original.num_edges());
  EXPECT_EQ(parsed.name(), original.name());
  for (const TaskId t : original.task_ids()) {
    const Task& a = original.task(t);
    const Task& b = parsed.task(t);
    EXPECT_EQ(a.name, b.name);
    EXPECT_NEAR(a.costs.sw_cycles, b.costs.sw_cycles,
                1e-4 * a.costs.sw_cycles + 1e-9);
    EXPECT_NEAR(a.costs.hw_cycles, b.costs.hw_cycles,
                1e-4 * a.costs.hw_cycles + 1e-9);
    EXPECT_NEAR(a.costs.hw_area, b.costs.hw_area,
                1e-4 * a.costs.hw_area + 1e-9);
    EXPECT_NEAR(a.costs.modifiability, b.costs.modifiability, 1e-4);
    EXPECT_NEAR(a.costs.parallelism, b.costs.parallelism, 1e-4);
  }
  for (const EdgeId e : original.edge_ids()) {
    EXPECT_EQ(parsed.edge(e).src, original.edge(e).src);
    EXPECT_EQ(parsed.edge(e).dst, original.edge(e).dst);
    EXPECT_NEAR(parsed.edge(e).bytes, original.edge(e).bytes,
                1e-4 * original.edge(e).bytes + 1e-9);
  }
}

TEST(SerializeTaskGraph, ParsesHandWrittenText) {
  const char* text = R"(# a two-stage pipeline
taskgraph demo
task producer sw=100 hw=20 area=500 mod=0.3
task consumer sw=200 hw=25 area=700 par=0.9 deadline=500
edge 0 1 bytes=64
end
)";
  const TaskGraph g = task_graph_from_text(text);
  EXPECT_EQ(g.name(), "demo");
  ASSERT_EQ(g.num_tasks(), 2u);
  EXPECT_DOUBLE_EQ(g.task(TaskId(0)).costs.sw_cycles, 100.0);
  EXPECT_DOUBLE_EQ(g.task(TaskId(0)).costs.modifiability, 0.3);
  EXPECT_DOUBLE_EQ(g.task(TaskId(1)).deadline, 500.0);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.edge(EdgeId(0)).bytes, 64.0);
}

TEST(SerializeTaskGraph, RejectsMalformedInput) {
  EXPECT_THROW(task_graph_from_text(""), PreconditionError);
  EXPECT_THROW(task_graph_from_text("taskgraph g\n"), PreconditionError);
  EXPECT_THROW(task_graph_from_text("taskgraph g\ntask t\nend\n"),
               PreconditionError);  // missing required keys
  EXPECT_THROW(
      task_graph_from_text(
          "taskgraph g\ntask t sw=1 hw=1 area=1 bogus=2\nend\n"),
      PreconditionError);  // unknown key
  EXPECT_THROW(
      task_graph_from_text("taskgraph g\ntask t sw=x hw=1 area=1\nend\n"),
      PreconditionError);  // bad number
  EXPECT_THROW(
      task_graph_from_text(
          "taskgraph g\ntask t sw=1 hw=1 area=1\nedge 0 5 bytes=1\nend\n"),
      PreconditionError);  // dangling edge
  EXPECT_THROW(
      task_graph_from_text("taskgraph g\nend\ntask t sw=1 hw=1 area=1\n"),
      PreconditionError);  // content after end
}

TEST(SerializeTaskGraph, RejectsCyclicGraphs) {
  const char* text =
      "taskgraph g\n"
      "task a sw=1 hw=1 area=1\n"
      "task b sw=1 hw=1 area=1\n"
      "edge 0 1 bytes=1\n"
      "edge 1 0 bytes=1\n"
      "end\n";
  EXPECT_THROW(task_graph_from_text(text), PreconditionError);
}

TEST(SerializeNetwork, RoundTripPreservesStructure) {
  const ProcessNetwork original = apps::ekg_monitor_network();
  const ProcessNetwork parsed =
      process_network_from_text(to_text(original));
  ASSERT_EQ(parsed.num_processes(), original.num_processes());
  ASSERT_EQ(parsed.num_channels(), original.num_channels());
  for (const ProcessId p : original.process_ids()) {
    EXPECT_EQ(parsed.process(p).name, original.process(p).name);
    EXPECT_NEAR(parsed.process(p).sw_cycles,
                original.process(p).sw_cycles, 1e-6);
  }
  for (const ChannelId c : original.channel_ids()) {
    EXPECT_EQ(parsed.channel(c).producer, original.channel(c).producer);
    EXPECT_EQ(parsed.channel(c).consumer, original.channel(c).consumer);
    EXPECT_EQ(parsed.channel(c).capacity, original.channel(c).capacity);
    EXPECT_NEAR(parsed.channel_bytes_per_iteration(c),
                original.channel_bytes_per_iteration(c), 1e-6);
  }
  parsed.validate();
}

TEST(SerializeNetwork, ParsesHandWrittenText) {
  const char* text = R"(network demo
process src sw=100 hw=10 area=200
process dst sw=50 hw=5 area=100
channel data 0 1 cap=4 bytes=128
end
)";
  const ProcessNetwork net = process_network_from_text(text);
  EXPECT_EQ(net.num_processes(), 2u);
  ASSERT_EQ(net.num_channels(), 1u);
  EXPECT_EQ(net.channel(ChannelId(0)).capacity, 4u);
  EXPECT_DOUBLE_EQ(net.channel_bytes_per_iteration(ChannelId(0)), 128.0);
}

TEST(SerializeNetwork, RejectsMalformedInput) {
  EXPECT_THROW(process_network_from_text("network n\nchannel c 0 1 "
                                         "bytes=1\nend\n"),
               PreconditionError);  // undefined processes
  EXPECT_THROW(process_network_from_text(
                   "network n\nprocess p sw=1 hw=1 area=1\nprocess q sw=1 "
                   "hw=1 area=1\nchannel c 0 1 cap=0 bytes=1\nend\n"),
               PreconditionError);  // zero capacity
}

}  // namespace
}  // namespace mhs::ir
