// Tests for periodic-task schedulability analysis (cosynth/periodic).
#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.h"
#include "cosynth/run.h"
#include "ir/task_graph_gen.h"

namespace mhs::cosynth {
namespace {

TEST(Periodic, UtilizationAndEdfBound) {
  const std::vector<PeriodicTask> tasks = {{10, 2}, {20, 5}, {40, 10}};
  EXPECT_DOUBLE_EQ(utilization(tasks), 0.2 + 0.25 + 0.25);
  EXPECT_TRUE(edf_feasible(tasks));
  const std::vector<PeriodicTask> over = {{10, 6}, {20, 10}};
  EXPECT_FALSE(edf_feasible(over));
  EXPECT_THROW(utilization({{0, 1}}), PreconditionError);
}

TEST(Periodic, LiuLaylandBoundValues) {
  EXPECT_DOUBLE_EQ(liu_layland_bound(1), 1.0);
  EXPECT_NEAR(liu_layland_bound(2), 0.8284, 1e-4);
  EXPECT_NEAR(liu_layland_bound(3), 0.7798, 1e-4);
  // The bound converges to ln 2.
  EXPECT_NEAR(liu_layland_bound(100000), std::log(2.0), 1e-4);
}

TEST(Periodic, ResponseTimeAnalysisTextbookExample) {
  // Classic example (periods 50/80/120, wcets 10/20/40):
  //   R1 = 10
  //   R2 = 20 + ceil(R2/50)*10 -> 30
  //   R3 = 40 + ceil(R3/50)*10 + ceil(R3/80)*20 -> 40+20+40=100... iterate:
  //        R=40: 40+10+20=70; R=70: 40+20+20=80; R=80: 40+20+20=80. fix.
  std::vector<PeriodicTask> tasks = {{50, 10}, {80, 20}, {120, 40}};
  EXPECT_DOUBLE_EQ(rm_response_time(tasks, 0), 10.0);
  EXPECT_DOUBLE_EQ(rm_response_time(tasks, 1), 30.0);
  EXPECT_DOUBLE_EQ(rm_response_time(tasks, 2), 80.0);
  EXPECT_TRUE(rm_feasible(tasks));
}

TEST(Periodic, RmCatchesInfeasibleSetEdfAccepts) {
  // U = 0.5 + 0.5 = 1.0: EDF-feasible, RM-infeasible for these phases
  // (classic: two tasks at U=1 only schedule under RM if harmonic).
  const std::vector<PeriodicTask> harmonic = {{10, 5}, {20, 10}};
  EXPECT_TRUE(edf_feasible(harmonic));
  EXPECT_TRUE(rm_feasible(harmonic));  // harmonic periods: RM also works

  const std::vector<PeriodicTask> tight = {{10, 5}, {14, 7}};  // U = 1.0
  EXPECT_TRUE(edf_feasible(tight));
  EXPECT_FALSE(rm_feasible(tight));  // R2 = 7 + ceil(R2/10)*5 diverges
}

TEST(Periodic, RmMonotoneInLoad) {
  std::vector<PeriodicTask> tasks = {{100, 10}, {150, 30}, {350, 90}};
  ASSERT_TRUE(rm_feasible(tasks));
  tasks[2].wcet = 250;  // overload the longest-period task
  EXPECT_FALSE(rm_feasible(tasks));
}

ir::TaskGraph periodic_graph(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  ir::TaskGraphGenConfig cfg;
  cfg.num_tasks = n;
  cfg.mean_sw_cycles = 800.0;
  ir::TaskGraph g = ir::generate_task_graph(cfg, rng);
  for (const ir::TaskId t : g.task_ids()) {
    // Periods 4x-20x the task's own wcet: individually schedulable.
    g.task(t).period = g.task(t).costs.sw_cycles * rng.uniform(4.0, 20.0);
  }
  return g;
}

/// Synthesis through the one sanctioned entry point. The gate stays off:
/// these tests exercise the synthesizer's own preconditions (e.g. the
/// missing-period throw below), not the request gate.
MpDesign run_periodic(const ir::TaskGraph& g,
                      const std::vector<PeType>& catalog) {
  Request request;
  request.graph = &g;
  request.catalog = catalog;
  request.lint_level = analysis::LintLevel::kOff;
  return *run(Target::kMultiprocPeriodic, request).multiproc;
}

TEST(Periodic, SynthesisProducesRmSchedulableDesign) {
  const ir::TaskGraph g = periodic_graph(3, 10);
  const auto catalog = default_pe_catalog();
  const MpDesign design = run_periodic(g, catalog);
  ASSERT_TRUE(design.feasible);
  const PeriodicAnalysis analysis = analyze_periodic(g, catalog, design);
  EXPECT_TRUE(analysis.rm_schedulable);
  EXPECT_TRUE(analysis.edf_schedulable);
  for (const double u : analysis.pe_utilization) {
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  // Every task assigned.
  for (const std::size_t inst : design.assignment) {
    EXPECT_LT(inst, design.instance_type.size());
  }
}

TEST(Periodic, HigherLoadBuysMoreOrFasterPes) {
  const auto catalog = default_pe_catalog();
  ir::TaskGraph light = periodic_graph(5, 8);
  ir::TaskGraph heavy = light;
  for (const ir::TaskId t : heavy.task_ids()) {
    heavy.task(t).period = light.task(t).period / 4.0;  // 4x the load
  }
  const MpDesign d_light = run_periodic(light, catalog);
  const MpDesign d_heavy = run_periodic(heavy, catalog);
  ASSERT_TRUE(d_light.feasible);
  ASSERT_TRUE(d_heavy.feasible);
  EXPECT_GT(d_heavy.cost, d_light.cost);
}

TEST(Periodic, SynthesisRequiresPeriods) {
  Rng rng(1);
  ir::TaskGraphGenConfig cfg;
  cfg.num_tasks = 4;
  const ir::TaskGraph g = ir::generate_task_graph(cfg, rng);  // no periods
  EXPECT_THROW(run_periodic(g, default_pe_catalog()), PreconditionError);
}

}  // namespace
}  // namespace mhs::cosynth
