// Tests for mhs::svc — the unified service request API behind mhs_serve:
// wire-schema round trips, endpoint-vs-library bit-identical parity,
// request coalescing and result caching (proven via dispatcher
// counters), admission control (connection limit and queue bound 503s),
// and malformed-request 400s, over real loopback sockets.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <fstream>
#include <future>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/kernels.h"
#include "apps/workloads.h"
#include "base/rng.h"
#include "core/flow.h"
#include "hw/hls.h"
#include "obs/json.h"
#include "sim/cosim.h"
#include "sim/run.h"
#include "svc/api.h"
#include "svc/client.h"
#include "svc/dispatch.h"
#include "svc/server.h"

namespace mhs::svc {
namespace {

/// Drives the accelerator co-simulation through the sim::run seam.
sim::CosimReport accel_cosim(
    const hw::HlsResult& impl, const sim::CosimConfig& config,
    const std::vector<std::vector<std::int64_t>>& samples) {
  sim::SimRequest sreq;
  sreq.impl = &impl;
  sreq.samples = &samples;
  sreq.cosim = config;
  return sim::run(sreq).cosim.value();
}


std::string fixture(const std::string& name) {
  std::ifstream in(std::string(MHS_FIXTURE_DIR) + "/" + name,
                   std::ios::binary);
  EXPECT_TRUE(in.is_open()) << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The number `path` resolves to inside a result_json document
/// ("a.b.c" descends objects).
double result_number(const Response& response, const std::string& path) {
  const std::optional<obs::JsonValue> doc =
      obs::json_parse(response.result_json);
  EXPECT_TRUE(doc.has_value()) << response.result_json;
  const obs::JsonValue* v = &*doc;
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t dot = path.find('.', start);
    const std::string key = path.substr(
        start, dot == std::string::npos ? std::string::npos : dot - start);
    v = v->find(key);
    EXPECT_NE(v, nullptr) << path;
    if (v == nullptr) return 0.0;
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  EXPECT_TRUE(v->is_number()) << path;
  return v->as_number();
}

// ------------------------------------------------------------ wire schema

TEST(ServeApi, EndpointTablesAreConsistent) {
  for (const Endpoint e : kAllEndpoints) {
    EXPECT_EQ(endpoint_from_name(endpoint_name(e)), e);
    EXPECT_EQ(endpoint_from_path(endpoint_path(e)), e);
    const std::string method = endpoint_method(e);
    if (e == Endpoint::kHealth || e == Endpoint::kMetrics) {
      EXPECT_EQ(method, "GET");
    } else {
      EXPECT_EQ(method, "POST");
    }
  }
  EXPECT_FALSE(endpoint_from_name("teapot").has_value());
  EXPECT_FALSE(endpoint_from_path("/v1/teapot").has_value());
}

TEST(ServeApi, RequestJsonRoundTripsByteIdentical) {
  std::vector<Request> requests;

  Request flow;
  flow.endpoint = Endpoint::kFlow;
  flow.flow.workload = "dsp_chain";
  flow.flow.strategy = "annealed";
  flow.flow.latency_target = 1234.5;
  flow.flow.lint_level = "strict";
  flow.flow.cosimulate = true;
  flow.flow.cosim_samples = 4;
  requests.push_back(flow);

  Request explore;
  explore.endpoint = Endpoint::kExplore;
  explore.explore.workload = "jpeg_pipeline";
  explore.explore.strategies = {"kl", "gclp"};
  explore.explore.latency_targets = {0.0, 5000.0};
  explore.explore.threads = 3;
  requests.push_back(explore);

  Request cosim;
  cosim.endpoint = Endpoint::kCosim;
  cosim.cosim.kernel = "fir8";
  cosim.cosim.level = "pin";
  cosim.cosim.samples = 3;
  cosim.cosim.use_irq = true;
  requests.push_back(cosim);

  Request lint;
  lint.endpoint = Endpoint::kLint;
  lint.lint.artifacts = {"cdfg \"x\"\n", "taskgraph \"y\"\n"};
  lint.lint.strict = true;
  requests.push_back(lint);

  Request campaign;
  campaign.endpoint = Endpoint::kFaultCampaign;
  campaign.cosim.kernel = "dct8";
  campaign.cosim.faults.push_back({"bus_bit_flip", 0.25, 5, 100});
  campaign.cosim.faults.push_back({"dma_drop", 0.1, 0, UINT64_MAX});
  campaign.cosim.fault_seed = 99;
  requests.push_back(campaign);

  Request health;
  health.endpoint = Endpoint::kHealth;
  requests.push_back(health);

  for (const Request& request : requests) {
    const std::string wire = request.json();
    EXPECT_TRUE(obs::json_is_valid(wire)) << wire;
    std::string error;
    const std::optional<Request> parsed = Request::from_json(wire, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->json(), wire);  // byte-identical round trip
  }
}

TEST(ServeApi, ResponseJsonRoundTripsByteIdentical) {
  Response ok;
  ok.status = 200;
  ok.endpoint = "cosim";
  ok.result_json = "{\"checksum\":-12,\"total_cycles\":466,\"x\":1.5}";
  const Response bad = Response::failure(400, "flow", "graph: truncated");

  for (const Response& response : {ok, bad}) {
    const std::string wire = response.json();
    EXPECT_TRUE(obs::json_is_valid(wire)) << wire;
    std::string error;
    const std::optional<Response> parsed = Response::from_json(wire, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->json(), wire);
    EXPECT_EQ(parsed->status, response.status);
    EXPECT_EQ(parsed->error, response.error);
  }
}

TEST(ServeApi, MalformedRequestBodiesAreRejected) {
  std::string error;
  EXPECT_FALSE(Request::from_json("not json", &error).has_value());
  EXPECT_NE(error.find("invalid JSON"), std::string::npos);

  EXPECT_FALSE(
      Request::from_json(
          "{\"schema_version\":1,\"endpoint\":\"teapot\",\"params\":{}}",
          &error)
          .has_value());
  EXPECT_NE(error.find("endpoint"), std::string::npos);

  // Unknown params keys are errors, not silently dropped.
  EXPECT_FALSE(
      Request::from_json("{\"schema_version\":1,\"endpoint\":\"lint\","
                         "\"params\":{\"artifcats\":[]}}",
                         &error)
          .has_value());

  // Ill-typed fields are errors.
  EXPECT_FALSE(
      Request::from_json("{\"schema_version\":1,\"endpoint\":\"cosim\","
                         "\"params\":{\"samples\":\"eight\"}}",
                         &error)
          .has_value());
}

// ------------------------------------------- dispatcher: library parity

TEST(ServeDispatch, CosimMatchesDirectLibraryCall) {
  Request request;
  request.endpoint = Endpoint::kCosim;
  request.cosim.kernel = "fir8";
  request.cosim.samples = 6;
  request.cosim.seed = 11;

  Dispatcher dispatcher;
  const Response response = dispatcher.handle(request);
  ASSERT_TRUE(response.ok()) << response.error;

  // The same recipe the service runs (and core::flow's cosim phase).
  const ir::Cdfg kernel = apps::fir_kernel(8);
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  // impl's Schedule points into the library; keep it alive past run_cosim.
  const hw::ComponentLibrary library = hw::default_library();
  const hw::HlsResult impl = hw::synthesize(kernel, library, constraints);
  Rng rng(11);
  std::vector<std::vector<std::int64_t>> samples;
  for (std::size_t s = 0; s < 6; ++s) {
    std::vector<std::int64_t> in;
    for (std::size_t k = 0; k < kernel.inputs().size(); ++k) {
      in.push_back(rng.uniform_int(-128, 127));
    }
    samples.push_back(std::move(in));
  }
  sim::CosimConfig cfg;
  cfg.level = sim::InterfaceLevel::kRegister;
  const sim::CosimReport report = accel_cosim(impl, cfg, samples);

  EXPECT_EQ(result_number(response, "checksum"),
            static_cast<double>(report.checksum));
  EXPECT_EQ(result_number(response, "total_cycles"), report.total_cycles);
  EXPECT_EQ(result_number(response, "bus_accesses"),
            static_cast<double>(report.bus_accesses));
  EXPECT_EQ(result_number(response, "samples"), 6.0);
}

TEST(ServeDispatch, FlowMatchesDirectLibraryCall) {
  Request request;
  request.endpoint = Endpoint::kFlow;
  request.flow.workload = "dsp_chain";

  Dispatcher dispatcher;
  const Response response = dispatcher.handle(request);
  ASSERT_TRUE(response.ok()) << response.error;

  // The defaults FlowParams documents, applied exactly the way
  // prepare_flow applies them.
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  core::FlowConfig config =
      core::FlowConfig::defaults()
          .with_strategy(partition::Strategy::kKl)
          .with_latency_target(0.0)
          .with_area_weight(0.05)
          .with_lint_level(analysis::LintLevel::kWarn);
  config.optimize_kernels = true;
  config.validate_with_hls = true;
  config.cosimulate = false;
  config.cosim_level = sim::InterfaceLevel::kRegister;
  config.cosim_samples = 8;
  config.cosim_seed = 7;
  const core::FlowReport report =
      core::run_codesign_flow(w.graph, w.kernels, config);

  EXPECT_EQ(result_number(response, "latency_cycles"),
            report.design.partition.metrics.latency_cycles);
  EXPECT_EQ(result_number(response, "hw_area"),
            report.design.partition.metrics.hw_area);
  EXPECT_EQ(result_number(response, "tasks_in_hw"),
            static_cast<double>(report.design.partition.metrics.tasks_in_hw));
  EXPECT_EQ(result_number(response, "evaluations"),
            static_cast<double>(report.design.partition.evaluations));
  EXPECT_EQ(result_number(response, "speedup"), report.design.speedup());
}

TEST(ServeDispatch, LintMatchesCliSemantics) {
  Dispatcher dispatcher;

  Request clean;
  clean.endpoint = Endpoint::kLint;
  clean.lint.artifacts = {fixture("valid_small.cdfg")};
  const Response ok = dispatcher.handle(clean);
  ASSERT_TRUE(ok.ok()) << ok.error;
  EXPECT_EQ(result_number(ok, "exit_code"), 0.0);
  EXPECT_EQ(result_number(ok, "errors"), 0.0);

  Request broken;
  broken.endpoint = Endpoint::kLint;
  broken.lint.artifacts = {fixture("dangling_value.cdfg")};
  const Response fail = dispatcher.handle(broken);
  ASSERT_TRUE(fail.ok()) << fail.error;  // lint findings are a 200
  EXPECT_EQ(result_number(fail, "exit_code"), 1.0);
  EXPECT_GE(result_number(fail, "errors"), 1.0);
}

// ------------------------------------- dispatcher: caching + coalescing

TEST(ServeDispatch, RepeatedRequestIsCachedAndByteIdentical) {
  Request request;
  request.endpoint = Endpoint::kCosim;
  request.cosim.kernel = "checksum8";
  request.cosim.samples = 4;

  Dispatcher dispatcher;
  const Response first = dispatcher.handle(request);
  const Response second = dispatcher.handle(request);
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_EQ(first.json(), second.json());  // cached == fresh, byte for byte

  const DispatchStats stats = dispatcher.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.evaluations, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.errors, 0u);
}

TEST(ServeDispatch, ConcurrentIdenticalRequestsCoalesceToOneEvaluation) {
  // Result caching is off, so a request arriving after the leader
  // finished would evaluate again — evaluations == 1 can only mean the
  // riders genuinely coalesced onto the in-flight evaluation.
  Dispatcher::Options options;
  options.result_cache = false;
  Dispatcher dispatcher(options);

  Request request;
  request.endpoint = Endpoint::kFlow;
  request.flow.workload = "dsp_chain";
  // Co-simulation keeps the leader's evaluation in flight long enough
  // that the barrier-released riders reliably land on it.
  request.flow.cosimulate = true;

  constexpr std::size_t kClients = 6;
  std::vector<Response> responses(kClients);
  std::vector<std::thread> threads;
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  std::size_t arrived = 0;
  for (std::size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      {
        std::unique_lock<std::mutex> lock(gate_mutex);
        ++arrived;
        gate_cv.notify_all();
        gate_cv.wait(lock, [&] { return arrived == kClients; });
      }
      responses[i] = dispatcher.handle(request);
    });
  }
  for (std::thread& t : threads) t.join();

  for (const Response& response : responses) {
    ASSERT_TRUE(response.ok()) << response.error;
    EXPECT_EQ(response.json(), responses[0].json());
  }
  const DispatchStats stats = dispatcher.stats();
  EXPECT_EQ(stats.requests, kClients);
  EXPECT_EQ(stats.evaluations, 1u);
  EXPECT_EQ(stats.coalesced, kClients - 1);
  EXPECT_EQ(stats.cache_hits, 0u);
}

// -------------------------------------------- dispatcher: error mapping

TEST(ServeDispatch, CorruptedFixturesAreA400NotACrash) {
  Dispatcher dispatcher;

  // A structurally broken kernel fails the pre-HLS gate.
  Request cosim;
  cosim.endpoint = Endpoint::kCosim;
  cosim.cosim.kernel_text = fixture("dangling_value.cdfg");
  const Response kernel_bad = dispatcher.handle(cosim);
  EXPECT_EQ(kernel_bad.status, 400);
  EXPECT_NE(kernel_bad.error.find("verification"), std::string::npos);

  // A cyclic task graph dies in the flow's verify gate.
  Request flow;
  flow.endpoint = Endpoint::kFlow;
  flow.flow.graph = fixture("cyclic.tg");
  const Response graph_bad = dispatcher.handle(flow);
  EXPECT_EQ(graph_bad.status, 400);

  // An untokenizable lint artifact is named by index.
  Request lint;
  lint.endpoint = Endpoint::kLint;
  lint.lint.artifacts = {fixture("valid_small.cdfg"), "%% garbage %%"};
  const Response artifact_bad = dispatcher.handle(lint);
  EXPECT_EQ(artifact_bad.status, 400);
  EXPECT_NE(artifact_bad.error.find("artifacts[1]"), std::string::npos);

  // Unknown named inputs are 400s too.
  Request unknown;
  unknown.endpoint = Endpoint::kCosim;
  unknown.cosim.kernel = "fir1024";
  EXPECT_EQ(dispatcher.handle(unknown).status, 400);

  EXPECT_EQ(dispatcher.stats().errors, 4u);
}

TEST(ServeDispatch, UnknownCosimLevelIsA400) {
  // /v1/cosim level strings resolve against the canonical
  // interface_level_name table before reaching the sim::run seam; any
  // other spelling is a client error, not a fallback to some default.
  Dispatcher dispatcher;
  Request request;
  request.endpoint = Endpoint::kCosim;
  request.cosim.kernel = "fir8";
  request.cosim.level = "waveform";
  const Response response = dispatcher.handle(request);
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.error.find("unknown level 'waveform'"),
            std::string::npos);

  for (const sim::InterfaceLevel level : sim::kAllInterfaceLevels) {
    Request ok;
    ok.endpoint = Endpoint::kCosim;
    ok.cosim.kernel = "fir8";
    ok.cosim.level = sim::interface_level_name(level);
    ok.cosim.samples = 2;
    EXPECT_EQ(dispatcher.handle(ok).status, 200) << ok.cosim.level;
  }
}

// --------------------------------------------- server over real sockets

struct LoopbackServer {
  explicit LoopbackServer(ServerConfig config, Server::Handler handler)
      : server(std::move(config), std::move(handler)) {
    std::string error;
    started = server.start(&error);
    EXPECT_TRUE(started) << error;
  }
  Server server;
  bool started = false;
};

TEST(ServeServer, EndpointsOverSocketsMatchDirectDispatch) {
  Dispatcher dispatcher;
  ServerConfig config;
  config.workers = 0;  // deterministic replay mode
  LoopbackServer loopback(config, [&](const Request& request) {
    return dispatcher.handle(request);
  });
  ASSERT_TRUE(loopback.started);
  const std::uint16_t port = loopback.server.port();

  // A reference dispatcher evaluates the same requests directly;
  // deterministic responses make socket vs library byte-comparable.
  Dispatcher reference;

  std::vector<Request> requests;
  Request cosim;
  cosim.endpoint = Endpoint::kCosim;
  cosim.cosim.kernel = "fir8";
  cosim.cosim.samples = 4;
  requests.push_back(cosim);

  Request campaign;
  campaign.endpoint = Endpoint::kFaultCampaign;
  campaign.cosim.kernel = "checksum8";
  campaign.cosim.samples = 4;
  campaign.cosim.faults.push_back({"bus_bit_flip", 0.2, 0, UINT64_MAX});
  requests.push_back(campaign);

  Request lint;
  lint.endpoint = Endpoint::kLint;
  lint.lint.artifacts = {fixture("valid_small.cdfg"),
                         fixture("bad_arity.cdfg")};
  requests.push_back(lint);

  Request explore;
  explore.endpoint = Endpoint::kExplore;
  explore.explore.workload = "jpeg_pipeline";
  explore.explore.strategies = {"kl", "all_hw"};
  requests.push_back(explore);

  Request flow;
  flow.endpoint = Endpoint::kFlow;
  flow.flow.workload = "dsp_chain";
  requests.push_back(flow);

  HttpClient client("127.0.0.1", port);
  for (const Request& request : requests) {
    const char* path = endpoint_path(request.endpoint);
    HttpResult result;
    std::string error;
    ASSERT_TRUE(client.request("POST", path, request.json(), &result, &error))
        << path << ": " << error;
    EXPECT_EQ(result.status, 200) << path << ": " << result.body;
    // Bit-identical to the equivalent direct library dispatch.
    EXPECT_EQ(result.body, reference.handle(request).json()) << path;
  }

  // GET endpoints: health is deterministic; metrics must parse.
  HttpResult health;
  std::string error;
  ASSERT_TRUE(client.request("GET", "/v1/health", "", &health, &error));
  Request health_request;
  health_request.endpoint = Endpoint::kHealth;
  EXPECT_EQ(health.body, reference.handle(health_request).json());

  HttpResult metrics;
  ASSERT_TRUE(client.request("GET", "/v1/metrics", "", &metrics, &error));
  EXPECT_EQ(metrics.status, 200);
  const std::optional<obs::JsonValue> doc = obs::json_parse(metrics.body);
  ASSERT_TRUE(doc.has_value());
  const obs::JsonValue* result_obj = doc->find("result");
  ASSERT_NE(result_obj, nullptr);
  EXPECT_NE(result_obj->find("svc"), nullptr);

  const ServerStats stats = loopback.server.stats();
  EXPECT_EQ(stats.served, requests.size() + 2);
  EXPECT_EQ(stats.overloaded, 0u);
  EXPECT_EQ(stats.conn_rejected, 0u);
}

TEST(ServeServer, RoutingAndParseErrorsOverSockets) {
  Dispatcher dispatcher;
  ServerConfig config;
  config.workers = 0;
  LoopbackServer loopback(config, [&](const Request& request) {
    return dispatcher.handle(request);
  });
  ASSERT_TRUE(loopback.started);
  const std::uint16_t port = loopback.server.port();
  HttpClient client("127.0.0.1", port);

  HttpResult result;
  std::string error;

  // Unknown path.
  ASSERT_TRUE(client.request("GET", "/v1/teapot", "", &result, &error));
  EXPECT_EQ(result.status, 404);

  // Method mismatch: the flow endpoint is POST-only.
  ASSERT_TRUE(client.request("GET", "/v1/flow", "", &result, &error));
  EXPECT_EQ(result.status, 405);

  // Unparseable body.
  ASSERT_TRUE(client.request("POST", "/v1/lint", "][", &result, &error));
  EXPECT_EQ(result.status, 400);

  // Body endpoint disagreeing with the path.
  Request cosim;
  cosim.endpoint = Endpoint::kCosim;
  cosim.cosim.kernel = "fir8";
  ASSERT_TRUE(
      client.request("POST", "/v1/lint", cosim.json(), &result, &error));
  EXPECT_EQ(result.status, 400);

  // Every error above came back as a well-formed Response document.
  const std::optional<Response> parsed = Response::from_json(result.body,
                                                             &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->status, 400);
}

TEST(ServeServer, QueueBoundAnswers503WithoutQueueing) {
  // A handler that blocks until released pins the single worker; with
  // max_queue=1 the third concurrent request must be turned away.
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::atomic<int> entered{0};

  ServerConfig config;
  config.workers = 1;
  config.max_queue = 1;
  LoopbackServer loopback(config, [&](const Request&) {
    entered.fetch_add(1);
    released.wait();
    Response response;
    response.endpoint = "lint";
    response.result_json = "{\"exit_code\":0}";
    return response;
  });
  ASSERT_TRUE(loopback.started);
  const std::uint16_t port = loopback.server.port();

  Request lint;
  lint.endpoint = Endpoint::kLint;
  lint.lint.artifacts = {fixture("valid_small.cdfg")};
  const std::string body = lint.json();

  const auto post = [&](HttpResult* out) {
    std::string error;
    const std::optional<HttpResult> r =
        http_post("127.0.0.1", port, "/v1/lint", body, &error);
    ASSERT_TRUE(r.has_value()) << error;
    *out = *r;
  };

  HttpResult first, second, third;
  std::thread a([&] { post(&first); });
  // The worker has claimed the first request (the queue is empty again)
  // before the next two go out concurrently: one of them takes the
  // queue's single slot, the other must be 503'd — whichever order the
  // loop thread sees them in.
  while (entered.load() < 1) std::this_thread::yield();
  std::thread b([&] { post(&second); });
  std::thread c([&] { post(&third); });

  // The rejection happens without waiting on the worker: observable
  // while the first request is still blocked inside the handler.
  for (int i = 0; i < 2000 && loopback.server.stats().overloaded == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(loopback.server.stats().overloaded, 1u);
  EXPECT_EQ(entered.load(), 1);

  release.set_value();
  a.join();
  b.join();
  c.join();
  EXPECT_EQ(first.status, 200);
  // Exactly one of the two contenders was queued and served; the other
  // was turned away with the overload document.
  const HttpResult& ok = second.status == 200 ? second : third;
  const HttpResult& rejected = second.status == 200 ? third : second;
  EXPECT_EQ(ok.status, 200);
  EXPECT_EQ(rejected.status, 503);
  EXPECT_NE(rejected.body.find("overloaded"), std::string::npos);
  EXPECT_EQ(loopback.server.stats().overloaded, 1u);
}

TEST(ServeServer, ConnectionLimitAnswers503AtAccept) {
  Dispatcher dispatcher;
  ServerConfig config;
  config.workers = 0;
  config.max_connections = 1;
  LoopbackServer loopback(config, [&](const Request& request) {
    return dispatcher.handle(request);
  });
  ASSERT_TRUE(loopback.started);
  const std::uint16_t port = loopback.server.port();

  // The first connection is admitted and stays open (keep-alive).
  HttpClient occupant("127.0.0.1", port);
  HttpResult result;
  std::string error;
  ASSERT_TRUE(occupant.request("GET", "/v1/health", "", &result, &error))
      << error;
  EXPECT_EQ(result.status, 200);

  // The second is 503'd at accept time.
  HttpResult rejected;
  const std::optional<HttpResult> r =
      http_get("127.0.0.1", port, "/v1/health", &error);
  ASSERT_TRUE(r.has_value()) << error;
  rejected = *r;
  EXPECT_EQ(rejected.status, 503);
  EXPECT_FALSE(rejected.keep_alive);

  // Once the occupant leaves, the next connection is admitted again.
  occupant.close();
  for (int i = 0; i < 200; ++i) {
    const std::optional<HttpResult> retry =
        http_get("127.0.0.1", port, "/v1/health", &error);
    ASSERT_TRUE(retry.has_value()) << error;
    if (retry->status == 200) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_LT(i, 199) << "connection slot never freed";
  }

  const ServerStats stats = loopback.server.stats();
  EXPECT_GE(stats.conn_rejected, 1u);
}

// ---------------------------------------------------------- observability

/// LoopbackServer's trace-aware twin: wires Dispatcher::handle through
/// the TracedHandler shape the daemon uses.
struct TracedLoopback {
  explicit TracedLoopback(ServerConfig config, Dispatcher& dispatcher)
      : server(std::move(config),
               [&dispatcher](const Request& request,
                             const obs::TraceContext& trace,
                             RequestOutcome* outcome) {
                 return dispatcher.handle(request, trace, outcome);
               }) {
    std::string error;
    started = server.start(&error);
    EXPECT_TRUE(started) << error;
  }
  Server server;
  bool started = false;
};

/// GETs `target` and parses the response body; nullopt (with a failed
/// expectation) on transport or parse trouble.
std::optional<obs::JsonValue> get_parsed(std::uint16_t port,
                                         const std::string& target,
                                         int expect_status = 200) {
  std::string error;
  const std::optional<HttpResult> r =
      http_get("127.0.0.1", port, target, &error);
  EXPECT_TRUE(r.has_value()) << error;
  if (!r.has_value()) return std::nullopt;
  EXPECT_EQ(r->status, expect_status) << target << ": " << r->body;
  std::optional<obs::JsonValue> doc = obs::json_parse(r->body);
  EXPECT_TRUE(doc.has_value()) << r->body;
  return doc;
}

/// The value of the named Chrome counter event ("ph":"C") in a trace
/// document, or -1 when absent.
double chrome_counter(const obs::JsonValue& trace, const std::string& name) {
  const obs::JsonValue* events = trace.find("traceEvents");
  EXPECT_NE(events, nullptr);
  if (events == nullptr || !events->is_array()) return -1.0;
  for (const obs::JsonValue& event : events->as_array()) {
    const obs::JsonValue* n = event.find("name");
    const obs::JsonValue* ph = event.find("ph");
    if (n == nullptr || ph == nullptr) continue;
    if (ph->string_or("") != "C" || n->string_or("") != name) continue;
    const obs::JsonValue* args = event.find("args");
    if (args == nullptr) continue;
    const obs::JsonValue* value = args->find("value");
    if (value != nullptr && value->is_number()) return value->as_number();
  }
  return -1.0;
}

/// How many span events ("ph":"X") in `trace` carry category `cat`.
std::size_t chrome_span_count(const obs::JsonValue& trace,
                              const std::string& cat) {
  const obs::JsonValue* events = trace.find("traceEvents");
  if (events == nullptr || !events->is_array()) return 0;
  std::size_t n = 0;
  for (const obs::JsonValue& event : events->as_array()) {
    const obs::JsonValue* ph = event.find("ph");
    const obs::JsonValue* c = event.find("cat");
    if (ph != nullptr && c != nullptr && ph->string_or("") == "X" &&
        c->string_or("") == cat) {
      ++n;
    }
  }
  return n;
}

TEST(ServeObservability, ConcurrentCosimTracesAreDisjoint) {
  Dispatcher dispatcher;
  ServerConfig config;
  config.workers = 2;  // both requests genuinely evaluate concurrently
  TracedLoopback loopback(config, dispatcher);
  ASSERT_TRUE(loopback.started);
  const std::uint16_t port = loopback.server.port();

  // Different sample counts -> different request keys, so the two
  // requests cannot coalesce; each gets its own evaluation and trace.
  auto post_cosim = [port](std::uint64_t samples, HttpResult* out) {
    Request request;
    request.endpoint = Endpoint::kCosim;
    request.cosim.kernel = "fir8";
    request.cosim.samples = samples;
    std::string error;
    const std::optional<HttpResult> r =
        http_post("127.0.0.1", port, "/v1/cosim", request.json(), &error);
    EXPECT_TRUE(r.has_value()) << error;
    if (r.has_value()) *out = *r;
  };
  HttpResult a;
  HttpResult b;
  std::thread ta([&] { post_cosim(3, &a); });
  std::thread tb([&] { post_cosim(5, &b); });
  ta.join();
  tb.join();
  ASSERT_EQ(a.status, 200) << a.body;
  ASSERT_EQ(b.status, 200) << b.body;

  const std::string* id_a = a.header("x-mhs-trace");
  const std::string* id_b = b.header("x-mhs-trace");
  ASSERT_NE(id_a, nullptr);
  ASSERT_NE(id_b, nullptr);
  EXPECT_NE(*id_a, *id_b);

  // Per-request profile buckets sum exactly to the simulated cycles.
  const char* buckets[] = {"sw_execute",      "bus",
                           "dma",             "peripheral_wait",
                           "fault_recovery",  "idle"};
  std::uint64_t cycles_a = 0;
  std::uint64_t cycles_b = 0;
  for (const HttpResult* r : {&a, &b}) {
    std::string error;
    const std::optional<Response> resp = Response::from_json(r->body, &error);
    ASSERT_TRUE(resp.has_value()) << error;
    const double total = result_number(*resp, "total_cycles");
    double sum = 0.0;
    for (const char* bucket : buckets) {
      sum += result_number(*resp, std::string("profile.") + bucket);
    }
    EXPECT_EQ(sum, total) << r->body;
    (r == &a ? cycles_a : cycles_b) =
        static_cast<std::uint64_t>(total);
  }

  // Each Chrome trace carries exactly its own request's work: the svc
  // root span, and a cosim.samples counter equal to its own sample
  // count (not the other request's, not the sum).
  const std::optional<obs::JsonValue> trace_a =
      get_parsed(port, "/v1/trace/" + *id_a);
  const std::optional<obs::JsonValue> trace_b =
      get_parsed(port, "/v1/trace/" + *id_b);
  ASSERT_TRUE(trace_a.has_value());
  ASSERT_TRUE(trace_b.has_value());
  const obs::JsonValue* chrome_a = trace_a->find("result");
  const obs::JsonValue* chrome_b = trace_b->find("result");
  ASSERT_NE(chrome_a, nullptr);
  ASSERT_NE(chrome_b, nullptr);
  EXPECT_EQ(chrome_counter(*chrome_a, "cosim.samples"), 3.0);
  EXPECT_EQ(chrome_counter(*chrome_b, "cosim.samples"), 5.0);
  EXPECT_EQ(chrome_counter(*chrome_a, "cosim.runs"), 1.0);
  EXPECT_EQ(chrome_counter(*chrome_b, "cosim.runs"), 1.0);
  EXPECT_EQ(chrome_span_count(*chrome_a, "svc"), 1u);
  EXPECT_EQ(chrome_span_count(*chrome_b, "svc"), 1u);

  // The flight recorder saw both requests; each entry's latency buckets
  // sum exactly to its end-to-end latency, and the recorded cycle
  // totals match the responses.
  const std::optional<obs::JsonValue> requests =
      get_parsed(port, "/v1/requests");
  ASSERT_TRUE(requests.has_value());
  const obs::JsonValue* result = requests->find("result");
  ASSERT_NE(result, nullptr);
  const obs::JsonValue* entries = result->find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_TRUE(entries->is_array());
  bool saw_a = false;
  bool saw_b = false;
  for (const obs::JsonValue& entry : entries->as_array()) {
    const std::string id = entry.find("trace_id")->string_or("");
    const double total_us = entry.find("total_us")->number_or(-1.0);
    const double bucket_sum = entry.find("parse_us")->number_or(0.0) +
                              entry.find("queue_us")->number_or(0.0) +
                              entry.find("dispatch_us")->number_or(0.0) +
                              entry.find("respond_us")->number_or(0.0);
    EXPECT_EQ(bucket_sum, total_us) << id;
    if (id == *id_a) {
      saw_a = true;
      EXPECT_EQ(entry.find("endpoint")->string_or(""), "cosim");
      EXPECT_EQ(entry.find("total_cycles")->number_or(0.0),
                static_cast<double>(cycles_a));
    }
    if (id == *id_b) {
      saw_b = true;
      EXPECT_EQ(entry.find("total_cycles")->number_or(0.0),
                static_cast<double>(cycles_b));
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);

  // A repeat of request A is a cache hit — visible in its recorder
  // entry, with the same cycle accounting.
  HttpResult repeat;
  post_cosim(3, &repeat);
  ASSERT_EQ(repeat.status, 200);
  const std::string* id_repeat = repeat.header("x-mhs-trace");
  ASSERT_NE(id_repeat, nullptr);
  const std::optional<obs::JsonValue> again =
      get_parsed(port, "/v1/requests");
  ASSERT_TRUE(again.has_value());
  bool saw_repeat = false;
  for (const obs::JsonValue& entry :
       again->find("result")->find("entries")->as_array()) {
    if (entry.find("trace_id")->string_or("") != *id_repeat) continue;
    saw_repeat = true;
    EXPECT_EQ(entry.find("cache_hit")->kind(), obs::JsonValue::Kind::kBool);
    EXPECT_TRUE(entry.find("cache_hit")->as_bool());
    EXPECT_EQ(entry.find("total_cycles")->number_or(0.0),
              static_cast<double>(cycles_a));
  }
  EXPECT_TRUE(saw_repeat);
}

TEST(ServeObservability, TraceEndpointErrorsAndUnknownIds) {
  Dispatcher dispatcher;
  ServerConfig config;
  config.workers = 0;
  TracedLoopback loopback(config, dispatcher);
  ASSERT_TRUE(loopback.started);
  const std::uint16_t port = loopback.server.port();

  std::string error;
  const std::optional<HttpResult> missing =
      http_get("127.0.0.1", port, "/v1/trace/nope", &error);
  ASSERT_TRUE(missing.has_value()) << error;
  EXPECT_EQ(missing->status, 404);

  const std::optional<HttpResult> wrong_method =
      http_post("127.0.0.1", port, "/v1/requests", "{}", &error);
  ASSERT_TRUE(wrong_method.has_value()) << error;
  EXPECT_EQ(wrong_method->status, 405);
}

TEST(ServeObservability, MetricsServeJsonAndPrometheusForms) {
  obs::Registry registry;
  obs::ScopedRegistry scoped(registry);  // serve.* histograms land here
  Dispatcher dispatcher;
  ServerConfig config;
  config.workers = 0;
  config.metrics_text = [&dispatcher] {
    return dispatcher.metrics_prometheus();
  };
  TracedLoopback loopback(config, dispatcher);
  ASSERT_TRUE(loopback.started);
  const std::uint16_t port = loopback.server.port();

  // Drive one evaluation so the counters are non-trivial.
  Request request;
  request.endpoint = Endpoint::kCosim;
  request.cosim.kernel = "fir8";
  request.cosim.samples = 2;
  std::string error;
  const std::optional<HttpResult> posted =
      http_post("127.0.0.1", port, "/v1/cosim", request.json(), &error);
  ASSERT_TRUE(posted.has_value()) << error;
  ASSERT_EQ(posted->status, 200) << posted->body;

  // JSON form: {"svc": {...}, "obs": <summary>} under result.
  const std::optional<obs::JsonValue> metrics =
      get_parsed(port, "/v1/metrics");
  ASSERT_TRUE(metrics.has_value());
  const obs::JsonValue* result = metrics->find("result");
  ASSERT_NE(result, nullptr);
  const obs::JsonValue* svc = result->find("svc");
  ASSERT_NE(svc, nullptr);
  EXPECT_TRUE(svc->is_object());
  EXPECT_GE(svc->find("requests")->number_or(0.0), 1.0);
  const obs::JsonValue* obs_part = result->find("obs");
  ASSERT_NE(obs_part, nullptr);
  ASSERT_TRUE(obs_part->is_object());
  EXPECT_NE(obs_part->find("counters"), nullptr);
  EXPECT_NE(obs_part->find("histograms"), nullptr);

  // Prometheus form: text exposition, every line a comment or a
  // "name[{labels}] value" sample with a parseable value.
  const std::optional<HttpResult> prom = http_get(
      "127.0.0.1", port, "/v1/metrics?format=prometheus", &error);
  ASSERT_TRUE(prom.has_value()) << error;
  EXPECT_EQ(prom->status, 200);
  const std::string* content_type = prom->header("content-type");
  ASSERT_NE(content_type, nullptr);
  EXPECT_EQ(content_type->rfind("text/plain", 0), 0u) << *content_type;

  std::istringstream lines(prom->body);
  std::string line;
  std::size_t samples = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# TYPE ", 0) == 0 ||
                  line.rfind("# HELP ", 0) == 0)
          << line;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(name.empty()) << line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(name[0])) ||
                name[0] == '_')
        << line;
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << line;
    ++samples;
  }
  EXPECT_GE(samples, 1u);
  EXPECT_NE(prom->body.find("mhs_svc_requests"), std::string::npos)
      << prom->body;
}

}  // namespace
}  // namespace mhs::svc
