// Unit tests for mhs::analysis — the diagnostics engine, the CDFG /
// task-graph / process-network / HLS verifiers, the dataflow lint
// passes, and the flow-integrated gates.
#include <gtest/gtest.h>

#include <set>

#include "analysis/diag.h"
#include "analysis/lint.h"
#include "analysis/verify.h"
#include "apps/kernels.h"
#include "apps/workloads.h"
#include "core/flow.h"
#include "cosynth/run.h"
#include "hw/hls.h"
#include "ir/serialize.h"
#include "obs/json.h"

namespace mhs::analysis {
namespace {

// ---------------------------------------------------------------- Diag

TEST(Diag, RendersSeverityCodeLocationAndMessage) {
  Diag d;
  d.code = "CDFG001";
  d.severity = Severity::kError;
  d.location = {"op", 5, ""};
  d.message = "operand references missing value";
  EXPECT_EQ(d.str(), "error[CDFG001] op 5: operand references missing value");

  Diag named;
  named.code = "TG101";
  named.severity = Severity::kWarn;
  named.location = {"task", 2, "dct"};
  named.message = "duplicate name";
  EXPECT_EQ(named.str(), "warn[TG101] task 2 (dct): duplicate name");
}

TEST(Diag, CountsAndCleanliness) {
  Diagnostics diags;
  EXPECT_TRUE(diags.empty());
  EXPECT_TRUE(diags.clean());
  diags.add("CDFG100", Severity::kWarn, {"op", 1, ""}, "dead");
  EXPECT_FALSE(diags.clean());
  EXPECT_FALSE(diags.has_errors());
  diags.add("CDFG001", Severity::kError, {"op", 2, ""}, "dangling");
  diags.add("TG103", Severity::kNote, {"edge", 0, ""}, "zero bytes");
  EXPECT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.warn_count(), 1u);
  EXPECT_EQ(diags.note_count(), 1u);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_TRUE(diags.has_code("CDFG001"));
  EXPECT_FALSE(diags.has_code("CDFG002"));
}

TEST(Diag, MergePreservesOrder) {
  Diagnostics a;
  a.add("CDFG001", Severity::kError, {"op", 0, ""}, "first");
  Diagnostics b;
  b.add("CDFG003", Severity::kError, {"op", 1, ""}, "second");
  a.merge(b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.items()[0].code, "CDFG001");
  EXPECT_EQ(a.items()[1].code, "CDFG003");
}

TEST(Diag, JsonRendersAndParses) {
  Diagnostics diags;
  diags.add("CDFG001", Severity::kError, {"op", 5, "alpha \"q\""},
            "a \"quoted\" message");
  diags.add("TG100", Severity::kWarn, {"task", -1, ""}, "whole graph");
  const std::string json = diags.json();
  const auto parsed = obs::json_parse(json);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_array());
  ASSERT_EQ(parsed->as_array().size(), 2u);
  const obs::JsonValue& first = parsed->as_array()[0];
  EXPECT_EQ(first.find("code")->as_string(), "CDFG001");
  EXPECT_EQ(first.find("severity")->as_string(), "error");
  EXPECT_EQ(first.find("kind")->as_string(), "op");
  EXPECT_DOUBLE_EQ(first.find("id")->as_number(), 5.0);
  EXPECT_EQ(first.find("message")->as_string(), "a \"quoted\" message");
}

TEST(Diag, SeverityAndLintLevelNames) {
  EXPECT_STREQ(severity_name(Severity::kError), "error");
  EXPECT_STREQ(severity_name(Severity::kWarn), "warn");
  EXPECT_STREQ(severity_name(Severity::kNote), "note");
  EXPECT_STREQ(lint_level_name(LintLevel::kOff), "off");
  EXPECT_STREQ(lint_level_name(LintLevel::kWarn), "warn");
  EXPECT_STREQ(lint_level_name(LintLevel::kStrict), "strict");
}

// -------------------------------------------------------- CDFG verifier

/// A minimal well-formed kernel: y = (a + b) << 1.
ir::Cdfg good_kernel() {
  ir::Cdfg k("good");
  const ir::OpId a = k.input("a");
  const ir::OpId b = k.input("b");
  const ir::OpId one = k.constant(1);
  const ir::OpId sum = k.add(a, b);
  k.output("y", k.shl(sum, one));
  return k;
}

TEST(VerifyCdfg, CleanKernelHasNoFindings) {
  const Diagnostics diags = verify_cdfg(good_kernel());
  EXPECT_TRUE(diags.clean()) << diags.str();
}

TEST(VerifyCdfg, DanglingOperandIsCdfg001) {
  std::vector<ir::Op> ops;
  ops.push_back({ir::OpKind::kInput, {}, 0, "a", {}});
  ops.push_back(
      {ir::OpKind::kAdd, {ir::OpId(0), ir::OpId(17)}, 0, "", {}});
  ops.push_back({ir::OpKind::kOutput, {ir::OpId(1)}, 0, "y", {}});
  const ir::Cdfg bad = ir::Cdfg::from_ops("bad", std::move(ops));
  const Diagnostics diags = verify_cdfg(bad);
  EXPECT_TRUE(diags.has_code("CDFG001")) << diags.str();
  EXPECT_TRUE(diags.has_errors());
}

TEST(VerifyCdfg, ForwardReferenceIsCdfg002) {
  std::vector<ir::Op> ops;
  ops.push_back({ir::OpKind::kInput, {}, 0, "a", {}});
  // Op 1 consumes op 2's value, defined after it.
  ops.push_back({ir::OpKind::kAdd, {ir::OpId(0), ir::OpId(2)}, 0, "", {}});
  ops.push_back({ir::OpKind::kConst, {}, 3, "", {}});
  const ir::Cdfg bad = ir::Cdfg::from_ops("fwd", std::move(ops));
  EXPECT_TRUE(verify_cdfg(bad).has_code("CDFG002"));
}

TEST(VerifyCdfg, WrongArityIsCdfg003) {
  std::vector<ir::Op> ops;
  ops.push_back({ir::OpKind::kInput, {}, 0, "a", {}});
  ops.push_back({ir::OpKind::kAdd, {ir::OpId(0)}, 0, "", {}});  // add wants 2
  const ir::Cdfg bad = ir::Cdfg::from_ops("arity", std::move(ops));
  EXPECT_TRUE(verify_cdfg(bad).has_code("CDFG003"));
}

TEST(VerifyCdfg, MissingPortNameIsCdfg004) {
  std::vector<ir::Op> ops;
  ops.push_back({ir::OpKind::kInput, {}, 0, "", {}});  // unnamed input
  const ir::Cdfg bad = ir::Cdfg::from_ops("noname", std::move(ops));
  EXPECT_TRUE(verify_cdfg(bad).has_code("CDFG004"));
}

TEST(VerifyCdfg, DuplicatePortNameIsCdfg005) {
  std::vector<ir::Op> ops;
  ops.push_back({ir::OpKind::kInput, {}, 0, "a", {}});
  ops.push_back({ir::OpKind::kInput, {}, 0, "a", {}});
  const ir::Cdfg bad = ir::Cdfg::from_ops("dup", std::move(ops));
  EXPECT_TRUE(verify_cdfg(bad).has_code("CDFG005"));
}

TEST(VerifyCdfg, OperandReferencingOutputIsCdfg006) {
  std::vector<ir::Op> ops;
  ops.push_back({ir::OpKind::kInput, {}, 0, "a", {}});
  ops.push_back({ir::OpKind::kOutput, {ir::OpId(0)}, 0, "y", {}});
  // Op 2 consumes the *output* op's "value" — outputs produce none.
  ops.push_back({ir::OpKind::kNeg, {ir::OpId(1)}, 0, "", {}});
  ops.push_back({ir::OpKind::kOutput, {ir::OpId(2)}, 0, "z", {}});
  const ir::Cdfg bad = ir::Cdfg::from_ops("useout", std::move(ops));
  EXPECT_TRUE(verify_cdfg(bad).has_code("CDFG006"));
}

TEST(VerifyCdfg, ShiftAmountOutOfRangeIsCdfg008) {
  ir::Cdfg k("shift");
  const ir::OpId a = k.input("a");
  const ir::OpId big = k.constant(64);  // one past the 64-bit width
  k.output("y", k.shl(a, big));
  EXPECT_TRUE(verify_cdfg(k).has_code("CDFG008"));
}

TEST(VerifyCdfg, ConstantZeroDivisorIsCdfg009) {
  ir::Cdfg k("div0");
  const ir::OpId a = k.input("a");
  const ir::OpId zero = k.constant(0);
  k.output("y", k.binary(ir::OpKind::kDiv, a, zero));
  EXPECT_TRUE(verify_cdfg(k).has_code("CDFG009"));
}

TEST(VerifyCdfg, RoundTripHashIsStableForStockKernels) {
  // CDFG010 fires only when serialize→parse→hash changes the kernel;
  // stock kernels must round-trip losslessly.
  const Diagnostics diags = verify_cdfg(apps::dct8_kernel());
  EXPECT_FALSE(diags.has_code("CDFG010")) << diags.str();
}

TEST(VerifyCdfg, VerifierNeverThrowsOnCorruptIr) {
  // The whole point of the verifier: IR that would crash the consumers
  // must be diagnosable without crashing the diagnoser.
  std::vector<ir::Op> ops;
  ops.push_back({ir::OpKind::kSelect, {ir::OpId(9), ir::OpId(8)}, 0, "x", {}});
  ops.push_back({ir::OpKind::kOutput, {}, 0, "", {}});
  const ir::Cdfg bad = ir::Cdfg::from_ops("mess", std::move(ops));
  Diagnostics diags;
  EXPECT_NO_THROW(diags = verify_cdfg(bad));
  EXPECT_TRUE(diags.has_errors());
}

// -------------------------------------------------- task-graph verifier

TEST(VerifyTaskGraph, CleanGraphHasNoErrors) {
  const Diagnostics diags = verify_task_graph(apps::jpeg_pipeline_graph());
  EXPECT_FALSE(diags.has_errors()) << diags.str();
}

TEST(VerifyTaskGraph, CycleIsTg002) {
  ir::TaskGraph g("loop");
  const ir::TaskId a = g.add_task("a", {});
  const ir::TaskId b = g.add_task("b", {});
  g.add_edge(a, b, 16.0);
  g.add_edge(b, a, 16.0);
  EXPECT_TRUE(verify_task_graph(g).has_code("TG002"));
}

TEST(VerifyTaskGraph, NonFiniteAnnotationIsTg004) {
  ir::TaskGraph g("nan");
  ir::TaskCosts costs;
  costs.sw_cycles = -100.0;
  g.add_task("neg", costs);
  EXPECT_TRUE(verify_task_graph(g).has_code("TG004"));
}

// ----------------------------------------------------- network verifier

TEST(VerifyNetwork, CleanNetworksHaveNoErrors) {
  EXPECT_FALSE(verify_network(apps::ekg_monitor_network()).has_errors());
  EXPECT_FALSE(verify_network(apps::packet_pipeline_network()).has_errors());
}

TEST(VerifyNetwork, DanglingChannelOpIsPn001) {
  ir::ProcessNetwork net("bad");
  const ir::ProcessId p = net.add_process({"p", 100.0, 10.0, 50.0, {}});
  ir::ChannelOp op;
  op.kind = ir::ChannelOp::Kind::kSend;
  op.channel = ir::ChannelId(7);  // no such channel
  op.bytes = 8.0;
  net.process(p).ops.push_back(op);
  EXPECT_TRUE(verify_network(net).has_code("PN001"));
}

TEST(VerifyNetwork, WrongEndpointProcessIsPn002) {
  ir::ProcessNetwork net("bad");
  const ir::ProcessId a = net.add_process({"a", 100.0, 10.0, 50.0, {}});
  const ir::ProcessId b = net.add_process({"b", 100.0, 10.0, 50.0, {}});
  const ir::ChannelId ch = net.add_channel("ab", a, b, 4);
  // b (the consumer) performs a *send* on the channel.
  ir::ChannelOp op;
  op.kind = ir::ChannelOp::Kind::kSend;
  op.channel = ch;
  op.bytes = 8.0;
  net.process(b).ops.push_back(op);
  EXPECT_TRUE(verify_network(net).has_code("PN002"));
}

TEST(VerifyNetwork, ZeroCapacityChannelIsPn008) {
  // Builder and parser both reject capacity 0, so corrupt the channel
  // in place: the verifier must catch rot regardless of how it arose.
  ir::ProcessNetwork net("cap0");
  const ir::ProcessId a = net.add_process({"a", 100.0, 10.0, 50.0, {}});
  const ir::ProcessId b = net.add_process({"b", 100.0, 10.0, 50.0, {}});
  const ir::ChannelId ch = net.add_channel("ab", a, b, 1);
  const_cast<ir::Channel&>(net.channel(ch)).capacity = 0;
  EXPECT_TRUE(verify_network(net).has_code("PN008"));
}

// --------------------------------------------------------- HLS verifier

TEST(VerifyHls, SynthesizedImplementationIsClean) {
  // The schedule inside HlsResult points at the caller's Cdfg and library,
  // so both must outlive the implementation (same contract as
  // hw::simulate_datapath).
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  const hw::HlsResult impl = hw::synthesize(kernel, lib, constraints);
  const Diagnostics diags = verify_hls(impl);
  EXPECT_FALSE(diags.has_errors()) << diags.str();
}

TEST(VerifyHls, CorruptedBindingIsReported) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  hw::HlsResult impl = hw::synthesize(kernel, lib, constraints);
  // Point one compute op at an FU instance beyond the allocation.
  for (const ir::OpId id : impl.schedule.cdfg().op_ids()) {
    if (ir::op_is_compute(impl.schedule.cdfg().op(id).kind)) {
      impl.binding.fu_instance[id.index()] = 1000;
      break;
    }
  }
  EXPECT_TRUE(verify_hls(impl).has_code("HLS002"));
}

TEST(VerifyHls, OverlappingFuShareIsHls003) {
  // Force two ops of the same FU type onto the same instance; with the
  // min-latency (ASAP) schedule, independent adds overlap in time.
  ir::Cdfg k("share");
  const ir::OpId a = k.input("a");
  const ir::OpId b = k.input("b");
  const ir::OpId c = k.input("c");
  const ir::OpId d = k.input("d");
  const ir::OpId s1 = k.add(a, b);
  const ir::OpId s2 = k.add(c, d);
  k.output("y", k.add(s1, s2));
  const hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinLatency;
  hw::HlsResult impl = hw::synthesize(k, lib, constraints);
  impl.binding.fu_instance[s1.index()] = 0;
  impl.binding.fu_instance[s2.index()] = 0;
  EXPECT_TRUE(verify_hls(impl).has_code("HLS003"));
}

TEST(VerifyHls, RegisterOutOfRangeIsHls004) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  hw::HlsResult impl = hw::synthesize(kernel, lib, constraints);
  for (std::size_t i = 0; i < impl.binding.register_of.size(); ++i) {
    if (impl.binding.register_of[i] != SIZE_MAX) {
      impl.binding.register_of[i] = impl.binding.num_registers + 5;
      break;
    }
  }
  EXPECT_TRUE(verify_hls(impl).has_code("HLS004"));
}

// ------------------------------------------------------------ lint pass

TEST(LintCdfg, DeadOpIsCdfg100) {
  ir::Cdfg k("dead");
  const ir::OpId a = k.input("a");
  const ir::OpId b = k.input("b");
  k.add(a, b);  // result reaches no output
  k.output("y", k.sub(a, b));
  const Diagnostics diags = lint_cdfg(k);
  EXPECT_TRUE(diags.has_code("CDFG100")) << diags.str();
  EXPECT_FALSE(diags.has_code("CDFG101"));
}

TEST(LintCdfg, UnusedInputIsCdfg101) {
  ir::Cdfg k("unused");
  const ir::OpId a = k.input("a");
  k.input("b");  // never consumed
  k.output("y", k.unary(ir::OpKind::kNeg, a));
  EXPECT_TRUE(lint_cdfg(k).has_code("CDFG101"));
}

TEST(LintCdfg, OutputFreeKernelIsCdfg102) {
  ir::Cdfg k("silent");
  k.input("a");
  EXPECT_TRUE(lint_cdfg(k).has_code("CDFG102"));
}

TEST(LintTaskGraph, DisconnectedTaskIsTg100) {
  ir::TaskGraph g("islands");
  const ir::TaskId a = g.add_task("a", {});
  const ir::TaskId b = g.add_task("b", {});
  g.add_task("lonely", {});
  g.add_edge(a, b, 64.0);
  EXPECT_TRUE(lint_task_graph(g).has_code("TG100"));
}

TEST(LintTaskGraph, DuplicateTaskNameIsTg101) {
  ir::TaskGraph g("dups");
  g.add_task("stage", {});
  g.add_task("stage", {});
  EXPECT_TRUE(lint_task_graph(g).has_code("TG101"));
}

TEST(LintNetwork, UnreadChannelIsPn100) {
  ir::ProcessNetwork net("oneway");
  const ir::ProcessId a = net.add_process({"a", 100.0, 10.0, 50.0, {}});
  const ir::ProcessId b = net.add_process({"b", 100.0, 10.0, 50.0, {}});
  const ir::ChannelId ch = net.add_channel("ab", a, b, 4);
  ir::ChannelOp op;
  op.kind = ir::ChannelOp::Kind::kSend;
  op.channel = ch;
  op.bytes = 8.0;
  net.process(a).ops.push_back(op);  // send without matching receive
  EXPECT_TRUE(lint_network(net).has_code("PN100"));
}

TEST(LintNetwork, UnconnectedChannelIsPn102) {
  ir::ProcessNetwork net("unused");
  const ir::ProcessId a = net.add_process({"a", 100.0, 10.0, 50.0, {}});
  const ir::ProcessId b = net.add_process({"b", 100.0, 10.0, 50.0, {}});
  net.add_channel("ab", a, b, 4);
  EXPECT_TRUE(lint_network(net).has_code("PN102"));
}

// --------------------------------------- shipped artifacts are clean

TEST(LintClean, AllStockKernelsAreLintCleanAtStrict) {
  const std::vector<std::pair<const char*, ir::Cdfg>> kernels = {
      {"fir8", apps::fir_kernel(8)},
      {"iir_biquad", apps::iir_biquad_kernel()},
      {"dct8", apps::dct8_kernel()},
      {"xtea8", apps::xtea_kernel(8)},
      {"median5", apps::median5_kernel()},
      {"checksum16", apps::checksum_kernel(16)},
      {"sad8", apps::sad_kernel(8)},
      {"matmul3", apps::matmul_kernel(3)},
      {"sobel3", apps::sobel3_kernel()},
      {"quantize8", apps::quantize_kernel(8)},
  };
  for (const auto& [name, kernel] : kernels) {
    const Diagnostics diags = analyze_cdfg(kernel);
    EXPECT_TRUE(diags.clean()) << name << ":\n" << diags.str();
  }
}

TEST(LintClean, StockWorkloadsAreLintCleanAtStrict) {
  EXPECT_TRUE(analyze_task_graph(apps::jpeg_pipeline_graph()).clean());
  EXPECT_TRUE(analyze_network(apps::ekg_monitor_network()).clean());
  EXPECT_TRUE(analyze_network(apps::packet_pipeline_network()).clean());
}

// ------------------------------------------------------------ the gates

TEST(Gates, ApplyGateThrowsOnlyAtStrict) {
  Diagnostics errors;
  errors.add("CDFG001", Severity::kError, {"op", 0, ""}, "dangling");
  EXPECT_FALSE(apply_gate("stage", LintLevel::kWarn, Diagnostics{}));
  EXPECT_TRUE(apply_gate("stage", LintLevel::kWarn, errors));
  EXPECT_THROW(apply_gate("stage", LintLevel::kStrict, errors),
               VerifyFailure);
  try {
    apply_gate("hls", LintLevel::kStrict, errors);
    FAIL() << "expected VerifyFailure";
  } catch (const VerifyFailure& e) {
    EXPECT_EQ(e.stage(), "hls");
    EXPECT_TRUE(e.diagnostics().has_code("CDFG001"));
    EXPECT_NE(std::string(e.what()).find("CDFG001"), std::string::npos);
  }
}

/// The dsp-chain workload with one kernel slot replaced by a corrupt
/// kernel (dangling operand).
apps::KernelBackedWorkload corrupted_workload() {
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  std::vector<ir::Op> ops;
  ops.push_back({ir::OpKind::kInput, {}, 0, "a", {}});
  ops.push_back({ir::OpKind::kAdd, {ir::OpId(0), ir::OpId(42)}, 0, "", {}});
  ops.push_back({ir::OpKind::kOutput, {ir::OpId(1)}, 0, "y", {}});
  w.kernel_storage.push_back(
      ir::Cdfg::from_ops("corrupt", std::move(ops)));
  for (std::size_t i = 0; i < w.kernels.size(); ++i) {
    if (w.kernels[i] != nullptr) {
      w.kernels[i] = &w.kernel_storage.back();
      break;
    }
  }
  return w;
}

core::FlowConfig fast_flow_config() {
  core::FlowConfig config;
  config.validate_with_hls = false;
  config.cosimulate = false;
  return config;
}

TEST(Gates, FlowStrictFailsOnInjectedDanglingValue) {
  const apps::KernelBackedWorkload w = corrupted_workload();
  try {
    core::run_codesign_flow(
        w.graph, w.kernels,
        fast_flow_config().with_lint_level(LintLevel::kStrict));
    FAIL() << "expected VerifyFailure";
  } catch (const VerifyFailure& e) {
    EXPECT_EQ(e.stage(), "compile");
    EXPECT_TRUE(e.diagnostics().has_code("CDFG001"))
        << e.diagnostics().str();
  }
}

TEST(Gates, FlowWarnDropsCorruptKernelAndRecordsDiagnostics) {
  const apps::KernelBackedWorkload w = corrupted_workload();
  const core::FlowReport report = core::run_codesign_flow(
      w.graph, w.kernels,
      fast_flow_config().with_lint_level(LintLevel::kWarn));
  EXPECT_TRUE(report.report.diagnostics.has_code("CDFG001"));
  EXPECT_TRUE(report.report.diagnostics.has_errors());
}

TEST(Gates, FlowOffSkipsVerification) {
  // At kOff a *structurally sound* flow must carry zero diagnostics.
  const apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  const core::FlowReport report = core::run_codesign_flow(
      w.graph, w.kernels,
      fast_flow_config().with_lint_level(LintLevel::kOff));
  EXPECT_TRUE(report.report.diagnostics.empty());
}

TEST(Gates, FlowAlwaysRejectsCyclicGraphWhenGated) {
  ir::TaskGraph g("loop");
  const ir::TaskId a = g.add_task("a", {});
  const ir::TaskId b = g.add_task("b", {});
  g.add_edge(a, b, 8.0);
  g.add_edge(b, a, 8.0);
  const std::vector<const ir::Cdfg*> kernels(g.num_tasks(), nullptr);
  EXPECT_THROW(core::run_codesign_flow(
                   g, kernels,
                   fast_flow_config().with_lint_level(LintLevel::kWarn)),
               VerifyFailure);
}

TEST(Gates, CleanFlowIsLintCleanAtStrict) {
  const apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  const core::FlowReport report = core::run_codesign_flow(
      w.graph, w.kernels,
      fast_flow_config().with_lint_level(LintLevel::kStrict));
  EXPECT_FALSE(report.report.diagnostics.has_errors())
      << report.report.diagnostics.str();
}

TEST(Gates, CosynthRunThrowsOnCorruptKernelInput) {
  std::vector<ir::Op> ops;
  ops.push_back({ir::OpKind::kInput, {}, 0, "a", {}});
  ops.push_back({ir::OpKind::kAdd, {ir::OpId(0), ir::OpId(9)}, 0, "", {}});
  ops.push_back({ir::OpKind::kOutput, {ir::OpId(1)}, 0, "y", {}});
  const ir::Cdfg bad = ir::Cdfg::from_ops("bad", std::move(ops));
  cosynth::Request req;
  req.apps = {{&bad, 1.0, "bad"}};
  EXPECT_THROW(cosynth::run(cosynth::Target::kAsip, req), VerifyFailure);
  // At kOff the gate is skipped and synthesis crashes are the caller's
  // problem — but we must not throw VerifyFailure.
  req.lint_level = LintLevel::kOff;
  Diagnostics none;
  EXPECT_NO_THROW(none = verify_cdfg(good_kernel()));
}

TEST(Gates, CosynthRunRecordsDiagnosticsOnCleanInputs) {
  const ir::TaskGraph g = apps::jpeg_pipeline_graph();
  const partition::CostModel model(g, hw::default_library());
  cosynth::Request req;
  req.model = &model;
  req.lint_level = LintLevel::kStrict;
  const cosynth::Result r = cosynth::run(cosynth::Target::kCoprocessor, req);
  EXPECT_FALSE(r.diagnostics.has_errors()) << r.diagnostics.str();
}

}  // namespace
}  // namespace mhs::analysis
