// Focused tests for corners not exercised elsewhere: static program
// costing with branch fractions, controller register-load bits, annealing
// statistics, pin-level interrupt co-simulation, and flow edge cases.
#include <gtest/gtest.h>

#include "apps/kernels.h"
#include "apps/workloads.h"
#include "core/flow.h"
#include "hw/fsm.h"
#include "opt/anneal.h"
#include "sim/cosim.h"
#include "sim/run.h"
#include "sw/estimate.h"

namespace mhs {
namespace {

/// Drives the accelerator co-simulation through the sim::run seam.
sim::CosimReport accel_cosim(
    const hw::HlsResult& impl, const sim::CosimConfig& config,
    const std::vector<std::vector<std::int64_t>>& samples) {
  sim::SimRequest sreq;
  sreq.impl = &impl;
  sreq.samples = &samples;
  sreq.cosim = config;
  return sim::run(sreq).cosim.value();
}


TEST(SwEstimateExtras, TakenFractionInterpolatesBranchCost) {
  const std::vector<sw::Instr> code = {
      sw::Instr{sw::Opcode::kBne, 0, 1, 0, 0},
  };
  const sw::CpuModel cpu = sw::reference_cpu();  // taken 2, not-taken 1
  EXPECT_DOUBLE_EQ(sw::static_program_cycles(code, cpu, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(sw::static_program_cycles(code, cpu, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(sw::static_program_cycles(code, cpu, 0.5), 1.5);
  EXPECT_THROW(sw::static_program_cycles(code, cpu, 1.5),
               PreconditionError);
}

TEST(ControllerExtras, RegisterLoadBitsAssertAtValueCompletion) {
  // a+b completes at step 1 but its consumer (the final add) cannot
  // start before the multiply finishes at step 2 — the sum must be held
  // in a register across that gap, and the controller must assert the
  // register's load bit somewhere.
  ir::Cdfg c("regs");
  const ir::OpId a = c.input("a");
  const ir::OpId b = c.input("b");
  const ir::OpId sum = c.add(a, b);
  const ir::OpId prod = c.mul(a, b);
  c.output("y", c.add(sum, prod));
  const hw::ComponentLibrary lib = hw::default_library();
  const hw::Schedule s = hw::asap_schedule(c, lib);
  const hw::Binding bind = hw::bind(s);
  ASSERT_NE(bind.register_of[sum.index()],
            std::numeric_limits<std::size_t>::max());
  const hw::Controller ctrl(s, bind);
  const std::size_t load_bit =
      ctrl.register_load_bit(bind.register_of[sum.index()]);
  bool asserted_somewhere = false;
  for (std::size_t state = 0; state < ctrl.num_states(); ++state) {
    asserted_somewhere =
        asserted_somewhere || ctrl.asserted(state, load_bit);
  }
  EXPECT_TRUE(asserted_somewhere);
  EXPECT_THROW(ctrl.word(ctrl.num_states()), PreconditionError);
  EXPECT_THROW(ctrl.asserted(0, ctrl.num_control_bits()),
               PreconditionError);
}

TEST(AnnealExtras, StatsCountProposalsAndAcceptances) {
  int x = 0;
  int last = 0;
  opt::AnnealConfig cfg;
  cfg.rounds = 10;
  cfg.moves_per_round = 20;
  const opt::AnnealStats stats = opt::anneal(
      cfg, 0.0,
      [&](Rng& rng) {
        last = rng.bernoulli(0.5) ? 1 : -1;
        x += last;
        return static_cast<double>(x * x - (x - last) * (x - last));
      },
      [&] { x -= last; }, [] {});
  EXPECT_EQ(stats.proposed, 200u);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_LE(stats.accepted, stats.proposed);
}

TEST(CosimExtras, IrqDriverWorksAtPinLevel) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  const hw::HlsResult impl = hw::synthesize(kernel, lib, constraints);

  std::vector<std::vector<std::int64_t>> samples;
  for (int s = 0; s < 4; ++s) {
    samples.push_back({s << 16, (s + 1) << 16, 0, 0});
  }
  sim::CosimConfig polling;
  polling.level = sim::InterfaceLevel::kPin;
  polling.use_irq = false;
  sim::CosimConfig irq = polling;
  irq.use_irq = true;
  irq.background_unroll = 2;
  const sim::CosimReport a = accel_cosim(impl, polling, samples);
  const sim::CosimReport b = accel_cosim(impl, irq, samples);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_GT(b.background_units, 0);
  EXPECT_GT(a.signal_transitions, 0u);
  EXPECT_GT(b.signal_transitions, 0u);
}

TEST(FlowExtras, AllSoftwarePartitionSkipsCosim) {
  // With a huge area weight nothing goes to hardware; the flow must not
  // attempt HLS validation or co-simulation.
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  core::FlowConfig cfg;
  cfg.objective.area_weight = 1e9;
  const core::FlowReport report =
      core::run_codesign_flow(w.graph, w.kernels, cfg);
  EXPECT_EQ(report.design.partition.metrics.tasks_in_hw, 0u);
  EXPECT_FALSE(report.cosim.has_value());
  EXPECT_DOUBLE_EQ(report.validated_hw_area, 0.0);
}

TEST(FlowExtras, CosimLevelIsConfigurable) {
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  core::FlowConfig cfg;
  cfg.objective.area_weight = 0.001;  // plenty of hardware
  cfg.cosim_level = sim::InterfaceLevel::kMessage;
  const core::FlowReport report =
      core::run_codesign_flow(w.graph, w.kernels, cfg);
  if (report.cosim) {
    EXPECT_EQ(report.cosim->level, sim::InterfaceLevel::kMessage);
  }
}

}  // namespace
}  // namespace mhs
