// Unit tests for mhs::apps — kernel semantics and workload structure.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/kernels.h"
#include "apps/workloads.h"
#include "base/fixed_point.h"
#include "ir/task_graph_algos.h"

namespace mhs::apps {
namespace {

TEST(Kernels, FirIsLowPassUnityDc) {
  // Constant input must pass through with gain ~1 (coefficients sum to 1).
  const ir::Cdfg c = fir_kernel(9);
  std::map<std::string, std::int64_t> in;
  const std::int64_t dc = Q16::from_double(3.0).raw();
  for (const ir::OpId id : c.inputs()) in[c.op(id).name] = dc;
  const auto out = c.evaluate(in);
  const double y = Q16::from_raw(out.at("y")).to_double();
  EXPECT_NEAR(y, 3.0, 0.01);
}

TEST(Kernels, FirRejectsBadTapCount) {
  EXPECT_THROW(fir_kernel(0), PreconditionError);
  EXPECT_THROW(fir_kernel(65), PreconditionError);
}

TEST(Kernels, BiquadDcGainRoughlyUnity) {
  // With x = x1 = x2 = y1 = y2 = k (steady state), y ~ k for this section:
  // (b0+b1+b2) / (1+a1+a2) = 1.1716/1.1716 = 1.
  const ir::Cdfg c = iir_biquad_kernel();
  const std::int64_t k = Q16::from_double(2.0).raw();
  const auto out = c.evaluate(
      {{"x", k}, {"x1", k}, {"x2", k}, {"y1", k}, {"y2", k}});
  EXPECT_NEAR(Q16::from_raw(out.at("y")).to_double(), 2.0, 0.05);
}

TEST(Kernels, Dct8MatchesDirectComputation) {
  const ir::Cdfg c = dct8_kernel();
  double x[8] = {1.0, 2.0, 3.0, 4.0, 4.0, 3.0, 2.0, 1.0};
  std::map<std::string, std::int64_t> in;
  for (int i = 0; i < 8; ++i) {
    in["x" + std::to_string(i)] = Q16::from_double(x[i]).raw();
  }
  const auto out = c.evaluate(in);
  for (int k = 0; k < 8; ++k) {
    const double scale =
        k == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
    double expected = 0.0;
    for (int n = 0; n < 8; ++n) {
      expected += x[n] * scale * std::cos((2 * n + 1) * k * M_PI / 16.0);
    }
    const double got =
        Q16::from_raw(out.at("X" + std::to_string(k))).to_double();
    EXPECT_NEAR(got, expected, 0.02) << "coefficient " << k;
  }
}

TEST(Kernels, XteaMatchesReferenceImplementation) {
  // Reference XTEA (32-bit arithmetic), same round count.
  auto reference = [](std::uint32_t v0, std::uint32_t v1,
                      const std::uint32_t key[4], int rounds) {
    std::uint32_t sum = 0;
    constexpr std::uint32_t delta = 0x9E3779B9;
    for (int r = 0; r < rounds; ++r) {
      v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key[sum & 3]);
      sum += delta;
      v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key[(sum >> 11) & 3]);
    }
    return std::pair<std::uint32_t, std::uint32_t>{v0, v1};
  };

  for (const std::size_t rounds : {1u, 4u, 16u, 32u}) {
    const ir::Cdfg c = xtea_kernel(rounds);
    const std::uint32_t key[4] = {0x01234567, 0x89ABCDEF, 0xFEDCBA98,
                                  0x76543210};
    const std::uint32_t v0 = 0xDEADBEEF, v1 = 0xCAFEBABE;
    const auto [r0, r1] =
        reference(v0, v1, key, static_cast<int>(rounds));
    const auto out = c.evaluate({{"v0", v0},
                                 {"v1", v1},
                                 {"k0", key[0]},
                                 {"k1", key[1]},
                                 {"k2", key[2]},
                                 {"k3", key[3]}});
    EXPECT_EQ(static_cast<std::uint32_t>(out.at("v0_out")), r0)
        << rounds << " rounds";
    EXPECT_EQ(static_cast<std::uint32_t>(out.at("v1_out")), r1)
        << rounds << " rounds";
  }
}

TEST(Kernels, Median5IsOrderStatistic) {
  const ir::Cdfg c = median5_kernel();
  const std::int64_t perms[][5] = {
      {1, 2, 3, 4, 5}, {5, 4, 3, 2, 1}, {2, 5, 1, 4, 3},
      {7, 7, 7, 7, 7}, {-5, 10, 0, -3, 2},
  };
  for (const auto& p : perms) {
    const auto out = c.evaluate({{"a", p[0]},
                                 {"b", p[1]},
                                 {"c", p[2]},
                                 {"d", p[3]},
                                 {"e", p[4]}});
    std::vector<std::int64_t> sorted(p, p + 5);
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(out.at("median"), sorted[2]);
  }
}

TEST(Kernels, ChecksumMatchesFletcherStyleReference) {
  const std::size_t n = 6;
  const ir::Cdfg c = checksum_kernel(n);
  std::map<std::string, std::int64_t> in;
  std::int64_t a = 1, b = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t w = static_cast<std::int64_t>(i * 37 + 11);
    in["w" + std::to_string(i)] = w;
    a = (a + w) & 65535;
    b = (b + a) & 65535;
  }
  const auto out = c.evaluate(in);
  EXPECT_EQ(out.at("ck_a"), a);
  EXPECT_EQ(out.at("ck_b"), b);
}

TEST(Kernels, SadSumsAbsoluteDifferences) {
  const ir::Cdfg c = sad_kernel(3);
  const auto out = c.evaluate({{"a0", 5},
                               {"b0", 9},
                               {"a1", -2},
                               {"b1", 3},
                               {"a2", 7},
                               {"b2", 7}});
  EXPECT_EQ(out.at("sad"), 4 + 5 + 0);
}

TEST(Kernels, NatureOfComputationSpansTheAxis) {
  // §3.3 "nature of computation": DCT is wide, XTEA is a chain. The
  // width/depth ratio must reflect that.
  const ir::Cdfg dct = dct8_kernel();
  const ir::Cdfg xtea = xtea_kernel(16);
  std::size_t dct_ops = 0, xtea_ops = 0;
  for (const ir::OpId id : dct.op_ids()) {
    if (ir::op_is_compute(dct.op(id).kind)) ++dct_ops;
  }
  for (const ir::OpId id : xtea.op_ids()) {
    if (ir::op_is_compute(xtea.op(id).kind)) ++xtea_ops;
  }
  const double dct_ratio =
      static_cast<double>(dct_ops) / static_cast<double>(dct.depth());
  const double xtea_ratio =
      static_cast<double>(xtea_ops) / static_cast<double>(xtea.depth());
  EXPECT_GT(dct_ratio, 4.0 * xtea_ratio);
}

TEST(Workloads, JpegPipelineStructure) {
  const ir::TaskGraph g = jpeg_pipeline_graph();
  EXPECT_EQ(g.num_tasks(), 7u);
  EXPECT_TRUE(g.is_dag());
  EXPECT_EQ(ir::sources(g).size(), 1u);
  EXPECT_EQ(ir::sinks(g).size(), 1u);
  EXPECT_EQ(ir::width_estimate(g), 2u);  // the two DCTs
}

TEST(Workloads, DspChainKernelsAligned) {
  const KernelBackedWorkload w = dsp_chain_workload();
  EXPECT_EQ(w.kernels.size(), w.graph.num_tasks());
  std::size_t with_kernels = 0;
  for (const ir::Cdfg* k : w.kernels) {
    if (k != nullptr) ++with_kernels;
  }
  EXPECT_EQ(with_kernels, 4u);
  EXPECT_TRUE(w.graph.is_dag());
}

TEST(Workloads, ProcessNetworksValidate) {
  ekg_monitor_network().validate();
  packet_pipeline_network().validate();
  worker_farm_network(3, 1000, 64).validate();
  const ir::ProcessNetwork farm = worker_farm_network(5, 1000, 64);
  EXPECT_EQ(farm.num_processes(), 7u);
  EXPECT_EQ(farm.num_channels(), 10u);
}

}  // namespace
}  // namespace mhs::apps
