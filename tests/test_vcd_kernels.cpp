// Tests for the VCD tracer and the extended kernel library (matmul,
// Sobel, quantizer) including their SW/HW implementation equivalence.
#include <gtest/gtest.h>

#include "apps/kernels.h"
#include "base/rng.h"
#include "hw/hls.h"
#include "sim/bus.h"
#include "sim/vcd.h"
#include "sw/iss.h"

namespace mhs {
namespace {

// ------------------------------------------------------------------- VCD

TEST(Vcd, HeaderAndVarsWellFormed) {
  sim::Simulator sim;
  sim::Wire w(sim, "cpu.irq");
  sim::Bus64 addr(sim, "bus.addr");
  sim::VcdTracer vcd(sim);
  vcd.trace(w);
  vcd.trace(addr);
  const std::string doc = vcd.str();
  EXPECT_NE(doc.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(doc.find("$var wire 1 ! cpu_irq $end"), std::string::npos);
  EXPECT_NE(doc.find("$var wire 64 \" bus_addr $end"), std::string::npos);
  EXPECT_NE(doc.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(doc.find("$dumpvars"), std::string::npos);
}

TEST(Vcd, RecordsTimedTransitions) {
  sim::Simulator sim;
  sim::Wire w(sim, "strobe");
  sim::VcdTracer vcd(sim);
  vcd.trace(w);
  w.write_after(5, true);
  w.write_after(9, false);
  sim.run();
  EXPECT_EQ(vcd.changes_recorded(), 2u);
  const std::string doc = vcd.str();
  // Change at t=5 to 1, at t=9 to 0.
  const auto t5 = doc.find("#5\n1!");
  const auto t9 = doc.find("#9\n0!");
  EXPECT_NE(t5, std::string::npos);
  EXPECT_NE(t9, std::string::npos);
  EXPECT_LT(t5, t9);
}

TEST(Vcd, CapturesBusHandshakes) {
  sim::Simulator sim;
  sim::BusModel bus(sim, sim::BusConfig{}, sim::InterfaceLevel::kPin);
  sim::VcdTracer vcd(sim);
  vcd.trace(bus.strobe_pin());
  vcd.trace(bus.ack_pin());
  vcd.trace(bus.addr_pins());
  bus.access(0x1000, true);
  bus.access(0x2000, false);
  sim.run();
  // Two handshakes: strobe up/down twice, ack up/down twice, addr twice.
  EXPECT_GE(vcd.changes_recorded(), 8u);
  const std::string doc = vcd.str();
  EXPECT_NE(doc.find("b0000000000000000000000000000000000000000000000000001"
                     "000000000000 #"),
            std::string::npos);  // addr 0x1000
}

TEST(Vcd, MultiCharIdentifiersStayUnique) {
  sim::Simulator sim;
  sim::VcdTracer vcd(sim);
  std::vector<std::unique_ptr<sim::Wire>> wires;
  for (int i = 0; i < 100; ++i) {
    wires.push_back(std::make_unique<sim::Wire>(
        sim, "w" + std::to_string(i)));
    vcd.trace(*wires.back());
  }
  EXPECT_EQ(vcd.num_signals(), 100u);
  const std::string doc = vcd.str();
  // 100 $var lines.
  std::size_t vars = 0, pos = 0;
  while ((pos = doc.find("$var", pos)) != std::string::npos) {
    ++vars;
    pos += 4;
  }
  EXPECT_EQ(vars, 100u);
}

// --------------------------------------------------------------- kernels

TEST(NewKernels, MatmulMatchesReference) {
  const std::size_t n = 3;
  const ir::Cdfg c = apps::matmul_kernel(n);
  Rng rng(4);
  std::int64_t a[3][3], b[3][3];
  std::map<std::string, std::int64_t> in;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = 0; k < n; ++k) {
      a[r][k] = rng.uniform_int(-50, 50);
      b[r][k] = rng.uniform_int(-50, 50);
      in["a" + std::to_string(r) + std::to_string(k)] = a[r][k];
      in["b" + std::to_string(r) + std::to_string(k)] = b[r][k];
    }
  }
  const auto out = c.evaluate(in);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = 0; k < n; ++k) {
      std::int64_t expected = 0;
      for (std::size_t j = 0; j < n; ++j) expected += a[r][j] * b[j][k];
      EXPECT_EQ(out.at("c" + std::to_string(r) + std::to_string(k)),
                expected);
    }
  }
}

TEST(NewKernels, SobelDetectsEdges) {
  const ir::Cdfg c = apps::sobel3_kernel();
  // Flat patch: zero gradient.
  std::map<std::string, std::int64_t> flat;
  for (int r = 0; r < 3; ++r) {
    for (int k = 0; k < 3; ++k) {
      flat["p" + std::to_string(r) + std::to_string(k)] = 7;
    }
  }
  EXPECT_EQ(c.evaluate(flat).at("mag"), 0);

  // Vertical step edge: |gx| = 4*step.
  std::map<std::string, std::int64_t> edge;
  for (int r = 0; r < 3; ++r) {
    for (int k = 0; k < 3; ++k) {
      edge["p" + std::to_string(r) + std::to_string(k)] = k == 2 ? 10 : 0;
    }
  }
  EXPECT_EQ(c.evaluate(edge).at("mag"), 40);
}

TEST(NewKernels, QuantizerScalesAndClamps) {
  const ir::Cdfg c = apps::quantize_kernel(2);
  // Coefficient 0: step 8 -> 800/8 = 100. Coefficient 1: step 11.
  const auto out = c.evaluate({{"x0", 800}, {"x1", 1'000'000}});
  EXPECT_NEAR(static_cast<double>(out.at("q0")), 100.0, 1.0);
  EXPECT_EQ(out.at("q1"), 1023);  // clamped at the positive bound
  const auto neg = c.evaluate({{"x0", -800}, {"x1", -1'000'000}});
  EXPECT_NEAR(static_cast<double>(neg.at("q0")), -100.0, 1.0);
  EXPECT_EQ(neg.at("q1"), -1024);  // clamped at the negative bound
}

TEST(NewKernels, AllThreeImplementationsAgree) {
  const ir::Cdfg kernels[] = {apps::matmul_kernel(2), apps::sobel3_kernel(),
                              apps::quantize_kernel(4)};
  Rng rng(77);
  const hw::ComponentLibrary lib = hw::default_library();
  for (const ir::Cdfg& kernel : kernels) {
    std::map<std::string, std::int64_t> in;
    for (const ir::OpId id : kernel.inputs()) {
      in[kernel.op(id).name] = rng.uniform_int(-100, 100);
    }
    const auto reference = kernel.evaluate(in);
    sw::Iss iss;
    EXPECT_EQ(sw::run_program(iss, sw::compile(kernel), in), reference)
        << kernel.name() << " (sw)";
    hw::HlsConstraints constraints;
    constraints.goal = hw::HlsGoal::kMinArea;
    const hw::HlsResult impl = hw::synthesize(kernel, lib, constraints);
    EXPECT_EQ(hw::simulate_datapath(impl, in), reference)
        << kernel.name() << " (hw)";
  }
}

}  // namespace
}  // namespace mhs
