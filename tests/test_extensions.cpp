// Tests for the extension features: mixed Type I/II co-design (the
// paper's §2 open problem) and the §5 approach advisor.
#include <gtest/gtest.h>

#include "apps/workloads.h"
#include "core/advisor.h"
#include "core/flow.h"
#include "cosynth/run.h"

namespace mhs {
namespace {

struct MixedFixture : public ::testing::Test {
  void SetUp() override {
    workload = apps::dsp_chain_workload();
    core::FlowConfig cfg;
    cfg.optimize_kernels = false;
    annotated = core::annotate_costs(workload.graph, workload.kernels, cfg);
  }
  apps::KernelBackedWorkload workload;
  ir::TaskGraph annotated;
  sw::CpuModel base = sw::reference_cpu();
  hw::ComponentLibrary lib = hw::default_library();

  /// Joint synthesis through the one sanctioned entry point.
  cosynth::MixedDesign mixed_at(double budget) const {
    cosynth::Request request;
    request.graph = &annotated;
    request.kernels = &workload.kernels;
    request.cpu = base;
    request.library = lib;
    request.area_budget = budget;
    return *cosynth::run(cosynth::Target::kMixed, request).mixed;
  }
};

TEST_F(MixedFixture, ZeroBudgetIsAllSoftwareBaseCpu) {
  const cosynth::MixedDesign d = mixed_at(0.0);
  EXPECT_TRUE(d.features.empty());
  for (const bool b : d.mapping) EXPECT_FALSE(b);
  EXPECT_DOUBLE_EQ(d.total_area(), 0.0);
  EXPECT_GT(d.latency(), 0.0);
}

TEST_F(MixedFixture, RespectsSiliconBudget) {
  for (const double budget : {500.0, 1500.0, 4000.0, 9000.0}) {
    const cosynth::MixedDesign d = mixed_at(budget);
    EXPECT_LE(d.total_area(), budget + 1e-6) << "budget " << budget;
  }
}

TEST_F(MixedFixture, LatencyMonotoneInBudget) {
  double prev = 1e18;
  for (const double budget : {0.0, 1000.0, 2500.0, 4000.0, 8000.0}) {
    const cosynth::MixedDesign d = mixed_at(budget);
    EXPECT_LE(d.latency(), prev + 1e-6) << "budget " << budget;
    prev = d.latency();
  }
}

TEST_F(MixedFixture, JointNeverWorseThanPureStrategies) {
  for (const double budget : {600.0, 2500.0, 4100.0, 8000.0}) {
    const cosynth::MixedDesign mixed = mixed_at(budget);
    const cosynth::MixedDesign p1 = cosynth::synthesize_pure_type1(
        annotated, workload.kernels, base, lib, budget);
    const cosynth::MixedDesign p2 = cosynth::synthesize_pure_type2(
        annotated, workload.kernels, base, lib, budget);
    EXPECT_LE(mixed.latency(), p1.latency() + 1e-6) << "budget " << budget;
    EXPECT_LE(mixed.latency(), p2.latency() + 1e-6) << "budget " << budget;
  }
}

TEST_F(MixedFixture, SynergyExistsAtIntermediateBudget) {
  // At ~4100 area units the joint design buys ISA features AND offloads,
  // beating both pure strategies strictly (the E13 crossover).
  const double budget = 4100.0;
  const cosynth::MixedDesign mixed = mixed_at(budget);
  const cosynth::MixedDesign p1 = cosynth::synthesize_pure_type1(
      annotated, workload.kernels, base, lib, budget);
  const cosynth::MixedDesign p2 = cosynth::synthesize_pure_type2(
      annotated, workload.kernels, base, lib, budget);
  EXPECT_LT(mixed.latency(), p1.latency());
  EXPECT_LT(mixed.latency(), p2.latency());
  EXPECT_FALSE(mixed.features.empty());
  std::size_t offloaded = 0;
  for (const bool b : mixed.mapping) offloaded += b ? 1 : 0;
  EXPECT_GT(offloaded, 0u);
}

TEST_F(MixedFixture, PureStrategiesAreWhatTheyClaim) {
  const double budget = 5000.0;
  const cosynth::MixedDesign p1 = cosynth::synthesize_pure_type1(
      annotated, workload.kernels, base, lib, budget);
  for (const bool b : p1.mapping) EXPECT_FALSE(b);
  const cosynth::MixedDesign p2 = cosynth::synthesize_pure_type2(
      annotated, workload.kernels, base, lib, budget);
  EXPECT_TRUE(p2.features.empty());
}

TEST(Advisor, RequiredTasksAreHardFilters) {
  core::DesignCharacteristics c;
  c.required_tasks = {core::DesignTask::kCoSimulation,
                      core::DesignTask::kCoSynthesis,
                      core::DesignTask::kPartitioning};
  const auto recs = core::recommend(c);
  ASSERT_FALSE(recs.empty());
  for (const core::Recommendation& rec : recs) {
    for (const core::DesignTask task : c.required_tasks) {
      EXPECT_TRUE(rec.approach->tasks.count(task)) << rec.approach->name;
    }
  }
  // Only Kalavade/Lee covers all three in the registry.
  EXPECT_EQ(recs.size(), 1u);
}

TEST(Advisor, SystemTypeMismatchCostsScore) {
  core::DesignCharacteristics c;
  c.required_tasks = {core::DesignTask::kCoSynthesis};
  c.system_type = core::SystemType::kTypeII;
  const auto recs = core::recommend(c);
  ASSERT_GE(recs.size(), 2u);
  // Best recommendations are Type II approaches with score 1.
  EXPECT_EQ(recs.front().approach->system_type, core::SystemType::kTypeII);
  EXPECT_DOUBLE_EQ(recs.front().score, 1.0);
  // Some Type I approach must appear later with a reduced score.
  bool saw_type1 = false;
  for (const auto& rec : recs) {
    if (rec.approach->system_type == core::SystemType::kTypeI) {
      saw_type1 = true;
      EXPECT_LT(rec.score, 1.0);
      EXPECT_FALSE(rec.gaps.empty());
    }
  }
  EXPECT_TRUE(saw_type1);
}

TEST(Advisor, CosimDetailRequirementPenalizesAbstractModels) {
  core::DesignCharacteristics c;
  c.required_tasks = {core::DesignTask::kCoSimulation};
  c.max_cosim_level = sim::InterfaceLevel::kRegister;
  const auto recs = core::recommend(c);
  ASSERT_FALSE(recs.empty());
  // Becker's pin-level co-simulation satisfies a register-level need.
  double becker_score = -1.0;
  double coumeri_score = -1.0;
  for (const auto& rec : recs) {
    if (rec.approach->citation == "[4]") becker_score = rec.score;
    if (rec.approach->citation == "[3]") coumeri_score = rec.score;
  }
  EXPECT_GT(becker_score, coumeri_score);
}

TEST(Advisor, FactorRequirementsFavorAdamsThomas) {
  // A design that needs concurrency and communication to drive the
  // partition should rank the multi-process synthesis work first —
  // exactly the paper's §4.5.1 positioning.
  core::DesignCharacteristics c;
  c.required_tasks = {core::DesignTask::kCoSynthesis,
                      core::DesignTask::kPartitioning};
  c.system_type = core::SystemType::kTypeII;
  c.required_factors = {core::PartitionFactor::kConcurrency,
                        core::PartitionFactor::kCommunication};
  const auto recs = core::recommend(c);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs.front().approach->citation, "[10]");
  EXPECT_DOUBLE_EQ(recs.front().score, 1.0);
}

TEST(Advisor, TableRenders) {
  core::DesignCharacteristics c;
  c.required_tasks = {core::DesignTask::kCoSynthesis};
  const auto recs = core::recommend(c);
  const std::string table = core::recommendation_table(recs, 3);
  EXPECT_NE(table.find("rank"), std::string::npos);
  EXPECT_NE(table.find("1"), std::string::npos);
}

}  // namespace
}  // namespace mhs
