// Tests of the mhs_lint CLI (via its library entry point run_lint) over
// the corrupted-IR fixtures in tests/fixtures/: every corruption class
// must exit non-zero with its stable diagnostic code, every valid
// artifact must exit 0, and --check-json must report line/column.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "apps/mhs_lint/lint_lib.h"
#include "obs/json.h"

namespace mhs::apps {
namespace {

std::string fixture(const std::string& name) {
  return std::string(MHS_FIXTURE_DIR) + "/" + name;
}

struct LintOutcome {
  int exit_code = 0;
  std::string out;
  std::string err;
};

LintOutcome lint(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  LintOutcome outcome;
  outcome.exit_code = run_lint(args, out, err);
  outcome.out = out.str();
  outcome.err = err.str();
  return outcome;
}

TEST(LintCli, SniffsArtifactKinds) {
  EXPECT_EQ(sniff_artifact("taskgraph g\nend\n"), ArtifactKind::kTaskGraph);
  EXPECT_EQ(sniff_artifact("# comment\nnetwork n\nend\n"),
            ArtifactKind::kNetwork);
  EXPECT_EQ(sniff_artifact("cdfg k\nend\n"), ArtifactKind::kCdfg);
  EXPECT_EQ(sniff_artifact("bogus\n"), ArtifactKind::kUnknown);
  EXPECT_EQ(sniff_artifact(""), ArtifactKind::kUnknown);
}

TEST(LintCli, EveryCorruptedFixtureFailsWithItsStableCode) {
  const std::vector<std::pair<const char*, const char*>> cases = {
      {"dangling_value.cdfg", "CDFG001"},
      {"forward_ref.cdfg", "CDFG002"},
      {"bad_arity.cdfg", "CDFG003"},
      {"dup_port.cdfg", "CDFG005"},
      {"shift_range.cdfg", "CDFG008"},
      {"cyclic.tg", "TG002"},
  };
  for (const auto& [file, code] : cases) {
    const LintOutcome r = lint({fixture(file)});
    EXPECT_EQ(r.exit_code, 1) << file << "\n" << r.out << r.err;
    EXPECT_NE(r.out.find(code), std::string::npos)
        << file << " should report " << code << ":\n"
        << r.out;
  }
}

TEST(LintCli, RangeLintFixturesFireOnlyUnderRanges) {
  // Each CDFG2xx fixture is structurally clean — without --ranges it
  // exits 0 and the code never appears. With --ranges the code fires
  // with the fixture's designed severity/exit code.
  struct Case {
    const char* file;
    const char* code;
    int ranges_exit;
  };
  const std::vector<Case> cases = {
      {"range_div_zero.cdfg", "CDFG200", 1},      // error
      {"range_shift_oob.cdfg", "CDFG201", 1},     // error
      {"range_overflow.cdfg", "CDFG202", 0},      // note
      {"range_const_output.cdfg", "CDFG203", 0},  // warn
      {"range_dead_select.cdfg", "CDFG204", 0},   // warn
  };
  for (const Case& c : cases) {
    const LintOutcome off = lint({fixture(c.file)});
    EXPECT_EQ(off.exit_code, 0) << c.file << "\n" << off.out << off.err;
    EXPECT_EQ(off.out.find(c.code), std::string::npos) << c.file;

    const LintOutcome on = lint({"--ranges", fixture(c.file)});
    EXPECT_EQ(on.exit_code, c.ranges_exit) << c.file << "\n" << on.out;
    EXPECT_NE(on.out.find(c.code), std::string::npos)
        << c.file << " should report " << c.code << ":\n"
        << on.out;
  }
}

TEST(LintCli, RangeLintWarningsGateUnderStrict) {
  // CDFG203/204 are warnings: strict turns them into failures.
  for (const char* file : {"range_const_output.cdfg",
                           "range_dead_select.cdfg"}) {
    const LintOutcome strict = lint({"--ranges", "--strict", fixture(file)});
    EXPECT_EQ(strict.exit_code, 1) << file << "\n" << strict.out;
  }
  // CDFG202 is a note: it never gates, even under strict.
  const LintOutcome note =
      lint({"--ranges", "--strict", fixture("range_overflow.cdfg")});
  EXPECT_EQ(note.exit_code, 0) << note.out;
}

TEST(LintCli, RangeLintJsonCarriesCodeAndLocation) {
  const LintOutcome r =
      lint({"--ranges", "--json", fixture("range_div_zero.cdfg")});
  EXPECT_EQ(r.exit_code, 1);
  const auto parsed = obs::json_parse(r.out);
  ASSERT_TRUE(parsed.has_value()) << r.out;
  ASSERT_TRUE(parsed->is_array());
  bool found = false;
  for (const obs::JsonValue& item : parsed->as_array()) {
    const obs::JsonValue* code = item.find("code");
    if (code == nullptr || !code->is_string() ||
        code->as_string() != "CDFG200") {
      continue;
    }
    found = true;
    // The diagnostic must point at the div op (index 2 in the fixture).
    const obs::JsonValue* id = item.find("id");
    ASSERT_NE(id, nullptr) << r.out;
    EXPECT_EQ(id->as_number(), 2.0) << r.out;
    const obs::JsonValue* kind = item.find("kind");
    ASSERT_NE(kind, nullptr) << r.out;
    EXPECT_EQ(kind->as_string(), "op") << r.out;
  }
  EXPECT_TRUE(found) << r.out;
}

TEST(LintCli, ServerJsonModeForwardsRangesFlag) {
  const LintOutcome r = lint(
      {"--server-json", "--ranges", fixture("range_div_zero.cdfg")});
  EXPECT_EQ(r.exit_code, 1) << r.out << r.err;
  EXPECT_NE(r.out.find("\"ranges\":true"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("CDFG200"), std::string::npos) << r.out;
}

TEST(LintCli, ValidArtifactExitsZero) {
  const LintOutcome r = lint({fixture("valid_small.cdfg")});
  EXPECT_EQ(r.exit_code, 0) << r.out << r.err;
}

TEST(LintCli, WarningOnlyArtifactFailsOnlyUnderStrict) {
  const LintOutcome normal = lint({fixture("isolated_process.pn")});
  EXPECT_EQ(normal.exit_code, 0) << normal.out << normal.err;
  EXPECT_NE(normal.out.find("PN103"), std::string::npos) << normal.out;

  const LintOutcome strict =
      lint({"--strict", fixture("isolated_process.pn")});
  EXPECT_EQ(strict.exit_code, 1) << strict.out << strict.err;
}

TEST(LintCli, JsonOutputParsesAndCarriesTheCode) {
  const LintOutcome r = lint({"--json", fixture("dangling_value.cdfg")});
  EXPECT_EQ(r.exit_code, 1);
  const auto parsed = obs::json_parse(r.out);
  ASSERT_TRUE(parsed.has_value()) << r.out;
  ASSERT_TRUE(parsed->is_array());
  bool found = false;
  for (const obs::JsonValue& item : parsed->as_array()) {
    if (const obs::JsonValue* code = item.find("code")) {
      if (code->is_string() && code->as_string() == "CDFG001") found = true;
    }
  }
  EXPECT_TRUE(found) << r.out;
}

TEST(LintCli, CheckJsonReportsLineAndColumn) {
  const LintOutcome good = lint({"--check-json", fixture("good.json")});
  EXPECT_EQ(good.exit_code, 0) << good.out << good.err;
  EXPECT_NE(good.out.find("valid JSON"), std::string::npos);

  const LintOutcome bad = lint({"--check-json", fixture("bad_position.json")});
  EXPECT_EQ(bad.exit_code, 1) << bad.out << bad.err;
  EXPECT_NE(bad.out.find("line 3, column 20"), std::string::npos) << bad.out;
}

TEST(LintCli, UsageAndIoErrorsExitTwo) {
  EXPECT_EQ(lint({}).exit_code, 2);
  EXPECT_EQ(lint({"--frobnicate"}).exit_code, 2);
  EXPECT_EQ(lint({fixture("no_such_file.cdfg")}).exit_code, 2);
  // A file that is not IR at all: sniffing fails.
  EXPECT_EQ(lint({fixture("good.json")}).exit_code, 2);
}

TEST(LintCli, HelpExitsZero) {
  const LintOutcome r = lint({"--help"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(LintCli, MultipleFilesAggregate) {
  const LintOutcome r =
      lint({fixture("valid_small.cdfg"), fixture("dangling_value.cdfg")});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.out.find("CDFG001"), std::string::npos);
}

}  // namespace
}  // namespace mhs::apps
