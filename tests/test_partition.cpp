// Unit tests for mhs::partition — cost model and partitioning algorithms.
#include <gtest/gtest.h>

#include "apps/workloads.h"
#include "base/rng.h"
#include "ir/task_graph_gen.h"
#include "partition/algorithms.h"
#include "partition/cost_model.h"

namespace mhs::partition {
namespace {

CostModel make_model(const ir::TaskGraph& g) {
  return CostModel(g, hw::default_library());
}

TEST(CostModel, AllSwLatencyIsSerialSum) {
  const ir::TaskGraph g = apps::jpeg_pipeline_graph();
  const CostModel model = make_model(g);
  const Mapping all_sw(g.num_tasks(), false);
  // One CPU, zero SW-SW comm: latency equals the serial sum of sw cycles.
  EXPECT_NEAR(model.schedule_latency(all_sw, true, true),
              g.total_sw_cycles(), 1e-9);
}

TEST(CostModel, AllHwExploitsParallelism) {
  Rng rng(8);
  ir::TaskGraphGenConfig cfg;
  cfg.shape = ir::GraphShape::kForkJoin;
  cfg.num_tasks = 8;
  const ir::TaskGraph g = ir::generate_task_graph(cfg, rng);
  const CostModel model = make_model(g);
  const Mapping all_hw(g.num_tasks(), true);
  double hw_serial_sum = 0.0;
  for (const ir::TaskId t : g.task_ids()) {
    hw_serial_sum += g.task(t).costs.hw_cycles;
  }
  // Concurrent HW beats summing the branches.
  EXPECT_LT(model.schedule_latency(all_hw, true, false), hw_serial_sum);
  // Disabling concurrency serializes hardware too.
  EXPECT_NEAR(model.schedule_latency(all_hw, false, false), hw_serial_sum,
              1e-6);
}

TEST(CostModel, CommunicationPricedOnlyAcrossBoundary) {
  ir::TaskGraph g("two");
  const ir::TaskId a = g.add_task("a", {100, 10, 500, 40, 0, 0});
  const ir::TaskId b = g.add_task("b", {100, 10, 500, 40, 0, 0});
  g.add_edge(a, b, 400);
  const CostModel model = make_model(g);
  Objective obj;

  Mapping same(2, false);
  EXPECT_DOUBLE_EQ(model.evaluate(same, obj).cross_comm_cycles, 0.0);

  Mapping split = {false, true};
  const Metrics m = model.evaluate(split, obj);
  EXPECT_GT(m.cross_comm_cycles, 0.0);
  // 24 overhead + 400/4 bytes-per-cycle.
  EXPECT_DOUBLE_EQ(m.cross_comm_cycles, 124.0);
}

TEST(CostModel, LatencyAccountsForCrossEdges) {
  ir::TaskGraph g("chain");
  const ir::TaskId a = g.add_task("a", {100, 10, 500, 40, 0, 0});
  const ir::TaskId b = g.add_task("b", {100, 10, 500, 40, 0, 0});
  g.add_edge(a, b, 400);
  const CostModel model = make_model(g);
  const Mapping split = {false, true};
  const double with_comm = model.schedule_latency(split, true, true);
  const double without_comm = model.schedule_latency(split, true, false);
  EXPECT_DOUBLE_EQ(with_comm - without_comm, 124.0);
}

TEST(CostModel, AreaUsesSharing) {
  const ir::TaskGraph g = apps::jpeg_pipeline_graph();
  const CostModel model = make_model(g);
  Mapping two(g.num_tasks(), false);
  two[1] = two[2] = true;  // both DCTs in HW
  Mapping one(g.num_tasks(), false);
  one[1] = true;
  const double area2 = model.hardware_area(two);
  const double area1 = model.hardware_area(one);
  // Sharing: adding an identical-class task costs less than doubling.
  EXPECT_LT(area2, 2.0 * area1);
  EXPECT_GT(area2, area1);
}

TEST(CostModel, ModifiabilityPenaltyTracksHwMapping) {
  const ir::TaskGraph g = apps::jpeg_pipeline_graph();
  const CostModel model = make_model(g);
  Objective obj;
  Mapping entropy_hw(g.num_tasks(), false);
  entropy_hw[6] = true;  // entropy_code: modifiability 0.9
  Mapping dct_hw(g.num_tasks(), false);
  dct_hw[1] = true;  // dct_luma: modifiability 0.1
  EXPECT_GT(model.evaluate(entropy_hw, obj).modifiability_penalty / 0.9,
            0.0);
  EXPECT_GT(model.evaluate(entropy_hw, obj).modifiability_penalty,
            model.evaluate(dct_hw, obj).modifiability_penalty * 0.2);
}

TEST(CostModel, EnergyPenalizesConstraintViolations) {
  const ir::TaskGraph g = apps::jpeg_pipeline_graph();
  const CostModel model = make_model(g);
  const Mapping all_sw(g.num_tasks(), false);
  Objective relaxed;
  Objective strict = relaxed;
  strict.latency_target = 1000.0;  // far below the all-SW latency
  EXPECT_GT(model.evaluate(all_sw, strict).energy,
            model.evaluate(all_sw, relaxed).energy);
}

TEST(Algorithms, BaselinesAreExtremes) {
  const ir::TaskGraph g = apps::jpeg_pipeline_graph();
  const CostModel model = make_model(g);
  Objective obj;
  const PartitionResult sw = run(Strategy::kAllSw, model, obj);
  const PartitionResult hw = run(Strategy::kAllHw, model, obj);
  EXPECT_EQ(sw.metrics.tasks_in_hw, 0u);
  EXPECT_EQ(hw.metrics.tasks_in_hw, g.num_tasks());
  EXPECT_LT(hw.metrics.latency_cycles, sw.metrics.latency_cycles);
  EXPECT_GT(hw.metrics.hw_area, sw.metrics.hw_area);
}

TEST(Algorithms, HotSpotMeetsTargetWithPartialHw) {
  const ir::TaskGraph g = apps::jpeg_pipeline_graph();
  const CostModel model = make_model(g);
  Objective obj;
  const double all_sw =
      run(Strategy::kAllSw, model, obj).metrics.latency_cycles;
  obj.latency_target = all_sw * 0.5;
  const PartitionResult r = run(Strategy::kHotSpot, model, obj);
  EXPECT_LE(r.metrics.latency_cycles, obj.latency_target);
  EXPECT_GT(r.metrics.tasks_in_hw, 0u);
  EXPECT_LT(r.metrics.tasks_in_hw, g.num_tasks());
}

TEST(Algorithms, UnloadKeepsTargetWhileCuttingArea) {
  const ir::TaskGraph g = apps::jpeg_pipeline_graph();
  const CostModel model = make_model(g);
  Objective obj;
  const double all_sw =
      run(Strategy::kAllSw, model, obj).metrics.latency_cycles;
  obj.latency_target = all_sw * 0.5;
  const PartitionResult all_hw = run(Strategy::kAllHw, model, obj);
  const PartitionResult r = run(Strategy::kUnload, model, obj);
  EXPECT_LE(r.metrics.latency_cycles, obj.latency_target);
  EXPECT_LT(r.metrics.hw_area, all_hw.metrics.hw_area);
}

TEST(Algorithms, HotSpotRequiresTarget) {
  const ir::TaskGraph g = apps::jpeg_pipeline_graph();
  const CostModel model = make_model(g);
  Objective no_target;
  EXPECT_THROW(run(Strategy::kHotSpot, model, no_target), PreconditionError);
  EXPECT_THROW(run(Strategy::kUnload, model, no_target), PreconditionError);
}

TEST(Algorithms, KlImprovesOnAllSwEnergy) {
  const ir::TaskGraph g = apps::jpeg_pipeline_graph();
  const CostModel model = make_model(g);
  Objective obj;
  obj.area_weight = 0.02;
  const double sw_energy = run(Strategy::kAllSw, model, obj).metrics.energy;
  const PartitionResult r = run(Strategy::kKl, model, obj);
  EXPECT_LE(r.metrics.energy, sw_energy);
  EXPECT_GT(r.evaluations, g.num_tasks());
}

TEST(Algorithms, AnnealedFindsLowEnergyPartition) {
  Rng rng(12);
  ir::TaskGraphGenConfig cfg;
  cfg.num_tasks = 14;
  const ir::TaskGraph g = ir::generate_task_graph(cfg, rng);
  const CostModel model = make_model(g);
  Objective obj;
  obj.area_weight = 0.02;
  opt::AnnealConfig anneal_cfg;
  anneal_cfg.rounds = 60;
  anneal_cfg.moves_per_round = 48;
  PartitionOptions sa_options;
  sa_options.anneal = anneal_cfg;
  const PartitionResult sa =
      run(Strategy::kAnnealed, model, obj, sa_options);
  const double sw_energy = run(Strategy::kAllSw, model, obj).metrics.energy;
  const double hw_energy = run(Strategy::kAllHw, model, obj).metrics.energy;
  EXPECT_LE(sa.metrics.energy, std::min(sw_energy, hw_energy) + 1e-9);
}

TEST(Algorithms, GclpRespondsToTargetPressure) {
  const ir::TaskGraph g = apps::jpeg_pipeline_graph();
  const CostModel model = make_model(g);
  Objective loose;
  loose.latency_target = g.total_sw_cycles() * 2.0;  // easily met
  Objective tight;
  tight.latency_target = g.total_sw_cycles() * 0.25;
  const PartitionResult relaxed = run(Strategy::kGclp, model, loose);
  const PartitionResult pressed = run(Strategy::kGclp, model, tight);
  EXPECT_GE(pressed.metrics.tasks_in_hw, relaxed.metrics.tasks_in_hw);
  EXPECT_LE(pressed.metrics.latency_cycles,
            relaxed.metrics.latency_cycles);
}

TEST(Algorithms, MappingSizesAlwaysMatchGraph) {
  Rng rng(77);
  ir::TaskGraphGenConfig cfg;
  cfg.num_tasks = 9;
  const ir::TaskGraph g = ir::generate_task_graph(cfg, rng);
  const CostModel model = make_model(g);
  Objective obj;
  obj.latency_target = g.total_sw_cycles() * 0.6;
  for (const PartitionResult& r :
       {run(Strategy::kAllSw, model, obj), run(Strategy::kAllHw, model, obj),
        run(Strategy::kHotSpot, model, obj), run(Strategy::kUnload, model, obj),
        run(Strategy::kKl, model, obj), run(Strategy::kGclp, model, obj)}) {
    EXPECT_EQ(r.mapping.size(), g.num_tasks()) << r.algorithm;
    // Metrics were computed from the returned mapping.
    EXPECT_EQ(model.evaluate(r.mapping, obj).energy, r.metrics.energy)
        << r.algorithm;
  }
}

TEST(Ablation, CommBlindObjectiveYieldsWorseTrueLatency) {
  // A communication-heavy pipeline: ignoring the communication factor
  // during optimization scatters tasks across the boundary.
  Rng rng(5);
  ir::TaskGraphGenConfig cfg;
  cfg.shape = ir::GraphShape::kPipeline;
  cfg.num_tasks = 10;
  cfg.mean_edge_bytes = 3000.0;  // heavy traffic
  const ir::TaskGraph g = ir::generate_task_graph(cfg, rng);
  const CostModel model = make_model(g);

  Objective full;
  full.area_weight = 0.01;
  Objective blind = full;
  blind.consider_communication = false;

  const PartitionResult with_comm = run(Strategy::kKl, model, full);
  const PartitionResult no_comm = run(Strategy::kKl, model, blind);
  // Score both under the FULL model.
  const Metrics m_with = model.evaluate(with_comm.mapping, full);
  const Metrics m_blind = model.evaluate(no_comm.mapping, full);
  EXPECT_LE(m_with.latency_cycles, m_blind.latency_cycles * 1.001);
}

}  // namespace
}  // namespace mhs::partition
