// Tests for hardware implementation selection (cosynth/impl_select).
#include <gtest/gtest.h>

#include "apps/kernels.h"
#include "cosynth/run.h"

namespace mhs::cosynth {
namespace {

ImplMenu toy_menu(const char* name, double weight,
                  std::initializer_list<std::pair<double, double>> av) {
  ImplMenu menu;
  menu.task_name = name;
  menu.weight = weight;
  int i = 0;
  for (const auto& [area, cycles] : av) {
    menu.variants.push_back(
        ImplVariant{"v" + std::to_string(i++), area, cycles});
  }
  return menu;
}

/// Selection through the one sanctioned entry point (menus carry no IR,
/// so run() adds nothing beyond the dispatch).
ImplSelection run_select(const std::vector<ImplMenu>& menus,
                         double area_budget) {
  Request request;
  request.menus = menus;
  request.area_budget = area_budget;
  return *run(Target::kImplSelect, request).impl_select;
}

TEST(ImplSelect, PicksFastestWithinBudget) {
  // One task, three variants: (area, cycles) = (10,100),(50,40),(200,10).
  const std::vector<ImplMenu> menus = {
      toy_menu("t", 1.0, {{10, 100}, {50, 40}, {200, 10}})};
  const ImplSelection loose = run_select(menus, 1000.0);
  ASSERT_TRUE(loose.feasible);
  EXPECT_DOUBLE_EQ(loose.total_weighted_cycles, 10.0);
  const ImplSelection mid = run_select(menus, 60.0);
  EXPECT_DOUBLE_EQ(mid.total_weighted_cycles, 40.0);
  const ImplSelection tight = run_select(menus, 15.0);
  EXPECT_DOUBLE_EQ(tight.total_weighted_cycles, 100.0);
}

TEST(ImplSelect, InfeasibleWhenNothingFits) {
  const std::vector<ImplMenu> menus = {
      toy_menu("t", 1.0, {{10, 100}}),
      toy_menu("u", 1.0, {{10, 100}})};
  EXPECT_FALSE(run_select(menus, 15.0).feasible);
  EXPECT_TRUE(run_select(menus, 20.0).feasible);
}

TEST(ImplSelect, ExactOverInteractingBudget) {
  // Two tasks; greedy (give the heavier task the fast variant) is wrong:
  // the optimum gives BOTH tasks the medium variants.
  const std::vector<ImplMenu> menus = {
      toy_menu("a", 1.0, {{10, 100}, {55, 50}, {100, 45}}),
      toy_menu("b", 1.0, {{10, 100}, {55, 50}, {100, 45}})};
  const ImplSelection s = run_select(menus, 110.0);
  ASSERT_TRUE(s.feasible);
  // Greedy fast-first would take (100,45) + forced (10,100) = 145.
  // Optimal: (55,50) + (55,50) = 100.
  EXPECT_DOUBLE_EQ(s.total_weighted_cycles, 100.0);
  EXPECT_LE(s.total_area, 110.0);
}

TEST(ImplSelect, WeightsSteerTheBudget) {
  // Same menus, wildly different weights: the hot task gets the fast
  // variant, the cold one the small variant.
  const std::vector<ImplMenu> menus = {
      toy_menu("hot", 100.0, {{10, 100}, {200, 10}}),
      toy_menu("cold", 1.0, {{10, 100}, {200, 10}})};
  const ImplSelection s = run_select(menus, 250.0);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(menus[0].variants[s.chosen[0]].area, 200.0);
  EXPECT_EQ(menus[1].variants[s.chosen[1]].area, 10.0);
}

TEST(ImplSelect, MenuFromRealKernelsHasSaneShape) {
  const hw::ComponentLibrary lib = hw::default_library();
  const ir::Cdfg kernel = apps::fir_kernel(8);
  const ImplMenu menu = build_impl_menu(kernel, lib, 64);
  ASSERT_GE(menu.variants.size(), 4u);  // min_area, min_latency, IIs...
  // min_area is the cheapest variant; min_latency among the fastest
  // sequential ones; pipelined II=1 the fastest overall.
  const ImplVariant& min_area = menu.variants[0];
  const ImplVariant& min_latency = menu.variants[1];
  EXPECT_LT(min_area.area, min_latency.area);
  EXPECT_GT(min_area.batch_cycles, min_latency.batch_cycles);
  double fastest = 1e300;
  for (const ImplVariant& v : menu.variants) {
    fastest = std::min(fastest, v.batch_cycles);
  }
  bool pipelined_fastest = false;
  for (const ImplVariant& v : menu.variants) {
    if (v.name.rfind("pipelined", 0) == 0 &&
        v.batch_cycles == fastest) {
      pipelined_fastest = true;
    }
  }
  EXPECT_TRUE(pipelined_fastest);
}

TEST(ImplSelect, EndToEndBudgetSweepMonotone) {
  const hw::ComponentLibrary lib = hw::default_library();
  std::vector<ImplMenu> menus;
  menus.push_back(build_impl_menu(apps::fir_kernel(8), lib, 32, 2.0));
  menus.push_back(build_impl_menu(apps::median5_kernel(), lib, 32, 1.0));
  menus.push_back(build_impl_menu(apps::checksum_kernel(4), lib, 32, 1.0));
  double prev = 1e300;
  for (const double budget : {2000.0, 5000.0, 12000.0, 40000.0}) {
    const ImplSelection s = run_select(menus, budget);
    ASSERT_TRUE(s.feasible) << budget;
    EXPECT_LE(s.total_area, budget + 1e-9);
    EXPECT_LE(s.total_weighted_cycles, prev + 1e-9) << budget;
    prev = s.total_weighted_cycles;
  }
}

}  // namespace
}  // namespace mhs::cosynth
