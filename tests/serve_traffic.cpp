// Tier-2 system test: boots an mhs_serve-shaped server (traced handler,
// per-request registries, flight recorder, Prometheus callback) and
// drives mixed traffic at it through svc::HttpClient — cosim, flow,
// lint, health, metrics, repeats for cache hits — then audits the
// observability surfaces end to end:
//
//   * every flight-recorder entry's latency buckets sum exactly to its
//     recorded end-to-end latency;
//   * every per-request Chrome trace round-trips through
//     obs::json_parse (strict oracle) and carries span events;
//   * the Prometheus exposition parses line by line.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/obs.h"
#include "svc/api.h"
#include "svc/client.h"
#include "svc/dispatch.h"
#include "svc/server.h"

namespace mhs::svc {
namespace {

std::string fixture(const std::string& name) {
  std::ifstream in(std::string(MHS_FIXTURE_DIR) + "/" + name,
                   std::ios::binary);
  EXPECT_TRUE(in.is_open()) << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The traffic mix one client connection plays, in order.
std::vector<std::pair<std::string, Request>> traffic_mix() {
  std::vector<std::pair<std::string, Request>> mix;

  Request cosim;
  cosim.endpoint = Endpoint::kCosim;
  cosim.cosim.kernel = "fir8";
  cosim.cosim.samples = 2;
  mix.emplace_back("POST", cosim);
  mix.emplace_back("POST", cosim);  // repeat -> result-cache hit

  Request cosim2;
  cosim2.endpoint = Endpoint::kCosim;
  cosim2.cosim.kernel = "dct8";
  cosim2.cosim.samples = 2;
  mix.emplace_back("POST", cosim2);

  Request flow;
  flow.endpoint = Endpoint::kFlow;
  flow.flow.workload = "dsp_chain";
  flow.flow.cosimulate = true;  // so the flow entry carries cycle totals
  flow.flow.cosim_samples = 2;
  mix.emplace_back("POST", flow);

  Request lint;
  lint.endpoint = Endpoint::kLint;
  lint.lint.artifacts = {fixture("valid_small.cdfg")};
  mix.emplace_back("POST", lint);

  Request health;
  health.endpoint = Endpoint::kHealth;
  mix.emplace_back("GET", health);

  Request metrics;
  metrics.endpoint = Endpoint::kMetrics;
  mix.emplace_back("GET", metrics);

  mix.emplace_back("POST", cosim);  // another cache hit, late in the mix
  return mix;
}

TEST(ServeTraffic, MixedTrafficKeepsRecorderTracesAndMetricsConsistent) {
  obs::Registry registry;
  obs::ScopedRegistry scoped(registry);

  Dispatcher dispatcher;
  ServerConfig config;
  config.workers = 3;
  config.slow_trace_us = 1;  // everything competes for a pinned seat
  config.metrics_text = [&dispatcher] {
    return dispatcher.metrics_prometheus();
  };
  Server server(config,
                [&dispatcher](const Request& request,
                              const obs::TraceContext& trace,
                              RequestOutcome* outcome) {
                  return dispatcher.handle(request, trace, outcome);
                });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  const std::uint16_t port = server.port();

  // Two keep-alive clients play the mix concurrently; every trace id
  // the server hands back is collected for the audit.
  std::mutex ids_mutex;
  std::vector<std::string> trace_ids;
  auto play = [&] {
    HttpClient client("127.0.0.1", port);
    for (const auto& [method, request] : traffic_mix()) {
      HttpResult result;
      std::string client_error;
      const std::string target = endpoint_path(request.endpoint);
      const std::string body = method == "POST" ? request.json() : "";
      const bool ok =
          client.request(method, target, body, &result, &client_error);
      EXPECT_TRUE(ok) << target << ": " << client_error;
      if (!ok) continue;
      EXPECT_EQ(result.status, 200) << target << ": " << result.body;
      const std::string* id = result.header("x-mhs-trace");
      EXPECT_NE(id, nullptr) << target;
      if (id != nullptr) {
        const std::lock_guard<std::mutex> lock(ids_mutex);
        trace_ids.push_back(*id);
      }
    }
  };
  std::thread first(play);
  std::thread second(play);
  first.join();
  second.join();
  const std::size_t expected = 2 * traffic_mix().size();
  ASSERT_EQ(trace_ids.size(), expected);
  EXPECT_EQ(std::set<std::string>(trace_ids.begin(), trace_ids.end()).size(),
            expected)
      << "trace ids must be unique";

  // ---- flight recorder: buckets reconcile with end-to-end latency.
  const std::vector<RecordedRequest> entries = server.recorder().snapshot();
  ASSERT_GE(entries.size(), expected);  // + the GET /v1/requests below
  const std::set<std::string> known_endpoints = {
      "cosim", "flow", "lint", "health", "metrics", "requests", "trace"};
  std::size_t cache_hits = 0;
  for (const RecordedRequest& r : entries) {
    EXPECT_EQ(r.parse_us + r.queue_us + r.dispatch_us + r.respond_us,
              r.total_us)
        << r.trace_id;
    EXPECT_EQ(r.status, 200) << r.trace_id;
    EXPECT_EQ(known_endpoints.count(r.endpoint), 1u) << r.endpoint;
    if (r.cache_hit) ++cache_hits;
    if (r.endpoint == "cosim" || r.endpoint == "flow") {
      EXPECT_GT(r.total_cycles, 0u) << r.trace_id;
      std::uint64_t profile_sum = 0;
      for (const std::uint64_t bucket : r.profile) profile_sum += bucket;
      EXPECT_EQ(profile_sum, r.total_cycles) << r.trace_id;
    }
  }
  // Each client repeated the fir8 cosim twice after its first answer;
  // at least two of those repeats must have hit the result cache (the
  // very first pair may race into a coalesce instead).
  EXPECT_GE(cache_hits, 2u);

  // The HTTP view agrees with the direct snapshot.
  std::optional<HttpResult> over_http =
      http_get("127.0.0.1", port, "/v1/requests", &error);
  ASSERT_TRUE(over_http.has_value()) << error;
  ASSERT_EQ(over_http->status, 200);
  const std::optional<obs::JsonValue> recorder_doc =
      obs::json_parse(over_http->body);
  ASSERT_TRUE(recorder_doc.has_value()) << over_http->body;
  const obs::JsonValue* recorder_entries =
      recorder_doc->find("result")->find("entries");
  ASSERT_NE(recorder_entries, nullptr);
  EXPECT_GE(recorder_entries->as_array().size(), expected);

  // ---- traces: every request's Chrome trace parses strictly.
  for (const std::string& id : trace_ids) {
    std::optional<HttpResult> fetched =
        http_get("127.0.0.1", port, "/v1/trace/" + id, &error);
    ASSERT_TRUE(fetched.has_value()) << error;
    ASSERT_EQ(fetched->status, 200) << id;
    obs::JsonError parse_error;
    const std::optional<obs::JsonValue> doc =
        obs::json_parse(fetched->body, &parse_error);
    ASSERT_TRUE(doc.has_value()) << id << ": " << parse_error.str();
    const obs::JsonValue* chrome = doc->find("result");
    ASSERT_NE(chrome, nullptr) << id;
    const obs::JsonValue* events = chrome->find("traceEvents");
    ASSERT_NE(events, nullptr) << id;
    ASSERT_TRUE(events->is_array()) << id;
    // Every request ran under a per-request registry: its trace has at
    // least the svc root span, with sane timing.
    std::size_t spans = 0;
    for (const obs::JsonValue& event : events->as_array()) {
      const obs::JsonValue* ph = event.find("ph");
      if (ph == nullptr || ph->string_or("") != "X") continue;
      ++spans;
      EXPECT_GE(event.find("ts")->number_or(-1.0), 0.0) << id;
      EXPECT_GE(event.find("dur")->number_or(-1.0), 0.0) << id;
    }
    EXPECT_GE(spans, 1u) << id;
  }

  // ---- Prometheus: the exposition parses line by line.
  std::optional<HttpResult> prom =
      http_get("127.0.0.1", port, "/v1/metrics?format=prometheus", &error);
  ASSERT_TRUE(prom.has_value()) << error;
  ASSERT_EQ(prom->status, 200);
  std::istringstream lines(prom->body);
  std::string line;
  std::size_t samples = 0;
  std::set<std::string> seen_samples;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# TYPE ", 0) == 0 ||
                  line.rfind("# HELP ", 0) == 0)
          << line;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(name.empty()) << line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(name[0])) ||
                name[0] == '_')
        << line;
    // A sample name (including its label set) may appear only once per
    // exposition — Prometheus rejects duplicate samples at scrape time.
    EXPECT_TRUE(seen_samples.insert(name).second)
        << "duplicate sample: " << line;
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << line;
    ++samples;
  }
  EXPECT_GE(samples, 4u);
  EXPECT_NE(prom->body.find("mhs_svc_requests"), std::string::npos);
  // The per-request registries merged into the global one: the cosim
  // work shows up in the aggregate exposition.
  EXPECT_NE(prom->body.find("mhs_cosim_runs"), std::string::npos)
      << prom->body;

  server.stop();
}

}  // namespace
}  // namespace mhs::svc
