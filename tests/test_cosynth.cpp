// Unit tests for mhs::cosynth — multiprocessor synthesis (exact, bin
// packing, sensitivity), interface synthesis, ASIP/SFU synthesis, the
// co-processor flow, and multi-threaded co-processor partitioning.
#include <gtest/gtest.h>

#include <set>

#include "apps/kernels.h"
#include "apps/workloads.h"
#include "base/rng.h"
#include "cosynth/asip.h"
#include "cosynth/coproc.h"
#include "cosynth/interface_synth.h"
#include "cosynth/mtcoproc.h"
#include "cosynth/multiproc.h"
#include "cosynth/run.h"
#include "ir/task_graph_gen.h"

// This file is the designated home of the deprecated per-target entry
// points: it unit-tests their behaviour directly and proves run()
// parity against them (RunDispatcher.*Parity below). Everything else in
// the tree goes through cosynth::run / partition::run.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace mhs::cosynth {
namespace {

ir::TaskGraph small_graph(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  ir::TaskGraphGenConfig cfg;
  cfg.num_tasks = n;
  cfg.mean_sw_cycles = 1000.0;
  cfg.cost_spread = 2.0;
  return ir::generate_task_graph(cfg, rng);
}

TEST(Multiproc, MakespanSinglePeIsSerialSum) {
  const ir::TaskGraph g = small_graph(1, 6);
  const auto catalog = default_pe_catalog();
  const std::vector<std::size_t> one_pe_types = {2};  // "fast", slowdown 1
  const std::vector<std::size_t> assignment(g.num_tasks(), 0);
  const double makespan =
      mp_makespan(g, catalog, one_pe_types, assignment, MpCommModel{});
  EXPECT_NEAR(makespan, g.total_sw_cycles(), 1e-9);
}

TEST(Multiproc, MakespanTwoPesOverlapsIndependentWork) {
  // Two independent tasks on two PEs finish in max, not sum.
  ir::TaskGraph g("par");
  g.add_task("a", {1000, 0, 0, 0, 0, 0});
  g.add_task("b", {800, 0, 0, 0, 0, 0});
  const auto catalog = default_pe_catalog();
  const std::vector<std::size_t> types = {2, 2};
  const std::vector<std::size_t> assignment = {0, 1};
  EXPECT_NEAR(mp_makespan(g, catalog, types, assignment, MpCommModel{}),
              1000.0, 1e-9);
}

TEST(Multiproc, MakespanChargesCrossPeCommunication) {
  ir::TaskGraph g("chain");
  const ir::TaskId a = g.add_task("a", {1000, 0, 0, 0, 0, 0});
  const ir::TaskId b = g.add_task("b", {1000, 0, 0, 0, 0, 0});
  g.add_edge(a, b, 800);
  const auto catalog = default_pe_catalog();
  MpCommModel comm;  // 16 + 800/8 = 116
  const double same = mp_makespan(g, catalog, {2}, {0, 0}, comm);
  const double split = mp_makespan(g, catalog, {2, 2}, {0, 1}, comm);
  EXPECT_NEAR(same, 2000.0, 1e-9);
  EXPECT_NEAR(split, 2116.0, 1e-9);
}

TEST(Multiproc, ExactFindsFeasibleMinCost) {
  const ir::TaskGraph g = small_graph(2, 6);
  const auto catalog = default_pe_catalog();
  const double serial_fast = g.total_sw_cycles();  // on slowdown-1 PE
  const double deadline = serial_fast * 1.2;       // one fast PE suffices
  const MpDesign d = synthesize_exact(g, catalog, deadline);
  ASSERT_TRUE(d.feasible);
  EXPECT_LE(d.makespan, deadline);
  // A single "fast" PE (cost 1500) meets this deadline; anything cheaper
  // that is feasible is also acceptable, but never more expensive.
  EXPECT_LE(d.cost, 1500.0 + 1e-9);
}

TEST(Multiproc, ExactTightDeadlineBuysParallelismOrSpeed) {
  const ir::TaskGraph g = small_graph(3, 6);
  const auto catalog = default_pe_catalog();
  const double loose = g.total_sw_cycles() * 4.0;
  const double tight = g.total_sw_cycles() * 0.6;
  const MpDesign cheap = synthesize_exact(g, catalog, loose);
  const MpDesign fast = synthesize_exact(g, catalog, tight);
  ASSERT_TRUE(cheap.feasible);
  ASSERT_TRUE(fast.feasible);
  EXPECT_LE(cheap.cost, fast.cost);  // deadline down => cost up (or equal)
}

TEST(Multiproc, ExactReportsInfeasible) {
  const ir::TaskGraph g = small_graph(4, 5);
  const auto catalog = default_pe_catalog();
  const MpDesign d = synthesize_exact(g, catalog, 1.0);  // impossible
  EXPECT_FALSE(d.feasible);
}

TEST(Multiproc, BinpackFeasibleAndNeverCheaperThanExact) {
  const auto catalog = default_pe_catalog();
  for (const std::uint64_t seed : {5u, 6u, 7u}) {
    const ir::TaskGraph g = small_graph(seed, 7);
    const double deadline = g.total_sw_cycles() * 0.8;
    const MpDesign exact = synthesize_exact(g, catalog, deadline);
    const MpDesign packed = synthesize_binpack(g, catalog, deadline);
    if (!exact.feasible) continue;
    ASSERT_TRUE(packed.feasible) << "seed " << seed;
    EXPECT_LE(packed.makespan, deadline);
    EXPECT_GE(packed.cost, exact.cost - 1e-9) << "seed " << seed;
  }
}

TEST(Multiproc, BinpackMuchLessEffortThanExact) {
  const ir::TaskGraph g = small_graph(8, 8);
  const auto catalog = default_pe_catalog();
  const double deadline = g.total_sw_cycles() * 0.7;
  const MpDesign exact = synthesize_exact(g, catalog, deadline);
  const MpDesign packed = synthesize_binpack(g, catalog, deadline);
  EXPECT_LT(packed.effort * 100, exact.effort);
}

TEST(Multiproc, SensitivityReducesSeedCostAndStaysFeasible) {
  const ir::TaskGraph g = small_graph(9, 8);
  const auto catalog = default_pe_catalog();
  const double deadline = g.total_sw_cycles() * 0.9;
  const MpDesign d = synthesize_sensitivity(g, catalog, deadline);
  ASSERT_TRUE(d.feasible);
  EXPECT_LE(d.makespan, deadline);
  // Seed was one fastest PE per task.
  const double seed_cost = static_cast<double>(g.num_tasks()) * 3600.0;
  EXPECT_LT(d.cost, seed_cost);
}

TEST(Multiproc, AssignmentsAlwaysCompleteAndValid) {
  const ir::TaskGraph g = small_graph(10, 7);
  const auto catalog = default_pe_catalog();
  const double deadline = g.total_sw_cycles();
  for (const MpDesign& d :
       {synthesize_exact(g, catalog, deadline),
        synthesize_binpack(g, catalog, deadline),
        synthesize_sensitivity(g, catalog, deadline)}) {
    ASSERT_EQ(d.assignment.size(), g.num_tasks());
    for (const std::size_t inst : d.assignment) {
      EXPECT_LT(inst, d.instance_type.size());
    }
  }
}

TEST(InterfaceSynth, AllocatorAlignsAndExhausts) {
  AddressMapAllocator alloc(0x10000, 0x1000);
  const std::uint64_t a = alloc.allocate(0x400, 0x400);
  const std::uint64_t b = alloc.allocate(0x400, 0x400);
  EXPECT_EQ(a % 0x400, 0u);
  EXPECT_EQ(b, a + 0x400);
  alloc.allocate(0x400, 0x400);  // window now has 0x400 left
  EXPECT_THROW(alloc.allocate(0x2000, 0x400), InfeasibleError);
  EXPECT_EQ(alloc.bytes_allocated(), 0xC00u);
}

TEST(InterfaceSynth, LatencyCriticalPicksPolling) {
  const ir::Cdfg kernel = apps::fir_kernel(6);
  hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  const hw::HlsResult impl = hw::synthesize(kernel, lib, constraints);

  Rng rng(3);
  std::vector<std::vector<std::int64_t>> samples;
  for (int s = 0; s < 8; ++s) {
    std::vector<std::int64_t> in;
    for (std::size_t k = 0; k < kernel.inputs().size(); ++k) {
      in.push_back(rng.uniform_int(-100, 100));
    }
    samples.push_back(in);
  }

  InterfaceRequirements latency_first;
  latency_first.latency_weight = 1.0;
  AddressMapAllocator alloc1;
  const InterfaceDesign d1 =
      synthesize_interface(impl, latency_first, samples, alloc1);
  EXPECT_FALSE(d1.candidates[d1.selected].use_irq);

  InterfaceRequirements throughput_first;
  throughput_first.latency_weight = 0.0;
  throughput_first.background_unroll = 8;
  AddressMapAllocator alloc2;
  const InterfaceDesign d2 =
      synthesize_interface(impl, throughput_first, samples, alloc2);
  EXPECT_TRUE(d2.candidates[d2.selected].use_irq);
  // Both evaluated candidates agree functionally.
  EXPECT_EQ(d2.candidates[0].report.checksum,
            d2.candidates[1].report.checksum);
}

TEST(Asip, MacPatternCounter) {
  // fir has taps-1 mul-feeding-add patterns (plus shifts between).
  const ir::Cdfg mac = apps::sad_kernel(4);
  EXPECT_EQ(count_mac_patterns(mac), 0u);  // abs chain, no mul
  ir::Cdfg c("macs");
  const ir::OpId a = c.input("a");
  const ir::OpId b = c.input("b");
  const ir::OpId m = c.mul(a, b);
  c.output("y", c.add(m, a));
  EXPECT_EQ(count_mac_patterns(c), 1u);
}

TEST(Asip, BiggerBudgetMonotoneSpeedup) {
  std::vector<ir::Cdfg> storage;
  storage.push_back(apps::dct8_kernel());
  storage.push_back(apps::xtea_kernel(8));
  std::vector<WeightedKernel> apps_set = {
      {&storage[0], 1.0, "dct8"},
      {&storage[1], 1.0, "xtea8"},
  };
  const sw::CpuModel base = sw::reference_cpu();
  double prev_speedup = 0.99;
  for (const double budget : {0.0, 300.0, 1000.0, 2500.0, 5000.0}) {
    const AsipDesign d = synthesize_asip(apps_set, base, budget);
    EXPECT_LE(d.area_used, budget + 1e-9);
    EXPECT_GE(d.speedup(), prev_speedup - 1e-9)
        << "budget " << budget;
    prev_speedup = d.speedup();
  }
  EXPECT_GT(prev_speedup, 1.15);  // large budget visibly helps
}

TEST(Asip, PicksFeaturesMatchingHotSpots) {
  // A multiply-dominated app should buy the fast multiplier first.
  std::vector<ir::Cdfg> storage;
  storage.push_back(apps::dct8_kernel());
  std::vector<WeightedKernel> apps_set = {{&storage[0], 1.0, "dct8"}};
  const AsipDesign d =
      synthesize_asip(apps_set, sw::reference_cpu(), 950.0);
  ASSERT_FALSE(d.features.empty());
  EXPECT_EQ(d.features[0], IsaFeature::kFastMul);
}

TEST(Asip, ReconfigurableSlotAdaptsPerApp) {
  std::vector<ir::Cdfg> storage;
  storage.push_back(apps::dct8_kernel());     // wants fast mul
  storage.push_back(apps::median5_kernel());  // wants native select
  std::vector<WeightedKernel> apps_set = {
      {&storage[0], 1.0, "dct"},
      {&storage[1], 40.0, "median"},
  };
  const sw::CpuModel base = sw::reference_cpu();
  const ReconfigSfuDesign r =
      synthesize_sfu_reconfigurable(apps_set, base, 1500.0);
  ASSERT_EQ(r.per_app_feature.size(), 2u);
  EXPECT_NE(r.per_app_feature[0], r.per_app_feature[1]);
  EXPECT_GT(r.speedup(), 1.0);
}

TEST(Asip, ReconfigurableBeatsStaticUnderTightBudget) {
  // Two apps wanting the two priciest features (fast multiplier at 900,
  // fast divider at 1500); a budget of 2000 cannot hold both statically,
  // but a PRISM-style reprogrammable slot swaps between them per app.
  ir::Cdfg divs("div_chain");
  ir::OpId v = divs.input("a");
  for (int i = 0; i < 10; ++i) {
    v = divs.binary(ir::OpKind::kDiv, v, divs.input("d" + std::to_string(i)));
  }
  divs.output("y", v);

  std::vector<ir::Cdfg> storage;
  storage.push_back(apps::dct8_kernel());
  storage.push_back(std::move(divs));
  std::vector<WeightedKernel> apps_set = {
      {&storage[0], 1.0, "dct"},
      {&storage[1], 3.0, "div_chain"},
  };
  const sw::CpuModel base = sw::reference_cpu();
  const double budget = 2000.0;
  const AsipDesign fixed = synthesize_sfu_static(apps_set, base, budget);
  const ReconfigSfuDesign flexible =
      synthesize_sfu_reconfigurable(apps_set, base, budget);
  EXPECT_GT(flexible.speedup(), fixed.speedup());
}

TEST(Coproc, StrategiesProduceConsistentDesigns) {
  const ir::TaskGraph g = apps::jpeg_pipeline_graph();
  const partition::CostModel model(g, hw::default_library());
  partition::Objective obj;
  obj.latency_target = g.total_sw_cycles() * 0.5;
  for (const CoprocStrategy s :
       {CoprocStrategy::kHotSpot, CoprocStrategy::kUnload,
        CoprocStrategy::kKl, CoprocStrategy::kGclp}) {
    const CoprocDesign d = synthesize_coprocessor(model, obj, s);
    EXPECT_EQ(d.partition.mapping.size(), g.num_tasks())
        << coproc_strategy_name(s);
    EXPECT_GT(d.all_sw_latency, 0.0);
    EXPECT_GE(d.speedup(), 0.99) << coproc_strategy_name(s);
  }
}

TEST(Coproc, ValidateHwAreaSynthesizesOnlyMappedKernels) {
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  const partition::CostModel model(w.graph, hw::default_library());
  partition::Mapping none(w.graph.num_tasks(), false);
  EXPECT_DOUBLE_EQ(validate_hw_area(model, none, w.kernels), 0.0);
  partition::Mapping all(w.graph.num_tasks(), true);
  EXPECT_GT(validate_hw_area(model, all, w.kernels), 0.0);
}

TEST(MtCoproc, GreedyRespectsBudget) {
  const ir::ProcessNetwork net = apps::ekg_monitor_network();
  sim::OsCosimConfig eval;
  eval.iterations = 16;
  const MtCoprocDesign d = mt_partition_latency_greedy(net, 3000.0, eval);
  EXPECT_LE(d.hw_area, 3000.0);
  EXPECT_FALSE(d.evaluation.deadlocked);
}

TEST(MtCoproc, ConcurrencyAwareNoWorseThanGreedy) {
  const ir::ProcessNetwork net = apps::worker_farm_network(4, 3000, 256);
  sim::OsCosimConfig eval;
  eval.iterations = 24;
  const double budget = 4000.0;  // fits ~3 workers
  const MtCoprocDesign greedy =
      mt_partition_latency_greedy(net, budget, eval);
  opt::AnnealConfig anneal_cfg;
  anneal_cfg.rounds = 24;
  anneal_cfg.moves_per_round = 16;
  const MtCoprocDesign aware = mt_partition_concurrency_aware(
      net, budget, eval, anneal_cfg, /*opt_iterations=*/8);
  EXPECT_FALSE(aware.evaluation.deadlocked);
  EXPECT_LE(aware.hw_area, budget + 1e-9);
  EXPECT_LE(aware.evaluation.makespan,
            greedy.evaluation.makespan * 1.02);
  EXPECT_GT(aware.effort, greedy.effort);
}


// -- The cosynth::run(Target, ...) dispatcher: bit-identical to the
// legacy per-target free functions.

TEST(RunDispatcher, TargetNamesAreStableAndDistinct) {
  std::set<std::string> names;
  for (const Target t : kAllTargets) names.insert(target_name(t));
  EXPECT_EQ(names.size(), std::size(kAllTargets));
  EXPECT_STREQ(target_name(Target::kCoprocessor), "coprocessor");
  EXPECT_STREQ(target_name(Target::kMultiprocPeriodic),
               "multiproc_periodic");
}

TEST(RunDispatcher, CoprocessorParity) {
  const ir::TaskGraph g = apps::jpeg_pipeline_graph();
  const partition::CostModel model(g, hw::default_library());
  Request req;
  req.model = &model;
  req.objective.latency_target = g.total_sw_cycles() * 0.5;
  req.strategy = CoprocStrategy::kKl;
  const Result r = run(Target::kCoprocessor, req);
  const CoprocDesign legacy =
      synthesize_coprocessor(model, req.objective, req.strategy);
  ASSERT_TRUE(r.coprocessor.has_value());
  EXPECT_EQ(r.coprocessor->partition.mapping, legacy.partition.mapping);
  EXPECT_EQ(r.coprocessor->partition.algorithm, legacy.partition.algorithm);
  EXPECT_EQ(r.coprocessor->partition.evaluations,
            legacy.partition.evaluations);
  EXPECT_DOUBLE_EQ(r.coprocessor->all_sw_latency, legacy.all_sw_latency);
  EXPECT_DOUBLE_EQ(r.latency(), legacy.latency());
  EXPECT_DOUBLE_EQ(r.area(), legacy.area());
  EXPECT_EQ(r.summary(), legacy.summary());
}

TEST(RunDispatcher, AsipParity) {
  std::vector<ir::Cdfg> storage;
  storage.push_back(apps::dct8_kernel());
  storage.push_back(apps::xtea_kernel(8));
  Request req;
  req.apps = {{&storage[0], 1.0, "dct8"}, {&storage[1], 2.0, "xtea8"}};
  req.cpu = sw::reference_cpu();
  req.area_budget = 2500.0;
  const Result r = run(Target::kAsip, req);
  const AsipDesign legacy =
      synthesize_asip(req.apps, req.cpu, req.area_budget);
  ASSERT_TRUE(r.asip.has_value());
  EXPECT_EQ(r.asip->features, legacy.features);
  EXPECT_DOUBLE_EQ(r.asip->area_used, legacy.area_used);
  EXPECT_DOUBLE_EQ(r.asip->base_cycles, legacy.base_cycles);
  EXPECT_DOUBLE_EQ(r.asip->asip_cycles, legacy.asip_cycles);
  EXPECT_DOUBLE_EQ(r.latency(), legacy.latency());
  EXPECT_EQ(r.summary(), legacy.summary());
}

TEST(RunDispatcher, MixedParity) {
  const ir::TaskGraph g = small_graph(21, 6);
  const std::vector<const ir::Cdfg*> kernels(g.num_tasks(), nullptr);
  Request req;
  req.graph = &g;
  req.kernels = &kernels;
  req.cpu = sw::reference_cpu();
  req.library = hw::default_library();
  req.area_budget = 2000.0;
  const Result r = run(Target::kMixed, req);
  const MixedDesign legacy =
      synthesize_mixed(g, kernels, req.cpu, req.library, req.area_budget,
                       req.comm);
  ASSERT_TRUE(r.mixed.has_value());
  EXPECT_EQ(r.mixed->features, legacy.features);
  EXPECT_EQ(r.mixed->mapping, legacy.mapping);
  EXPECT_DOUBLE_EQ(r.mixed->latency_cycles, legacy.latency_cycles);
  EXPECT_DOUBLE_EQ(r.mixed->isa_area, legacy.isa_area);
  EXPECT_DOUBLE_EQ(r.mixed->coproc_area, legacy.coproc_area);
  EXPECT_EQ(r.mixed->feature_subsets_tried, legacy.feature_subsets_tried);
  EXPECT_EQ(r.mixed->partition_evaluations, legacy.partition_evaluations);
  EXPECT_DOUBLE_EQ(r.area(), legacy.area());
  EXPECT_EQ(r.summary(), legacy.summary());
}

TEST(RunDispatcher, InterfaceParity) {
  const ir::Cdfg kernel = apps::fir_kernel(6);
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  // impl's Schedule points into the library; keep it alive past the run.
  const hw::ComponentLibrary library = hw::default_library();
  const hw::HlsResult impl = hw::synthesize(kernel, library, constraints);
  Rng rng(17);
  std::vector<std::vector<std::int64_t>> samples;
  for (int s = 0; s < 6; ++s) {
    std::vector<std::int64_t> in;
    for (std::size_t k = 0; k < kernel.inputs().size(); ++k) {
      in.push_back(rng.uniform_int(-100, 100));
    }
    samples.push_back(in);
  }
  Request req;
  req.impl = &impl;
  req.samples = &samples;
  // Fresh allocators starting at the same base keep the address maps
  // comparable.
  AddressMapAllocator alloc_run;
  AddressMapAllocator alloc_legacy;
  req.allocator = &alloc_run;
  const Result r = run(Target::kInterface, req);
  const InterfaceDesign legacy = synthesize_interface(
      impl, req.interface_reqs, samples, alloc_legacy);
  ASSERT_TRUE(r.iface.has_value());
  EXPECT_EQ(r.iface->base_address, legacy.base_address);
  EXPECT_EQ(r.iface->selected, legacy.selected);
  ASSERT_EQ(r.iface->candidates.size(), legacy.candidates.size());
  for (std::size_t i = 0; i < legacy.candidates.size(); ++i) {
    EXPECT_EQ(r.iface->candidates[i].use_irq, legacy.candidates[i].use_irq);
    EXPECT_DOUBLE_EQ(r.iface->candidates[i].score,
                     legacy.candidates[i].score);
    EXPECT_EQ(r.iface->candidates[i].report.checksum,
              legacy.candidates[i].report.checksum);
  }
  EXPECT_EQ(r.iface->driver.code.size(), legacy.driver.code.size());
  EXPECT_DOUBLE_EQ(r.latency(), legacy.latency());
  EXPECT_EQ(r.summary(), legacy.summary());
}

TEST(RunDispatcher, ImplSelectParity) {
  Request req;
  req.menus = {
      {"fir", 2.0, {{"min_area", 100.0, 900.0}, {"fast", 400.0, 300.0}}},
      {"dct", 1.0, {{"min_area", 250.0, 1200.0}, {"fast", 700.0, 500.0}}},
  };
  req.area_budget = 900.0;
  const Result r = run(Target::kImplSelect, req);
  const ImplSelection legacy =
      select_implementations(req.menus, req.area_budget);
  ASSERT_TRUE(r.impl_select.has_value());
  EXPECT_EQ(r.impl_select->chosen, legacy.chosen);
  EXPECT_DOUBLE_EQ(r.impl_select->total_area, legacy.total_area);
  EXPECT_DOUBLE_EQ(r.impl_select->total_weighted_cycles,
                   legacy.total_weighted_cycles);
  EXPECT_EQ(r.impl_select->explored, legacy.explored);
  EXPECT_EQ(r.impl_select->feasible, legacy.feasible);
  EXPECT_DOUBLE_EQ(r.latency(), legacy.latency());
  EXPECT_EQ(r.summary(), legacy.summary());
}

TEST(RunDispatcher, MultiprocPeriodicParity) {
  ir::TaskGraph g = small_graph(22, 8);
  Rng rng(23);
  for (const ir::TaskId t : g.task_ids()) {
    g.task(t).period = g.task(t).costs.sw_cycles * rng.uniform(4.0, 20.0);
  }
  Request req;
  req.graph = &g;  // empty catalog: dispatcher supplies the default
  const Result r = run(Target::kMultiprocPeriodic, req);
  const MpDesign legacy = synthesize_periodic(g, default_pe_catalog());
  ASSERT_TRUE(r.multiproc.has_value());
  EXPECT_EQ(r.multiproc->instance_type, legacy.instance_type);
  EXPECT_EQ(r.multiproc->assignment, legacy.assignment);
  EXPECT_DOUBLE_EQ(r.multiproc->cost, legacy.cost);
  EXPECT_DOUBLE_EQ(r.multiproc->makespan, legacy.makespan);
  EXPECT_EQ(r.multiproc->feasible, legacy.feasible);
  EXPECT_EQ(r.multiproc->effort, legacy.effort);
  EXPECT_DOUBLE_EQ(r.latency(), legacy.latency());
  EXPECT_DOUBLE_EQ(r.area(), legacy.area());
  EXPECT_EQ(r.summary(), legacy.summary());
}

TEST(RunDispatcher, MissingRequiredInputsAreChecked) {
  Request empty;
  EXPECT_THROW(run(Target::kCoprocessor, empty), PreconditionError);
  EXPECT_THROW(run(Target::kMixed, empty), PreconditionError);
  EXPECT_THROW(run(Target::kInterface, empty), PreconditionError);
  EXPECT_THROW(run(Target::kMultiprocPeriodic, empty), PreconditionError);
}

}  // namespace
}  // namespace mhs::cosynth
