// Unit tests for mhs::base — error handling, RNG, stats, tables, Q16.
#include <gtest/gtest.h>

#include <set>

#include "base/error.h"
#include "base/fixed_point.h"
#include "base/ids.h"
#include "base/rng.h"
#include "base/stats.h"
#include "base/table.h"

namespace mhs {
namespace {

TEST(Error, CheckThrowsPreconditionWithContext) {
  try {
    MHS_CHECK(1 == 2, "value was " << 42);
    FAIL() << "MHS_CHECK did not throw";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("value was 42"), std::string::npos);
  }
}

TEST(Error, AssertThrowsInternal) {
  EXPECT_THROW(MHS_ASSERT(false, "boom"), InternalError);
  EXPECT_NO_THROW(MHS_ASSERT(true, "fine"));
}

TEST(Error, HierarchyRootsAtError) {
  EXPECT_THROW(
      { throw InfeasibleError("no solution"); }, Error);
  EXPECT_THROW(
      { throw PreconditionError("bad arg"); }, Error);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInRangeAndCoversRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(9);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(2, 1), PreconditionError);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalHasRoughMoments) {
  Rng rng(13);
  StatAccumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(acc.mean(), 5.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialHasRoughMean) {
  Rng rng(17);
  StatAccumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.exponential(3.0));
  EXPECT_NEAR(acc.mean(), 3.0, 0.15);
}

TEST(Rng, BernoulliRespectsP) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
  EXPECT_THROW(rng.bernoulli(1.5), PreconditionError);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(23);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
  EXPECT_THROW(rng.weighted_index({}), PreconditionError);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), PreconditionError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Stats, AccumulatorBasics) {
  StatAccumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    acc.add(x);
  }
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 1e-3);
}

TEST(Stats, EmptyAccumulatorIsSafe) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_THROW(quantile({}, 0.5), PreconditionError);
  EXPECT_THROW(quantile(v, 1.5), PreconditionError);
}

TEST(Stats, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(100.0, 100.0), 0.0);
}

TEST(Stats, GeometricMean) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_THROW(geometric_mean({1.0, -1.0}), PreconditionError);
}

TEST(Table, RendersAlignedRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22222"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|---"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Table, FormatsDoublesWithPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(static_cast<std::size_t>(42)), "42");
}

TEST(Ids, StrongTypingAndInvalid) {
  struct TagA {};
  using IdA = Id<TagA>;
  const IdA a(3);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.index(), 3u);
  EXPECT_FALSE(IdA::invalid().valid());
  EXPECT_EQ(IdA(3), a);
  EXPECT_LT(IdA(2), a);
}

TEST(Fixed, RoundTripAndArithmetic) {
  const Q16 a = Q16::from_double(1.5);
  const Q16 b = Q16::from_double(-0.25);
  EXPECT_NEAR((a + b).to_double(), 1.25, 1e-4);
  EXPECT_NEAR((a - b).to_double(), 1.75, 1e-4);
  EXPECT_NEAR((a * b).to_double(), -0.375, 1e-4);
  EXPECT_NEAR((a / b).to_double(), -6.0, 1e-4);
  EXPECT_EQ(Q16::from_int(7).to_int(), 7);
}

TEST(Fixed, DivideByZeroThrows) {
  EXPECT_THROW(Q16::from_int(1) / Q16::from_int(0), PreconditionError);
}

TEST(Fixed, MultiplicationRounds) {
  // 0.5 * 0.5 = 0.25 exactly representable.
  const Q16 h = Q16::from_double(0.5);
  EXPECT_DOUBLE_EQ((h * h).to_double(), 0.25);
}

}  // namespace
}  // namespace mhs
