// Unit tests for mhs::analysis::absint — the value-range / known-bits
// abstract interpretation — and its three consumers: the CDFG2xx range
// lints, proven-safe HLS datapath narrowing, and the range-aware
// ir::optimize overload.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "analysis/absint.h"
#include "analysis/lint.h"
#include "analysis/verify.h"
#include "apps/kernels.h"
#include "apps/workloads.h"
#include "base/rng.h"
#include "core/flow.h"
#include "core/report.h"
#include "hw/hls.h"
#include "ir/optimize.h"
#include "ir/serialize.h"
#include "sim/run.h"

namespace mhs::analysis {
namespace {

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

// ------------------------------------------------------------- domains

TEST(AbsintDomain, IntervalBasics) {
  EXPECT_TRUE(Interval::top().is_top());
  EXPECT_TRUE(Interval::constant(7).is_constant());
  EXPECT_TRUE(Interval::constant(7).contains(7));
  EXPECT_FALSE(Interval::constant(7).contains(8));
  EXPECT_TRUE((Interval{1, 5}.excludes_zero()));
  EXPECT_TRUE((Interval{-5, -1}.excludes_zero()));
  EXPECT_FALSE((Interval{-1, 1}.excludes_zero()));
  EXPECT_FALSE(Interval::top().excludes_zero());
}

TEST(AbsintDomain, KnownBitsBasics) {
  const KnownBits c = KnownBits::constant(-2);
  EXPECT_TRUE(c.is_constant());
  EXPECT_TRUE(c.contains(-2));
  EXPECT_FALSE(c.contains(-1));
  EXPECT_FALSE(KnownBits::top().is_constant());
  EXPECT_TRUE(KnownBits::top().contains(123456789));
}

TEST(AbsintDomain, NeededBits) {
  EXPECT_EQ(needed_bits(Interval::constant(0)), 1u);
  EXPECT_EQ(needed_bits(Interval::constant(-1)), 1u);
  EXPECT_EQ(needed_bits(Interval::constant(1)), 2u);
  EXPECT_EQ(needed_bits({-128, 127}), 8u);
  EXPECT_EQ(needed_bits({0, 255}), 9u);  // signed width needs the sign bit
  EXPECT_EQ(needed_bits({-1, 0}), 1u);
  EXPECT_EQ(needed_bits(Interval::top()), 64u);
  EXPECT_EQ(needed_bits(Interval::constant(kMin)), 64u);
}

TEST(AbsintDomain, TrapProofPredicates) {
  EXPECT_TRUE(proves_divide_trap(Interval::constant(0)));
  EXPECT_FALSE(proves_divide_trap({0, 1}));
  EXPECT_FALSE(proves_divide_trap(Interval::top()));
  EXPECT_TRUE(proves_shift_trap(Interval::constant(64)));
  EXPECT_TRUE(proves_shift_trap(Interval::constant(-1)));
  EXPECT_TRUE(proves_shift_trap({64, 100}));
  EXPECT_FALSE(proves_shift_trap({0, 63}));
  EXPECT_FALSE(proves_shift_trap({63, 64}));  // 63 is still legal
}

// ------------------------------------------------------- transfer fns

TEST(Absint, ConstantExpressionsFoldToExactValues) {
  ir::Cdfg k("consts");
  const ir::OpId a = k.constant(6);
  const ir::OpId b = k.constant(-7);
  const ir::OpId sum = k.add(a, b);
  const ir::OpId prod = k.mul(a, b);
  k.output("s", sum);
  k.output("p", prod);
  const AbsintResult r = absint_cdfg(k);
  EXPECT_EQ(r.value(sum).range, Interval::constant(-1));
  EXPECT_TRUE(r.value(sum).bits.is_constant());
  EXPECT_EQ(r.value(prod).range, Interval::constant(-42));
  EXPECT_FALSE(r.value(sum).may_overflow);
}

TEST(Absint, SeededRangesPropagateThroughArithmetic) {
  ir::Cdfg k("seeded");
  const ir::OpId x = k.input("x", {-128, 127});
  const ir::OpId y = k.input("y", {0, 10});
  const ir::OpId sum = k.add(x, y);
  const ir::OpId m = k.mul(x, y);
  k.output("s", sum);
  k.output("m", m);
  const AbsintResult r = absint_cdfg(k);
  EXPECT_EQ(r.value(x).range, (Interval{-128, 127}));
  EXPECT_EQ(r.value(sum).range, (Interval{-128, 137}));
  EXPECT_EQ(r.value(m).range, (Interval{-1280, 1270}));
  EXPECT_FALSE(r.value(sum).may_overflow);
}

TEST(Absint, OverflowOnlyWhenTheMathExceedsI64) {
  ir::Cdfg k("ovf");
  const ir::OpId a = k.input("a");  // unannotated: top
  const ir::OpId b = k.input("b");
  const ir::OpId sum = k.add(a, b);
  k.output("s", sum);
  const AbsintResult r = absint_cdfg(k);
  EXPECT_TRUE(r.value(sum).may_overflow);
  EXPECT_TRUE(r.value(sum).range.is_top());
}

TEST(Absint, KnownBitsThroughMaskingAndShifts) {
  ir::Cdfg k("bits");
  const ir::OpId x = k.input("x");
  const ir::OpId mask = k.constant(0xFF);
  const ir::OpId low = k.band(x, mask);   // high 56 bits proven zero
  const ir::OpId sh = k.shl(low, k.constant(4));
  k.output("y", sh);
  const AbsintResult r = absint_cdfg(k);
  EXPECT_EQ(r.value(low).bits.zeros & ~std::uint64_t{0xFF},
            ~std::uint64_t{0xFF});
  // Masked to 8 bits, the interval refines to [0,255].
  EXPECT_EQ(r.value(low).range, (Interval{0, 255}));
  // Shifted left by 4: low 4 bits proven zero, range [0, 255<<4].
  EXPECT_EQ(r.value(sh).bits.zeros & 0xF, 0xFu);
  EXPECT_EQ(r.value(sh).range, (Interval{0, 255 << 4}));
}

TEST(Absint, DivAndSelectPrecision) {
  ir::Cdfg k("divsel");
  const ir::OpId x = k.input("x", {0, 100});
  const ir::OpId d = k.input("d", {2, 4});
  const ir::OpId q = k.binary(ir::OpKind::kDiv, x, d);
  const ir::OpId c = k.binary(ir::OpKind::kCmpLt, x, k.constant(200));  // provably true
  const ir::OpId s = k.select(c, q, k.constant(-1));
  k.output("y", s);
  const AbsintResult r = absint_cdfg(k);
  EXPECT_EQ(r.value(q).range, (Interval{0, 50}));
  EXPECT_EQ(r.value(c).range, Interval::constant(1));
  // Condition pinned true: the select is exactly the true arm.
  EXPECT_EQ(r.value(s).range, (Interval{0, 50}));
}

// A quick inline membership check over a real kernel: every concrete
// value must sit inside its op's abstract value (the tier-2 fuzzer does
// this at scale over random graphs).
TEST(Absint, ConcreteValuesStayInsideAbstractValues) {
  const ir::Cdfg base = apps::sobel3_kernel();
  const ir::Cdfg k = ir::with_input_ranges(base, {-128, 127});
  const AbsintResult r = absint_cdfg(k);
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::int64_t> value(k.num_ops(), 0);
    for (const ir::OpId id : k.op_ids()) {
      const ir::Op& op = k.op(id);
      std::vector<std::int64_t> args;
      for (const ir::OpId operand : op.operands) {
        args.push_back(value[operand.index()]);
      }
      switch (op.kind) {
        case ir::OpKind::kInput:
          value[id.index()] = rng.uniform_int(-128, 127);
          break;
        case ir::OpKind::kConst:
          value[id.index()] = op.value;
          break;
        case ir::OpKind::kOutput:
          value[id.index()] = args[0];
          break;
        default:
          value[id.index()] = ir::apply_op(op.kind, args);
          break;
      }
      EXPECT_TRUE(r.value(id).contains(value[id.index()]))
          << "op " << id.index() << " value " << value[id.index()]
          << " escapes [" << r.value(id).range.lo << ","
          << r.value(id).range.hi << "]";
      // The width contract: the value fits in the proven width.
      const std::size_t w = r.width_of(id);
      if (w < 64) {
        const std::int64_t wlo = -(std::int64_t{1} << (w - 1));
        const std::int64_t whi = (std::int64_t{1} << (w - 1)) - 1;
        EXPECT_GE(value[id.index()], wlo);
        EXPECT_LE(value[id.index()], whi);
      }
    }
  }
}

// ------------------------------------------------------------ lints

TEST(AbsintLint, RangedAnalyzeMatchesClassicWhenDisabled) {
  const ir::Cdfg k = apps::fir_kernel(8);
  const Diagnostics classic = analyze_cdfg(k);
  const Diagnostics ranged_off = analyze_cdfg(k, /*with_ranges=*/false);
  EXPECT_EQ(classic.str(), ranged_off.str());
}

TEST(AbsintLint, StockKernelsStayErrorAndWarnFreeWithRanges) {
  // Range lints on unannotated stock kernels may add CDFG202 notes but
  // never errors or warnings — the flow's strict gate must stay green.
  for (const ir::Cdfg& k :
       {apps::fir_kernel(8), apps::dct8_kernel(), apps::sobel3_kernel(),
        apps::median5_kernel(), apps::checksum_kernel(4)}) {
    const Diagnostics d = analyze_cdfg(k, /*with_ranges=*/true);
    EXPECT_FALSE(d.has_errors()) << k.name() << "\n" << d.str();
    EXPECT_EQ(d.warn_count(), 0u) << k.name() << "\n" << d.str();
  }
}

TEST(AbsintLint, ProvenDivideByZeroIsCdfg200) {
  ir::Cdfg k("dz");
  const ir::OpId x = k.input("x");
  const ir::OpId d = k.input("d", {0, 0});
  k.output("y", k.binary(ir::OpKind::kDiv, x, d));
  const Diagnostics diags = lint_ranges(k);
  ASSERT_EQ(diags.error_count(), 1u) << diags.str();
  EXPECT_EQ(diags.items().front().code, "CDFG200");
}

TEST(AbsintLint, ProvenShiftOutOfRangeIsCdfg201) {
  ir::Cdfg k("so");
  const ir::OpId x = k.input("x");
  const ir::OpId amt = k.binary(ir::OpKind::kMax, x, k.constant(64));
  k.output("y", k.shr(x, amt));
  const Diagnostics diags = lint_ranges(k);
  ASSERT_EQ(diags.error_count(), 1u) << diags.str();
  EXPECT_EQ(diags.items().front().code, "CDFG201");
}

TEST(AbsintLint, ConstantOutputIsCdfg203AndDeadArmIsCdfg204) {
  ir::Cdfg k("cw");
  const ir::OpId x = k.input("x", {3, 3});
  const ir::OpId y = k.input("y", {0, 10});
  const ir::OpId c = k.binary(ir::OpKind::kCmpLt, y, k.constant(100));  // provably true
  const ir::OpId s = k.select(c, y, x);
  k.output("doubled", k.mul(x, k.constant(2)));  // provably 6
  k.output("sel", s);
  const Diagnostics diags = lint_ranges(k);
  bool saw203 = false, saw204 = false;
  for (const auto& d : diags.items()) {
    saw203 = saw203 || d.code == "CDFG203";
    saw204 = saw204 || d.code == "CDFG204";
    EXPECT_EQ(severity_name(d.severity), std::string("warn")) << d.code;
  }
  EXPECT_TRUE(saw203) << diags.str();
  EXPECT_TRUE(saw204) << diags.str();
}

// ------------------------------------------------------ serialization

TEST(AbsintSerialize, RangesRoundTripThroughText) {
  const ir::Cdfg k =
      ir::with_input_ranges(apps::fir_kernel(4), {-128, 127});
  const std::string text = ir::to_text(k);
  EXPECT_NE(text.find("range x0 -128 127"), std::string::npos) << text;
  const ir::Cdfg back = ir::cdfg_from_text(text);
  EXPECT_EQ(ir::content_hash(back), ir::content_hash(k));
  for (const ir::OpId id : back.inputs()) {
    ASSERT_TRUE(back.op(id).range.has_value());
    EXPECT_EQ(*back.op(id).range, (ir::ValueRange{-128, 127}));
  }
}

TEST(AbsintSerialize, FullRangeAnnotationIsTheUnannotatedKernel) {
  const ir::Cdfg plain = apps::fir_kernel(4);
  const ir::Cdfg full =
      ir::with_input_ranges(plain, {kMin, kMax});
  // A full-range annotation promises nothing: same content hash, same
  // serialized text as the historical unannotated form.
  EXPECT_EQ(ir::content_hash(full), ir::content_hash(plain));
  EXPECT_EQ(ir::to_text(full), ir::to_text(plain));
  // A real annotation changes the hash (the promise is load-bearing).
  const ir::Cdfg narrow = ir::with_input_ranges(plain, {-128, 127});
  EXPECT_NE(ir::content_hash(narrow), ir::content_hash(plain));
}

TEST(AbsintSerialize, InvertedRangeIsCdfg011) {
  const std::string text =
      "cdfg bad\n"
      "op input x\n"
      "op output y 0\n"
      "range x 5 -5\n"
      "end\n";
  const ir::Cdfg k = ir::cdfg_from_text(text);
  const Diagnostics diags = verify_cdfg(k);
  ASSERT_TRUE(diags.has_errors()) << diags.str();
  EXPECT_EQ(diags.items().front().code, "CDFG011");
}

// -------------------------------------------------- range-aware optimize

TEST(AbsintOptimize, FactsFoldProvablyDeadSelectArms) {
  ir::Cdfg k("selfold");
  const ir::OpId a = k.input("a", {0, 10});
  const ir::OpId b = k.input("b");
  const ir::OpId c = k.binary(ir::OpKind::kCmpLt, a, k.constant(100));  // provably 1
  k.output("y", k.select(c, a, b));
  const auto facts = absint_cdfg(k).interval_facts();
  ir::OptimizeStats stats;
  const ir::Cdfg opt = ir::optimize(k, facts, &stats);
  EXPECT_GE(stats.range_rewrites, 1u);
  EXPECT_LT(opt.num_ops(), k.num_ops());
  // Equivalence on in-range inputs.
  Rng rng(7);
  for (int t = 0; t < 32; ++t) {
    const std::map<std::string, std::int64_t> in = {
        {"a", rng.uniform_int(0, 10)},
        {"b", rng.uniform_int(-1000, 1000)}};
    EXPECT_EQ(k.evaluate(in).at("y"), opt.evaluate(in).at("y"));
  }
}

TEST(AbsintOptimize, NonNegativeDivByPow2BecomesShift) {
  ir::Cdfg k("divshift");
  const ir::OpId x = k.input("x", {0, 1000});
  k.output("y", k.binary(ir::OpKind::kDiv, x, k.constant(4)));
  const auto facts = absint_cdfg(k).interval_facts();
  ir::OptimizeStats stats;
  const ir::Cdfg opt = ir::optimize(k, facts, &stats);
  EXPECT_GE(stats.range_rewrites, 1u);
  bool has_div = false, has_shr = false;
  for (const ir::OpId id : opt.op_ids()) {
    has_div = has_div || opt.op(id).kind == ir::OpKind::kDiv;
    has_shr = has_shr || opt.op(id).kind == ir::OpKind::kShr;
  }
  EXPECT_FALSE(has_div);
  EXPECT_TRUE(has_shr);
  Rng rng(11);
  for (int t = 0; t < 32; ++t) {
    const std::map<std::string, std::int64_t> in = {
        {"x", rng.uniform_int(0, 1000)}};
    EXPECT_EQ(k.evaluate(in).at("y"), opt.evaluate(in).at("y"));
  }
  // Without the range fact the rewrite is unsound for negative x (trunc
  // vs floor) and must not fire.
  ir::OptimizeStats nofacts;
  ir::optimize(ir::Cdfg(k), {}, &nofacts);
  EXPECT_EQ(nofacts.range_rewrites, 0u);
}

TEST(AbsintOptimize, StatsSurfaceInTheCoreReport) {
  core::Report report;
  report.title = "t";
  report.optimize_stats.ops_before = 10;
  report.optimize_stats.ops_after = 7;
  report.optimize_stats.range_rewrites = 2;
  const std::string s = report.str();
  EXPECT_NE(s.find("optimize: 10 -> 7 ops"), std::string::npos) << s;
  EXPECT_NE(s.find("2 range rewrites"), std::string::npos) << s;
}

// -------------------------------------------------------- HLS narrowing

hw::HlsResult synth_wide(const ir::Cdfg& k, const hw::ComponentLibrary& lib) {
  hw::HlsConstraints c;
  c.goal = hw::HlsGoal::kMinArea;
  return hw::synthesize(k, lib, c);
}

hw::HlsResult synth_narrow(const ir::Cdfg& annotated,
                           const hw::ComponentLibrary& lib) {
  hw::HlsConstraints c;
  c.goal = hw::HlsGoal::kMinArea;
  c.op_width = absint_cdfg(annotated).width;
  return hw::synthesize(annotated, lib, c);
}

TEST(AbsintNarrow, NarrowingShrinksAreaOnExampleKernels) {
  const hw::ComponentLibrary lib = hw::default_library();
  const std::vector<ir::Cdfg> kernels = {
      apps::sobel3_kernel(), apps::fir_kernel(8), apps::dct8_kernel()};
  for (const ir::Cdfg& base : kernels) {
    const ir::Cdfg annotated = ir::with_input_ranges(base, {-128, 127});
    const hw::HlsResult wide = synth_wide(base, lib);
    const hw::HlsResult narrow = synth_narrow(annotated, lib);
    EXPECT_LT(narrow.area.total(), wide.area.total()) << base.name();
    // Same schedule length — narrowing touches widths, not timing.
    EXPECT_EQ(narrow.latency, wide.latency) << base.name();
    // The narrowed binding carries per-instance widths, all proven < 64
    // somewhere (the whole point for 8-bit inputs).
    ASSERT_FALSE(narrow.binding.register_width.empty()) << base.name();
    bool any_narrow = false;
    for (const std::size_t w : narrow.binding.register_width) {
      EXPECT_GE(w, 1u);
      EXPECT_LE(w, 64u);
      any_narrow = any_narrow || w < 64;
    }
    EXPECT_TRUE(any_narrow) << base.name();
  }
}

TEST(AbsintNarrow, NarrowedDatapathIsBitIdenticalOnInRangeInputs) {
  const hw::ComponentLibrary lib = hw::default_library();
  for (const ir::Cdfg& base :
       {apps::sobel3_kernel(), apps::fir_kernel(8), apps::dct8_kernel()}) {
    const ir::Cdfg annotated = ir::with_input_ranges(base, {-128, 127});
    const hw::HlsResult wide = synth_wide(base, lib);
    const hw::HlsResult narrow = synth_narrow(annotated, lib);
    Rng rng(99);
    for (int t = 0; t < 16; ++t) {
      std::map<std::string, std::int64_t> in;
      for (const ir::OpId id : base.inputs()) {
        in[base.op(id).name] = rng.uniform_int(-128, 127);
      }
      EXPECT_EQ(hw::simulate_datapath(narrow, in),
                hw::simulate_datapath(wide, in))
          << base.name();
    }
  }
}

TEST(AbsintNarrow, CosimChecksumsMatchAtEveryInterfaceLevel) {
  const hw::ComponentLibrary lib = hw::default_library();
  const ir::Cdfg base = apps::sobel3_kernel();
  const ir::Cdfg annotated = ir::with_input_ranges(base, {-128, 127});
  const hw::HlsResult wide = synth_wide(base, lib);
  const hw::HlsResult narrow = synth_narrow(annotated, lib);
  Rng rng(5);
  std::vector<std::vector<std::int64_t>> samples;
  for (int s = 0; s < 4; ++s) {
    std::vector<std::int64_t> in;
    for (std::size_t k = 0; k < base.inputs().size(); ++k) {
      in.push_back(rng.uniform_int(-128, 127));
    }
    samples.push_back(std::move(in));
  }
  for (const sim::InterfaceLevel level : sim::kAllInterfaceLevels) {
    sim::CosimConfig cfg;
    cfg.level = level;
    sim::SimRequest wreq;
    wreq.impl = &wide;
    wreq.samples = &samples;
    wreq.cosim = cfg;
    sim::SimRequest nreq = wreq;
    nreq.impl = &narrow;
    const sim::CosimReport wrep = std::move(sim::run(wreq).cosim).value();
    const sim::CosimReport nrep = std::move(sim::run(nreq).cosim).value();
    EXPECT_EQ(wrep.checksum, nrep.checksum)
        << sim::interface_level_name(level);
  }
}

TEST(AbsintNarrow, FlowWithNarrowingRunsAndReportsStats) {
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  const core::FlowConfig cfg = core::FlowConfig::defaults().with_narrowing();
  const core::FlowReport report =
      core::run_codesign_flow(w.graph, w.kernels, cfg);
  ASSERT_TRUE(report.cosim.has_value());
  // The flow optimized kernels, so the report records what happened.
  EXPECT_GT(report.report.optimize_stats.ops_before, 0u);
  // Same functional results as the unnarrowed flow (bit-identical cosim).
  const core::FlowReport plain =
      core::run_codesign_flow(w.graph, w.kernels, core::FlowConfig::defaults());
  ASSERT_TRUE(plain.cosim.has_value());
  EXPECT_EQ(report.cosim->checksum, plain.cosim->checksum);
}

}  // namespace
}  // namespace mhs::analysis
