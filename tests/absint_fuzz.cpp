// Tier-2 soundness fuzzer for mhs::analysis::absint (built with the
// tree's sanitizer presets in the sanitize gate; see
// cmake/run_sanitized.cmake).
//
// The contract under attack: for every randomly generated CDFG and every
// random input assignment inside the declared input ranges on which the
// kernel does not trap, the concrete value ir::apply_op computes for an
// op must lie inside the interval AND match the known-bits masks
// absint_cdfg derived for that op — and fit in the proven bitwidth.
//
// Kernels are seeded deterministically (kernel i uses seed kSeedBase+i),
// so any escape reproduces from the printed seed alone. On an escape the
// harness shrinks to the smallest offending op chain (the transitive
// operand cone of the first escaping op), re-checks the cone on the same
// inputs, and prints it in serialized form.
//
// Iteration counts honor MHS_FUZZ_ITERS; the default is 10000 kernels
// (ISSUE acceptance floor), each evaluated on several input samples.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "analysis/absint.h"
#include "analysis/verify.h"
#include "base/rng.h"
#include "ir/cdfg.h"
#include "ir/serialize.h"

namespace mhs::analysis {
namespace {

constexpr std::int64_t kI64Min = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();
constexpr std::uint64_t kSeedBase = 0xab51'f022ull;

/// A full 64-bit draw composed from two half-width uniform_int calls
/// (Rng::uniform_int over the whole i64 span would compute hi - lo in
/// signed arithmetic — UB the sanitize gate's UBSan build rejects).
std::uint64_t raw_u64(Rng& rng) {
  constexpr std::int64_t kHalf = (std::int64_t{1} << 32) - 1;
  const auto low = static_cast<std::uint64_t>(rng.uniform_int(0, kHalf));
  const auto high = static_cast<std::uint64_t>(rng.uniform_int(0, kHalf));
  return (high << 32) | low;
}

/// Uniform-ish draw in [lo, hi] inclusive, safe for arbitrary i64 spans.
/// (Modulo bias is irrelevant at fuzzing scale.)
std::int64_t draw_in_range(Rng& rng, std::int64_t lo, std::int64_t hi) {
  const std::uint64_t width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  if (width == ~std::uint64_t{0}) {
    return static_cast<std::int64_t>(raw_u64(rng));
  }
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   raw_u64(rng) % (width + 1));
}

std::size_t fuzz_iters() {
  const char* env = std::getenv("MHS_FUZZ_ITERS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return 10000;
}

/// A random input range biased toward the shapes that stress the
/// domains: unannotated (full), small ranges near zero, single points,
/// sign-crossing spans, and the i64 corners.
ir::ValueRange random_range(Rng& rng) {
  switch (rng.uniform_int(0, 5)) {
    case 0:
      return {kI64Min, kI64Max};  // unannotated
    case 1: {                     // small, near zero
      const std::int64_t lo = rng.uniform_int(-300, 300);
      return {lo, lo + rng.uniform_int(0, 64)};
    }
    case 2: {  // single point (often a hazardous one)
      const std::int64_t v =
          rng.bernoulli(0.3) ? rng.uniform_int(-2, 2)
                             : rng.uniform_int(-100000, 100000);
      return {v, v};
    }
    case 3: {  // top corner
      const std::int64_t lo = kI64Max - rng.uniform_int(0, 1000);
      return {lo, kI64Max};
    }
    case 4: {  // bottom corner
      const std::int64_t hi = kI64Min + rng.uniform_int(0, 1000);
      return {kI64Min, hi};
    }
    default: {  // wide, sign-crossing
      const std::int64_t lo = rng.uniform_int(-1'000'000'000, 0);
      return {lo, rng.uniform_int(0, 1'000'000'000)};
    }
  }
}

std::int64_t random_constant(Rng& rng) {
  switch (rng.uniform_int(0, 4)) {
    case 0:  return rng.uniform_int(-4, 4);           // small (0, ±1, ±2...)
    case 1:  return std::int64_t{1} << rng.uniform_int(0, 62);  // pow2
    case 2:  return rng.uniform_int(0, 70);           // shift-amount-ish
    case 3:  return rng.bernoulli(0.5) ? kI64Min : kI64Max;     // corners
    default: return rng.uniform_int(-100000, 100000);
  }
}

/// One random kernel: a few ranged inputs and constants, then a chain of
/// random compute ops over random existing operands, then one output.
ir::Cdfg random_kernel(std::uint64_t seed) {
  Rng rng(seed);
  ir::Cdfg k("fuzz" + std::to_string(seed));
  std::vector<ir::OpId> pool;
  const std::int64_t num_inputs = rng.uniform_int(1, 4);
  for (std::int64_t i = 0; i < num_inputs; ++i) {
    const ir::ValueRange r = random_range(rng);
    pool.push_back(k.input("x" + std::to_string(i), r));
  }
  const std::int64_t num_consts = rng.uniform_int(0, 3);
  for (std::int64_t i = 0; i < num_consts; ++i) {
    pool.push_back(k.constant(random_constant(rng)));
  }
  static const std::vector<ir::OpKind> kComputeKinds = {
      ir::OpKind::kAdd, ir::OpKind::kSub,   ir::OpKind::kMul,
      ir::OpKind::kDiv, ir::OpKind::kShl,   ir::OpKind::kShr,
      ir::OpKind::kAnd, ir::OpKind::kOr,    ir::OpKind::kXor,
      ir::OpKind::kNeg, ir::OpKind::kAbs,   ir::OpKind::kMin,
      ir::OpKind::kMax, ir::OpKind::kCmpLt, ir::OpKind::kCmpEq,
      ir::OpKind::kSelect};
  const std::int64_t num_ops = rng.uniform_int(1, 12);
  for (std::int64_t i = 0; i < num_ops; ++i) {
    const ir::OpKind kind = rng.pick(kComputeKinds);
    const auto operand = [&] { return rng.pick(pool); };
    switch (ir::op_arity(kind)) {
      case 1:
        pool.push_back(k.unary(kind, operand()));
        break;
      case 2:
        pool.push_back(k.binary(kind, operand(), operand()));
        break;
      default:
        pool.push_back(k.select(operand(), operand(), operand()));
        break;
    }
  }
  k.output("y", pool.back());
  return k;
}

/// Concrete reference evaluation mirroring ir::apply_op's trap rules.
/// Returns false (trap: the sample is outside the soundness contract)
/// instead of letting apply_op MHS_CHECK-abort.
bool eval_concrete(const ir::Cdfg& k,
                   const std::vector<std::int64_t>& input_values,
                   std::vector<std::int64_t>* value) {
  value->assign(k.num_ops(), 0);
  std::size_t next_input = 0;
  for (const ir::OpId id : k.op_ids()) {
    const ir::Op& op = k.op(id);
    std::vector<std::int64_t> args;
    for (const ir::OpId operand : op.operands) {
      args.push_back((*value)[operand.index()]);
    }
    switch (op.kind) {
      case ir::OpKind::kInput:
        (*value)[id.index()] = input_values[next_input++];
        break;
      case ir::OpKind::kConst:
        (*value)[id.index()] = op.value;
        break;
      case ir::OpKind::kOutput:
        (*value)[id.index()] = args[0];
        break;
      case ir::OpKind::kDiv:
        if (args[1] == 0) return false;  // trap
        (*value)[id.index()] = ir::apply_op(op.kind, args);
        break;
      case ir::OpKind::kShl:
      case ir::OpKind::kShr:
        if (args[1] < 0 || args[1] >= 64) return false;  // trap
        (*value)[id.index()] = ir::apply_op(op.kind, args);
        break;
      default:
        (*value)[id.index()] = ir::apply_op(op.kind, args);
        break;
    }
  }
  return true;
}

bool fits_width(std::int64_t v, std::size_t w) {
  if (w >= 64) return true;
  const std::int64_t lo = -(std::int64_t{1} << (w - 1));
  const std::int64_t hi = (std::int64_t{1} << (w - 1)) - 1;
  return lo <= v && v <= hi;
}

/// The transitive operand cone of `target`, rebuilt as a self-contained
/// kernel (the shrunk reproducer). Input ops keep their declared ranges.
ir::Cdfg extract_cone(const ir::Cdfg& k, ir::OpId target) {
  std::vector<bool> in_cone(k.num_ops(), false);
  in_cone[target.index()] = true;
  // Ids are topological, so one reverse sweep closes the cone.
  const std::vector<ir::OpId> ids = k.op_ids();
  for (std::size_t i = ids.size(); i-- > 0;) {
    if (!in_cone[ids[i].index()]) continue;
    for (const ir::OpId operand : k.op(ids[i]).operands) {
      in_cone[operand.index()] = true;
    }
  }
  ir::Cdfg cone(k.name() + "_cone");
  std::vector<ir::OpId> remap(k.num_ops());
  for (const ir::OpId id : ids) {
    if (!in_cone[id.index()]) continue;
    const ir::Op& op = k.op(id);
    std::vector<ir::OpId> operands;
    for (const ir::OpId operand : op.operands) {
      operands.push_back(remap[operand.index()]);
    }
    switch (op.kind) {
      case ir::OpKind::kInput:
        remap[id.index()] = op.range ? cone.input(op.name, *op.range)
                                     : cone.input(op.name);
        break;
      case ir::OpKind::kConst:
        remap[id.index()] = cone.constant(op.value);
        break;
      case ir::OpKind::kOutput:
        remap[id.index()] = cone.output(op.name, operands[0]);
        break;
      case ir::OpKind::kSelect:
        remap[id.index()] =
            cone.select(operands[0], operands[1], operands[2]);
        break;
      default:
        remap[id.index()] =
            ir::op_arity(op.kind) == 1
                ? cone.unary(op.kind, operands[0])
                : cone.binary(op.kind, operands[0], operands[1]);
        break;
    }
  }
  if (cone.outputs().empty()) {
    cone.output("y", remap[target.index()]);
  }
  return cone;
}

/// Checks one kernel/sample pair; on the first escaping op, shrinks to
/// its cone and reports both forms. Returns false on escape.
bool check_sample(const ir::Cdfg& k, const AbsintResult& result,
                  const std::vector<std::int64_t>& input_values,
                  std::uint64_t seed) {
  std::vector<std::int64_t> value;
  if (!eval_concrete(k, input_values, &value)) return true;  // trapped
  for (const ir::OpId id : k.op_ids()) {
    const std::int64_t v = value[id.index()];
    const AbsValue& abs = result.value(id);
    const bool in_interval = abs.range.contains(v);
    const bool in_bits = abs.bits.contains(v);
    const bool in_width = fits_width(v, result.width_of(id));
    if (in_interval && in_bits && in_width) continue;
    // Escape: shrink to the offending op chain and report.
    const ir::Cdfg cone = extract_cone(k, id);
    std::string inputs_text;
    for (std::size_t i = 0; i < input_values.size(); ++i) {
      inputs_text += (i == 0 ? "" : ", ") + std::to_string(input_values[i]);
    }
    ADD_FAILURE() << "soundness escape (seed " << seed << "): op "
                  << id.index() << " ("
                  << ir::op_name(k.op(id).kind) << ") concrete value "
                  << v << "\n  interval [" << abs.range.lo << ","
                  << abs.range.hi << "] contains=" << in_interval
                  << "\n  known zeros=" << std::hex << abs.bits.zeros
                  << " ones=" << abs.bits.ones << std::dec
                  << " contains=" << in_bits
                  << "\n  width=" << result.width_of(id)
                  << " fits=" << in_width
                  << "\n  full inputs (x0..): " << inputs_text
                  << "\nshrunk reproducer (op chain of the escape):\n"
                  << ir::to_text(cone);
    return false;
  }
  return true;
}

TEST(AbsintFuzz, NoIntervalOrKnownBitsEscapes) {
  const std::size_t kernels = fuzz_iters();
  constexpr std::size_t kSamplesPerKernel = 6;
  std::size_t checked_samples = 0;
  std::size_t trapped_samples = 0;
  std::size_t analyzed = 0;
  // Seeds advance until `kernels` verify-clean kernels have been
  // analyzed: a random kernel may trip the structural verifier (e.g. a
  // constant shift amount outside [0,63] is CDFG008), and absint's
  // precondition excludes those. The 8x attempt cap only guards against
  // a generator regression starving the loop.
  for (std::uint64_t i = 0; analyzed < kernels; ++i) {
    ASSERT_LT(i, kernels * 8) << "generator yields too few valid kernels";
    const std::uint64_t seed = kSeedBase + i;
    const ir::Cdfg k = random_kernel(seed);
    if (verify_cdfg(k).has_errors()) continue;
    ++analyzed;
    const AbsintResult result = absint_cdfg(k);
    ASSERT_EQ(result.values.size(), k.num_ops());
    ASSERT_EQ(result.width.size(), k.num_ops());
    Rng rng(seed ^ 0x5eed5a3e11ull);
    const std::vector<ir::OpId> inputs = k.inputs();
    for (std::size_t s = 0; s < kSamplesPerKernel; ++s) {
      std::vector<std::int64_t> input_values;
      for (const ir::OpId id : inputs) {
        const ir::ValueRange r =
            k.op(id).range.value_or(ir::ValueRange{kI64Min, kI64Max});
        // Mix corner draws with uniform draws inside the declared range.
        std::int64_t v;
        switch (rng.uniform_int(0, 3)) {
          case 0:  v = r.lo; break;
          case 1:  v = r.hi; break;
          default: v = draw_in_range(rng, r.lo, r.hi); break;
        }
        input_values.push_back(v);
      }
      std::vector<std::int64_t> value;
      if (!eval_concrete(k, input_values, &value)) {
        ++trapped_samples;
        continue;
      }
      ++checked_samples;
      if (!check_sample(k, result, input_values, seed)) {
        return;  // first escape fully reported; stop the campaign
      }
    }
  }
  // The campaign must have exercised the contract at scale: most random
  // samples do not trap.
  EXPECT_GT(checked_samples, kernels);
  EXPECT_EQ(analyzed, kernels);
  RecordProperty("kernels", static_cast<int>(kernels));
  RecordProperty("checked_samples", static_cast<int>(checked_samples));
  RecordProperty("trapped_samples", static_cast<int>(trapped_samples));
}

// Determinism of the harness itself: the same seed regenerates the same
// kernel (a prerequisite for the printed-seed reproducer contract).
TEST(AbsintFuzz, KernelGenerationIsDeterministic) {
  for (std::uint64_t seed : {kSeedBase, kSeedBase + 123, kSeedBase + 9999}) {
    EXPECT_EQ(ir::to_text(random_kernel(seed)),
              ir::to_text(random_kernel(seed)));
    EXPECT_EQ(ir::content_hash(random_kernel(seed)),
              ir::content_hash(random_kernel(seed)));
  }
}

}  // namespace
}  // namespace mhs::analysis
