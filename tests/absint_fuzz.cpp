// Tier-2 soundness fuzzer for mhs::analysis::absint (built with the
// tree's sanitizer presets in the sanitize gate; see
// cmake/run_sanitized.cmake).
//
// The contract under attack: for every randomly generated CDFG and every
// random input assignment inside the declared input ranges on which the
// kernel does not trap, the concrete value ir::apply_op computes for an
// op must lie inside the interval AND match the known-bits masks
// absint_cdfg derived for that op — and fit in the proven bitwidth.
//
// Kernels are seeded deterministically (kernel i uses seed base+i, base
// overridable via MHS_ABSINT_SEED; see tests/fuzz_env.h), so any escape
// reproduces from the printed seed alone. On an escape the harness
// shrinks to the smallest offending op chain (the transitive operand
// cone of the first escaping op, via ir::extract_cone), re-checks the
// cone on the same inputs, and prints it in serialized form.
//
// Iteration counts honor MHS_FUZZ_ITERS; the default is 10000 kernels
// (ISSUE acceptance floor), each evaluated on several input samples.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "analysis/absint.h"
#include "analysis/verify.h"
#include "base/rng.h"
#include "fuzz_env.h"
#include "fuzz_kernels.h"
#include "ir/cdfg.h"
#include "ir/serialize.h"

namespace mhs::analysis {
namespace {

using fuzz::draw_in_range;
using fuzz::random_kernel;

constexpr std::int64_t kI64Min = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();
constexpr std::uint64_t kSeedBase = 0xab51'f022ull;

/// Concrete reference evaluation mirroring ir::apply_op's trap rules.
/// Returns false (trap: the sample is outside the soundness contract)
/// instead of letting apply_op MHS_CHECK-abort.
bool eval_concrete(const ir::Cdfg& k,
                   const std::vector<std::int64_t>& input_values,
                   std::vector<std::int64_t>* value) {
  value->assign(k.num_ops(), 0);
  std::size_t next_input = 0;
  for (const ir::OpId id : k.op_ids()) {
    const ir::Op& op = k.op(id);
    std::vector<std::int64_t> args;
    for (const ir::OpId operand : op.operands) {
      args.push_back((*value)[operand.index()]);
    }
    switch (op.kind) {
      case ir::OpKind::kInput:
        (*value)[id.index()] = input_values[next_input++];
        break;
      case ir::OpKind::kConst:
        (*value)[id.index()] = op.value;
        break;
      case ir::OpKind::kOutput:
        (*value)[id.index()] = args[0];
        break;
      case ir::OpKind::kDiv:
        if (args[1] == 0) return false;  // trap
        (*value)[id.index()] = ir::apply_op(op.kind, args);
        break;
      case ir::OpKind::kShl:
      case ir::OpKind::kShr:
        if (args[1] < 0 || args[1] >= 64) return false;  // trap
        (*value)[id.index()] = ir::apply_op(op.kind, args);
        break;
      default:
        (*value)[id.index()] = ir::apply_op(op.kind, args);
        break;
    }
  }
  return true;
}

bool fits_width(std::int64_t v, std::size_t w) {
  if (w >= 64) return true;
  const std::int64_t lo = -(std::int64_t{1} << (w - 1));
  const std::int64_t hi = (std::int64_t{1} << (w - 1)) - 1;
  return lo <= v && v <= hi;
}

/// Checks one kernel/sample pair; on the first escaping op, shrinks to
/// its cone and reports both forms. Returns false on escape.
bool check_sample(const ir::Cdfg& k, const AbsintResult& result,
                  const std::vector<std::int64_t>& input_values,
                  std::uint64_t seed) {
  std::vector<std::int64_t> value;
  if (!eval_concrete(k, input_values, &value)) return true;  // trapped
  for (const ir::OpId id : k.op_ids()) {
    const std::int64_t v = value[id.index()];
    const AbsValue& abs = result.value(id);
    const bool in_interval = abs.range.contains(v);
    const bool in_bits = abs.bits.contains(v);
    const bool in_width = fits_width(v, result.width_of(id));
    if (in_interval && in_bits && in_width) continue;
    // Escape: shrink to the offending op chain and report.
    const ir::Cdfg cone = ir::extract_cone(k, id);
    std::string inputs_text;
    for (std::size_t i = 0; i < input_values.size(); ++i) {
      inputs_text += (i == 0 ? "" : ", ") + std::to_string(input_values[i]);
    }
    ADD_FAILURE() << "soundness escape (seed " << seed << "): op "
                  << id.index() << " ("
                  << ir::op_name(k.op(id).kind) << ") concrete value "
                  << v << "\n  interval [" << abs.range.lo << ","
                  << abs.range.hi << "] contains=" << in_interval
                  << "\n  known zeros=" << std::hex << abs.bits.zeros
                  << " ones=" << abs.bits.ones << std::dec
                  << " contains=" << in_bits
                  << "\n  width=" << result.width_of(id)
                  << " fits=" << in_width
                  << "\n  full inputs (x0..): " << inputs_text
                  << "\nshrunk reproducer (op chain of the escape):\n"
                  << ir::to_text(cone);
    return false;
  }
  return true;
}

TEST(AbsintFuzz, NoIntervalOrKnownBitsEscapes) {
  const std::size_t kernels = fuzz::fuzz_iters(10000);
  const std::uint64_t base = fuzz::fuzz_seed_base("MHS_ABSINT_SEED", kSeedBase);
  constexpr std::size_t kSamplesPerKernel = 6;
  std::size_t checked_samples = 0;
  std::size_t trapped_samples = 0;
  std::size_t analyzed = 0;
  // Seeds advance until `kernels` verify-clean kernels have been
  // analyzed: a random kernel may trip the structural verifier (e.g. a
  // constant shift amount outside [0,63] is CDFG008), and absint's
  // precondition excludes those. The 8x attempt cap only guards against
  // a generator regression starving the loop.
  for (std::uint64_t i = 0; analyzed < kernels; ++i) {
    ASSERT_LT(i, kernels * 8) << "generator yields too few valid kernels";
    const std::uint64_t seed = base + i;
    const ir::Cdfg k = random_kernel(seed);
    if (verify_cdfg(k).has_errors()) continue;
    ++analyzed;
    const AbsintResult result = absint_cdfg(k);
    ASSERT_EQ(result.values.size(), k.num_ops());
    ASSERT_EQ(result.width.size(), k.num_ops());
    Rng rng(seed ^ 0x5eed5a3e11ull);
    const std::vector<ir::OpId> inputs = k.inputs();
    for (std::size_t s = 0; s < kSamplesPerKernel; ++s) {
      std::vector<std::int64_t> input_values;
      for (const ir::OpId id : inputs) {
        const ir::ValueRange r =
            k.op(id).range.value_or(ir::ValueRange{kI64Min, kI64Max});
        // Mix corner draws with uniform draws inside the declared range.
        std::int64_t v;
        switch (rng.uniform_int(0, 3)) {
          case 0:  v = r.lo; break;
          case 1:  v = r.hi; break;
          default: v = draw_in_range(rng, r.lo, r.hi); break;
        }
        input_values.push_back(v);
      }
      std::vector<std::int64_t> value;
      if (!eval_concrete(k, input_values, &value)) {
        ++trapped_samples;
        continue;
      }
      ++checked_samples;
      if (!check_sample(k, result, input_values, seed)) {
        return;  // first escape fully reported; stop the campaign
      }
    }
  }
  // The campaign must have exercised the contract at scale: most random
  // samples do not trap.
  EXPECT_GT(checked_samples, kernels);
  EXPECT_EQ(analyzed, kernels);
  RecordProperty("kernels", static_cast<int>(kernels));
  RecordProperty("checked_samples", static_cast<int>(checked_samples));
  RecordProperty("trapped_samples", static_cast<int>(trapped_samples));
}

// Determinism of the harness itself: the same seed regenerates the same
// kernel (a prerequisite for the printed-seed reproducer contract).
TEST(AbsintFuzz, KernelGenerationIsDeterministic) {
  for (std::uint64_t seed : {kSeedBase, kSeedBase + 123, kSeedBase + 9999}) {
    EXPECT_EQ(ir::to_text(random_kernel(seed)),
              ir::to_text(random_kernel(seed)));
    EXPECT_EQ(ir::content_hash(random_kernel(seed)),
              ir::content_hash(random_kernel(seed)));
  }
}

}  // namespace
}  // namespace mhs::analysis
