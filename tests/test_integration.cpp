// Cross-module integration tests: one specification flowing through the
// compiler, the synthesizer, the partitioners, and the co-simulators —
// the end-to-end stories behind the paper's figures.
#include <gtest/gtest.h>

#include "apps/kernels.h"
#include "apps/workloads.h"
#include "base/rng.h"
#include "base/stats.h"
#include "core/flow.h"
#include "cosynth/mtcoproc.h"
#include "cosynth/multiproc.h"
#include "cosynth/run.h"
#include "ir/task_graph_gen.h"
#include "opt/pareto.h"
#include "partition/algorithms.h"
#include "sim/cosim.h"
#include "sim/run.h"
#include "sw/iss.h"

namespace mhs {
namespace {

/// Drives the accelerator co-simulation through the sim::run seam.
sim::CosimReport accel_cosim(
    const hw::HlsResult& impl, const sim::CosimConfig& config,
    const std::vector<std::vector<std::int64_t>>& samples) {
  sim::SimRequest sreq;
  sreq.impl = &impl;
  sreq.samples = &samples;
  sreq.cosim = config;
  return sim::run(sreq).cosim.value();
}


// ---------------------------------------------------------------------
// The §3.2 story: one specification, three executable implementations
// (interpreter, compiled software on the ISS, synthesized datapath), all
// in exact agreement.
TEST(Integration, OneSpecThreeImplementationsAgree) {
  const ir::Cdfg kernels[] = {apps::fir_kernel(10), apps::dct8_kernel(),
                              apps::xtea_kernel(8),
                              apps::checksum_kernel(5)};
  Rng rng(2024);
  const hw::ComponentLibrary lib = hw::default_library();
  for (const ir::Cdfg& kernel : kernels) {
    std::map<std::string, std::int64_t> in;
    for (const ir::OpId id : kernel.inputs()) {
      in[kernel.op(id).name] = rng.uniform_int(0, 1 << 20);
    }
    const auto reference = kernel.evaluate(in);

    // Software: compile and execute on the ISS.
    sw::Iss iss;
    const sw::Program program = sw::compile(kernel);
    EXPECT_EQ(sw::run_program(iss, program, in), reference)
        << kernel.name() << " (sw)";

    // Hardware: synthesize and simulate the datapath.
    hw::HlsConstraints constraints;
    constraints.goal = hw::HlsGoal::kMinArea;
    const hw::HlsResult impl = hw::synthesize(kernel, lib, constraints);
    EXPECT_EQ(hw::simulate_datapath(impl, in), reference)
        << kernel.name() << " (hw)";
  }
}

// ---------------------------------------------------------------------
// Figure 4 story: the full embedded-microprocessor stack — interface
// synthesis chooses a driver, and the chosen driver actually runs on the
// ISS against the synthesized peripheral, at pin level.
TEST(Integration, EmbeddedStackRunsSynthesizedDriverAtPinLevel) {
  const ir::Cdfg kernel = apps::fir_kernel(8);
  const hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  const hw::HlsResult impl = hw::synthesize(kernel, lib, constraints);

  Rng rng(7);
  std::vector<std::vector<std::int64_t>> samples;
  for (int s = 0; s < 6; ++s) {
    std::vector<std::int64_t> in;
    for (std::size_t k = 0; k < kernel.inputs().size(); ++k) {
      in.push_back(rng.uniform_int(-500, 500));
    }
    samples.push_back(in);
  }

  cosynth::AddressMapAllocator alloc;
  cosynth::Request ireq;
  ireq.impl = &impl;
  ireq.samples = &samples;
  ireq.allocator = &alloc;
  const cosynth::InterfaceDesign iface =
      *cosynth::run(cosynth::Target::kInterface, ireq).iface;
  EXPECT_EQ(iface.candidates.size(), 2u);

  // Cross-check the selected configuration at the pin level too.
  sim::CosimConfig pin_cfg;
  pin_cfg.level = sim::InterfaceLevel::kPin;
  pin_cfg.use_irq = iface.candidates[iface.selected].use_irq;
  const sim::CosimReport pin = accel_cosim(impl, pin_cfg, samples);
  EXPECT_EQ(pin.checksum, iface.candidates[iface.selected].report.checksum);
  EXPECT_GT(pin.signal_transitions, 0u);
}

// ---------------------------------------------------------------------
// Figure 8 story: annotation from real kernels -> partitioning -> HLS
// validation -> co-simulation, via the core flow, for all strategies.
TEST(Integration, FlowStrategiesAllProduceValidDesigns) {
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  for (const cosynth::CoprocStrategy strategy :
       {cosynth::CoprocStrategy::kKl, cosynth::CoprocStrategy::kGclp,
        cosynth::CoprocStrategy::kAnnealed}) {
    core::FlowConfig cfg;
    cfg.strategy = strategy;
    cfg.objective.area_weight = 0.02;
    const core::FlowReport report =
        core::run_codesign_flow(w.graph, w.kernels, cfg);
    EXPECT_GE(report.design.speedup(), 1.0)
        << cosynth::coproc_strategy_name(strategy);
    // HLS validation ran if anything went to HW.
    if (report.design.partition.metrics.tasks_in_hw > 0 &&
        report.validated_hw_area > 0.0) {
      EXPECT_GT(report.area_estimate_ratio, 0.05);
      EXPECT_LT(report.area_estimate_ratio, 20.0);
    }
  }
}

// ---------------------------------------------------------------------
// Figure 5 story: the three multiprocessor synthesizers agree on
// feasibility and order correctly on cost for a deadline sweep.
TEST(Integration, MultiprocEnginesConsistentAcrossDeadlines) {
  Rng rng(31);
  ir::TaskGraphGenConfig gen;
  gen.num_tasks = 8;
  const ir::TaskGraph g = ir::generate_task_graph(gen, rng);
  const auto catalog = cosynth::default_pe_catalog();
  const double serial = g.total_sw_cycles();

  double prev_exact_cost = 0.0;
  for (const double factor : {2.0, 1.0, 0.6}) {
    const double deadline = serial * factor;
    const cosynth::MpDesign exact =
        cosynth::synthesize_exact(g, catalog, deadline);
    const cosynth::MpDesign packed =
        cosynth::synthesize_binpack(g, catalog, deadline);
    const cosynth::MpDesign sens =
        cosynth::synthesize_sensitivity(g, catalog, deadline);
    ASSERT_TRUE(exact.feasible) << "deadline factor " << factor;
    // Tightening the deadline can only raise the optimal cost.
    EXPECT_GE(exact.cost, prev_exact_cost - 1e-9);
    prev_exact_cost = exact.cost;
    // Exact is the optimum: the heuristics never beat it.
    if (packed.feasible) {
      EXPECT_GE(packed.cost, exact.cost - 1e-9);
    }
    if (sens.feasible) {
      EXPECT_GE(sens.cost, exact.cost - 1e-9);
    }
  }
}

// ---------------------------------------------------------------------
// Figure 9 story: process-network partitioning evaluated by message-level
// co-simulation; the co-simulator's makespans drive the optimizer.
TEST(Integration, MtCoprocPartitionImprovesOverAllSoftware) {
  const ir::ProcessNetwork net = apps::worker_farm_network(3, 5000, 64);
  sim::OsCosimConfig eval;
  eval.iterations = 32;
  const std::vector<bool> all_sw(net.num_processes(), false);
  const sim::OsCosimResult sw_run =
      [&] {
        sim::SimRequest sreq;
        sreq.level = sim::Level::kProcess;
        sreq.network = &net;
        sreq.in_hw = &all_sw;
        sreq.os = eval;
        return sim::run(sreq).os.value();
      }();

  opt::AnnealConfig anneal_cfg;
  anneal_cfg.rounds = 20;
  anneal_cfg.moves_per_round = 12;
  const cosynth::MtCoprocDesign aware =
      cosynth::mt_partition_concurrency_aware(net, 5000.0, eval,
                                              anneal_cfg, 8);
  EXPECT_LT(aware.evaluation.makespan, sw_run.makespan);
}

// ---------------------------------------------------------------------
// Estimation coherence: the cost annotations the flow derives from
// kernels are consistent with what the ISS actually measures.
TEST(Integration, AnnotatedSwCostsMatchIssMeasurement) {
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  core::FlowConfig cfg;
  const ir::TaskGraph annotated =
      core::annotate_costs(w.graph, w.kernels, cfg);
  Rng rng(3);
  for (const ir::TaskId t : annotated.task_ids()) {
    const ir::Cdfg* kernel = w.kernels[t.index()];
    if (kernel == nullptr) continue;
    std::map<std::string, std::int64_t> in;
    for (const ir::OpId id : kernel->inputs()) {
      in[kernel->op(id).name] = rng.uniform_int(0, 100);
    }
    sw::Iss iss(cfg.cpu);
    double measured = 0.0;
    sw::run_program(iss, sw::compile(*kernel), in, 10'000'000, &measured);
    // Annotation excludes the trailing halt; allow 2 cycles of slack.
    EXPECT_NEAR(annotated.task(t).costs.sw_cycles, measured, 2.0)
        << annotated.task(t).name;
  }
}

// ---------------------------------------------------------------------
// The E1 claim: a movable boundary (Type II) yields a richer trade-off
// space than a fixed one (Type I) on the same application.
TEST(Integration, TypeIiTradeoffSpaceRicherThanTypeI) {
  const ir::TaskGraph g = apps::jpeg_pipeline_graph();
  const partition::CostModel model(g, hw::default_library());
  partition::Objective obj;

  // Type I points: all-software on each catalog processor (the boundary
  // is fixed; only the component choice varies).
  std::vector<opt::DesignPoint> type1;
  for (const sw::CpuModel& cpu : sw::processor_catalog()) {
    const double latency = g.total_sw_cycles() * cpu.clock_scale;
    type1.push_back({cpu.cost, latency, type1.size()});
  }

  // Type II points: partitions at varying area budgets on the reference
  // CPU (the boundary moves).
  std::vector<opt::DesignPoint> type2;
  const double all_sw_latency = g.total_sw_cycles();
  const double ref_cost = 1000.0;
  for (const double budget : {0.0, 1500.0, 3000.0, 6000.0, 12000.0}) {
    partition::Objective budgeted = obj;
    budgeted.area_budget = budget;
    budgeted.area_weight = 0.01;
    budgeted.latency_target = all_sw_latency * 0.3;
    const partition::PartitionResult r = partition::run(
        budget == 0.0 ? partition::Strategy::kAllSw
                      : partition::Strategy::kKl,
        model, budgeted);
    type2.push_back(
        {ref_cost + r.metrics.hw_area, r.metrics.latency_cycles,
         type2.size()});
  }

  const double ref1 = 40000.0, ref2 = 4.0 * all_sw_latency;
  const double hv1 = opt::hypervolume(opt::pareto_front(type1), ref1, ref2);
  const double hv2 = opt::hypervolume(opt::pareto_front(type2), ref1, ref2);
  EXPECT_GT(hv2, hv1 * 0.5);  // comparable at worst...
  EXPECT_GE(opt::pareto_front(type2).size(), 3u);  // ...and richer in points
}

}  // namespace
}  // namespace mhs
