// Unit tests for mhs::core::Explorer — deterministic parallel design-space
// exploration with memoized cost evaluation — plus the partition::run
// dispatcher and the base concurrency primitives it builds on.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "apps/workloads.h"
#include "base/concurrent_cache.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "core/explorer.h"
#include "ir/task_graph_gen.h"

namespace mhs::core {
namespace {

ir::TaskGraph make_graph(std::size_t tasks = 12) {
  Rng rng(41);
  ir::TaskGraphGenConfig cfg;
  cfg.num_tasks = tasks;
  return ir::generate_task_graph(cfg, rng);
}

std::vector<partition::Objective> make_objectives(const ir::TaskGraph& g) {
  partition::Objective constrained;
  constrained.latency_target = 0.5 * g.total_sw_cycles();
  constrained.area_weight = 0.02;
  partition::Objective area_hungry = constrained;
  area_hungry.area_weight = 0.2;
  return {constrained, area_hungry};
}

std::vector<partition::Strategy> search_strategies() {
  return {partition::Strategy::kHotSpot, partition::Strategy::kUnload,
          partition::Strategy::kKl, partition::Strategy::kAnnealed,
          partition::Strategy::kGclp};
}

/// Field-exact equality of the deterministic parts of two reports
/// (wall times and cache statistics are scheduling-dependent and
/// deliberately excluded).
void expect_reports_identical(const ExploreReport& a,
                              const ExploreReport& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const PointResult& pa = a.points[i];
    const PointResult& pb = b.points[i];
    EXPECT_EQ(pa.index, pb.index);
    EXPECT_EQ(pa.strategy, pb.strategy);
    EXPECT_EQ(pa.config_index, pb.config_index);
    EXPECT_EQ(pa.error, pb.error);
    EXPECT_EQ(pa.partition.algorithm, pb.partition.algorithm);
    EXPECT_EQ(pa.partition.mapping, pb.partition.mapping);
    EXPECT_EQ(pa.partition.evaluations, pb.partition.evaluations);
    // Bit-identical metrics, not just approximately equal.
    EXPECT_EQ(pa.partition.metrics.latency_cycles,
              pb.partition.metrics.latency_cycles);
    EXPECT_EQ(pa.partition.metrics.hw_area, pb.partition.metrics.hw_area);
    EXPECT_EQ(pa.partition.metrics.energy, pb.partition.metrics.energy);
    EXPECT_EQ(pa.all_sw_latency, pb.all_sw_latency);
    EXPECT_EQ(pa.speedup, pb.speedup);
    EXPECT_EQ(pa.on_frontier, pb.on_frontier);
  }
  EXPECT_EQ(a.frontier, b.frontier);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::atomic<int>> seen(257);
  pool.parallel_for(seen.size(), [&](std::size_t i) {
    seen[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const std::atomic<int>& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::size_t sum = 0;
  pool.parallel_for(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
  EXPECT_EQ(pool.steals(), 0u);
}

TEST(ThreadPool, ParallelForRethrowsTaskException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(
                   16,
                   [](std::size_t i) {
                     if (i == 7) throw Error("task failed");
                   }),
               Error);
  // The pool stays usable after a failed batch.
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, SubmitAndWaitIdleDrains) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 32);
}

TEST(ConcurrentCache, MemoizesAndCounts) {
  ConcurrentCache<int, int> cache(4);
  int computed = 0;
  const auto compute = [&computed](int key) {
    return [&computed, key] {
      ++computed;
      return key * key;
    };
  };
  EXPECT_EQ(cache.get_or_compute(5, compute(5)), 25);
  EXPECT_EQ(cache.get_or_compute(5, compute(5)), 25);
  EXPECT_EQ(cache.get_or_compute(6, compute(6)), 36);
  EXPECT_EQ(computed, 2);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
  int out = 0;
  EXPECT_TRUE(cache.lookup(6, &out));
  EXPECT_EQ(out, 36);
  EXPECT_FALSE(cache.lookup(7, &out));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ConcurrentCache, ConcurrentHammerStaysConsistent) {
  ConcurrentCache<int, int> cache(8);
  ThreadPool pool(4);
  std::atomic<int> wrong{0};
  pool.parallel_for(512, [&](std::size_t i) {
    const int key = static_cast<int>(i % 13);
    const int value =
        cache.get_or_compute(key, [key] { return key * 1000; });
    if (value != key * 1000) wrong.fetch_add(1);
  });
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(cache.size(), 13u);
  EXPECT_EQ(cache.hits() + cache.misses(), 512u);
}

TEST(PartitionRun, DispatcherMatchesWrappers) {
  const ir::TaskGraph g = make_graph();
  const partition::CostModel model(g, hw::default_library());
  partition::Objective obj;
  obj.latency_target = 0.5 * g.total_sw_cycles();

  const partition::PartitionResult via_run =
      partition::run(partition::Strategy::kHotSpot, model, obj);
  // Parity coverage of the deprecated wrapper spelling on purpose.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const partition::PartitionResult via_wrapper =
      partition::partition_hot_spot(model, obj);
#pragma GCC diagnostic pop
  EXPECT_EQ(via_run.algorithm, "hot_spot");
  EXPECT_EQ(via_run.mapping, via_wrapper.mapping);
  EXPECT_EQ(via_run.metrics.energy, via_wrapper.metrics.energy);
  EXPECT_EQ(via_run.evaluations, via_wrapper.evaluations);

  for (const partition::Strategy s : partition::kAllStrategies) {
    const partition::PartitionResult r = partition::run(s, model, obj);
    EXPECT_EQ(r.algorithm, partition::strategy_name(s));
    EXPECT_EQ(r.mapping.size(), g.num_tasks());
  }
}

TEST(Explorer, DeterministicAcrossThreadCounts) {
  const ir::TaskGraph g = make_graph();
  const std::vector<FlowConfig> configs = {FlowConfig::defaults()};
  const std::vector<DesignPoint> points = Explorer::cross_product(
      configs.size(), search_strategies(), make_objectives(g));
  ASSERT_EQ(points.size(), 10u);

  std::vector<ExploreReport> reports;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    Explorer::Options options;
    options.num_threads = threads;
    Explorer explorer(g, options);
    reports.push_back(explorer.explore(configs, points));
    EXPECT_EQ(reports.back().threads, threads);
  }
  expect_reports_identical(reports[0], reports[1]);
  expect_reports_identical(reports[0], reports[2]);
  EXPECT_FALSE(reports[0].frontier.empty());
}

TEST(Explorer, CachedEvaluationsAreBitIdenticalToUncached) {
  const ir::TaskGraph g = make_graph();
  const std::vector<FlowConfig> configs = {FlowConfig::defaults()};
  const std::vector<DesignPoint> points = Explorer::cross_product(
      configs.size(), search_strategies(), make_objectives(g));

  Explorer::Options uncached_options;
  uncached_options.num_threads = 1;
  uncached_options.memoize = false;
  Explorer uncached(g, uncached_options);
  const ExploreReport plain = uncached.explore(configs, points);
  EXPECT_EQ(plain.cost_cache_hits + plain.cost_cache_misses, 0u);

  Explorer::Options cached_options;
  cached_options.num_threads = 1;
  Explorer cached(g, cached_options);
  const ExploreReport memo = cached.explore(configs, points);
  EXPECT_GT(memo.cost_cache_hits, 0u);

  expect_reports_identical(plain, memo);
}

TEST(Explorer, EmptyBatchAndSinglePoint) {
  const ir::TaskGraph g = make_graph();
  Explorer::Options options;
  options.num_threads = 2;
  Explorer explorer(g, options);

  const ExploreReport empty = explorer.explore({FlowConfig::defaults()}, {});
  EXPECT_TRUE(empty.points.empty());
  EXPECT_TRUE(empty.frontier.empty());
  EXPECT_EQ(empty.contexts_built, 0u);

  DesignPoint point;
  point.strategy = partition::Strategy::kKl;
  point.objective = make_objectives(g)[0];
  const ExploreReport one =
      explorer.explore({FlowConfig::defaults()}, {point});
  ASSERT_EQ(one.points.size(), 1u);
  EXPECT_TRUE(one.points[0].error.empty());
  EXPECT_TRUE(one.points[0].on_frontier);
  ASSERT_EQ(one.frontier, std::vector<std::size_t>{0});

  // A single point must agree exactly with a direct dispatcher call
  // (the graph has no kernels, so annotation leaves it unchanged).
  const FlowConfig cfg = FlowConfig::defaults();
  const partition::CostModel model(g, cfg.library, cfg.comm);
  const partition::PartitionResult direct =
      partition::run(point.strategy, model, point.objective);
  EXPECT_EQ(one.points[0].partition.mapping, direct.mapping);
  EXPECT_EQ(one.points[0].partition.metrics.energy, direct.metrics.energy);
}

TEST(Explorer, PointFailuresAreReportedInBand) {
  const ir::TaskGraph g = make_graph();
  Explorer::Options options;
  options.num_threads = 2;
  Explorer explorer(g, options);

  DesignPoint needs_target;
  needs_target.strategy = partition::Strategy::kHotSpot;
  // No latency target: the hot-spot mover must refuse.
  DesignPoint fine;
  fine.strategy = partition::Strategy::kGclp;
  fine.objective = make_objectives(g)[0];

  const ExploreReport report =
      explorer.explore({FlowConfig::defaults()}, {needs_target, fine});
  ASSERT_EQ(report.points.size(), 2u);
  EXPECT_FALSE(report.points[0].error.empty());
  EXPECT_FALSE(report.points[0].on_frontier);
  EXPECT_TRUE(report.points[1].error.empty());
  // Only the successful point is frontier-eligible.
  ASSERT_EQ(report.frontier, std::vector<std::size_t>{1});
}

TEST(Explorer, KernelEstimatesSharedAcrossConfigVariants) {
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  Explorer::Options options;
  options.num_threads = 2;
  Explorer explorer(w.graph, w.kernels, options);

  // Two variants with identical estimation environments: the second
  // context's annotation must be served from the kernel-estimate cache.
  const std::vector<FlowConfig> configs = {
      FlowConfig::defaults().without_cosim(),
      FlowConfig::defaults().without_cosim().with_area_weight(0.2)};
  partition::Objective obj;
  obj.latency_target = 0.6 * w.graph.total_sw_cycles();
  const ExploreReport report =
      explorer.sweep(configs, {partition::Strategy::kKl}, {obj});

  ASSERT_EQ(report.points.size(), 2u);
  EXPECT_TRUE(report.points[0].error.empty());
  EXPECT_TRUE(report.points[1].error.empty());
  EXPECT_EQ(report.contexts_built, 2u);
  EXPECT_GT(report.estimate_cache_hits, 0u);
  // Identical environments ⇒ identical annotations ⇒ identical results.
  EXPECT_EQ(report.points[0].partition.mapping,
            report.points[1].partition.mapping);
  EXPECT_EQ(report.points[0].partition.metrics.latency_cycles,
            report.points[1].partition.metrics.latency_cycles);
}

TEST(Explorer, ParetoIndicesMinimizeAllThreeObjectives) {
  const auto mk = [](double latency, double area, std::size_t evals) {
    PointResult p;
    p.partition.metrics.latency_cycles = latency;
    p.partition.metrics.hw_area = area;
    p.partition.evaluations = evals;
    return p;
  };
  std::vector<PointResult> pts = {
      mk(100, 10, 5),   // 0: optimal corner
      mk(100, 10, 9),   // 1: dominated by 0 (more evals)
      mk(50, 20, 9),    // 2: non-dominated (best latency)
      mk(200, 5, 9),    // 3: non-dominated (best area)
      mk(200, 20, 20),  // 4: dominated by everything
  };
  EXPECT_EQ(pareto_indices(pts), (std::vector<std::size_t>{0, 2, 3}));
  // Failed points never reach the frontier.
  pts[2].error = "boom";
  EXPECT_EQ(pareto_indices(pts), (std::vector<std::size_t>{0, 3}));
}

}  // namespace
}  // namespace mhs::core
