// Integration test: two synthesized accelerators behind one CPU, sharing
// the system bus and the MMIO address map — the multi-device variant of
// the paper's Figure 4 system.
#include <gtest/gtest.h>

#include "apps/kernels.h"
#include "cosynth/interface_synth.h"
#include "sim/bus.h"
#include "sim/peripheral.h"
#include "sw/iss.h"

namespace mhs {
namespace {

using sw::Instr;
using sw::Opcode;

Instr li(std::uint8_t rd, std::int64_t imm) {
  return Instr{Opcode::kLi, rd, 0, 0, imm};
}
Instr ld(std::uint8_t rd, std::int64_t addr) {
  return Instr{Opcode::kLd, rd, sw::kZeroReg, 0, addr};
}
Instr st(std::uint8_t rs2, std::int64_t addr) {
  return Instr{Opcode::kSt, 0, sw::kZeroReg, rs2, addr};
}

struct TwoDeviceSystem : public ::testing::Test {
  TwoDeviceSystem()
      : fir_kernel(apps::fir_kernel(4)),
        med_kernel(apps::median5_kernel()),
        fir_impl(hw::synthesize(
            fir_kernel, lib,
            hw::HlsConstraints{hw::HlsGoal::kMinArea, 0, {}, {}})),
        med_impl(hw::synthesize(
            med_kernel, lib,
            hw::HlsConstraints{hw::HlsGoal::kMinArea, 0, {}, {}})),
        bus(sim, sim::BusConfig{}, sim::InterfaceLevel::kRegister),
        fir_dev(sim, fir_impl, sim::InterfaceLevel::kRegister),
        med_dev(sim, med_impl, sim::InterfaceLevel::kRegister) {
    fir_base = alloc.allocate(sim::PeripheralLayout::kSize,
                              sim::PeripheralLayout::kSize);
    med_base = alloc.allocate(sim::PeripheralLayout::kSize,
                              sim::PeripheralLayout::kSize);
    hook(fir_base, fir_dev);
    hook(med_base, med_dev);
  }

  void hook(std::uint64_t base, sim::StreamPeripheral& dev) {
    iss.add_mmio(
        base, base + sim::PeripheralLayout::kSize - 1,
        [this, base, &dev](std::uint64_t addr) {
          bus.access(addr, false);
          return dev.reg_read(addr - base);
        },
        [this, base, &dev](std::uint64_t addr, std::int64_t v) {
          bus.access(addr, true);
          dev.reg_write(addr - base, v);
        });
  }

  /// Runs the ISS in lock-step with the device simulator.
  void run_locked() {
    double sw_time = 0.0;
    while (!iss.halted()) {
      const sim::Time busy_before = bus.busy_cycles();
      const std::uint64_t cycles = iss.step();
      sw_time += static_cast<double>(cycles) +
                 static_cast<double>(bus.busy_cycles() - busy_before);
      const auto target = static_cast<sim::Time>(sw_time);
      if (target > sim.now()) sim.advance_to(target);
      ASSERT_LT(sw_time, 1e7) << "driver livelock";
    }
  }

  hw::ComponentLibrary lib = hw::default_library();
  ir::Cdfg fir_kernel;
  ir::Cdfg med_kernel;
  hw::HlsResult fir_impl;
  hw::HlsResult med_impl;
  sim::Simulator sim;
  sim::BusModel bus;
  sim::StreamPeripheral fir_dev;
  sim::StreamPeripheral med_dev;
  cosynth::AddressMapAllocator alloc;
  std::uint64_t fir_base = 0;
  std::uint64_t med_base = 0;
  sw::Iss iss;
};

TEST_F(TwoDeviceSystem, AddressesDisjointAndAligned) {
  EXPECT_NE(fir_base, med_base);
  EXPECT_EQ(fir_base % sim::PeripheralLayout::kSize, 0u);
  EXPECT_EQ(med_base % sim::PeripheralLayout::kSize, 0u);
  EXPECT_GE(med_base, fir_base + sim::PeripheralLayout::kSize);
}

TEST_F(TwoDeviceSystem, OneProgramDrivesBothDevices) {
  // The program:
  //   1. feeds the FIR device x0..x3 = 1<<16 (DC input, unity gain),
  //   2. starts it and polls,
  //   3. feeds the FIR result and four constants to the median device,
  //   4. starts it, polls, and stores the median to memory.
  const auto fir_in = [&](std::size_t k) {
    return static_cast<std::int64_t>(
        fir_base + sim::PeripheralLayout::kInputBase + 8 * k);
  };
  const auto med_in = [&](std::size_t k) {
    return static_cast<std::int64_t>(
        med_base + sim::PeripheralLayout::kInputBase + 8 * k);
  };
  const auto ctrl = [&](std::uint64_t base) {
    return static_cast<std::int64_t>(base + sim::PeripheralLayout::kCtrl);
  };
  const auto status = [&](std::uint64_t base) {
    return static_cast<std::int64_t>(base +
                                     sim::PeripheralLayout::kStatus);
  };

  std::vector<Instr> code;
  code.push_back(li(1, 1 << 16));
  for (std::size_t k = 0; k < 4; ++k) code.push_back(st(1, fir_in(k)));
  code.push_back(li(2, 1));
  code.push_back(st(2, ctrl(fir_base)));
  const std::size_t poll1 = code.size();
  code.push_back(ld(3, status(fir_base)));
  code.push_back(Instr{Opcode::kAnd, 3, 3, 2, 0});
  code.push_back(Instr{Opcode::kBeq, 0, 3, sw::kZeroReg,
                       static_cast<std::int64_t>(poll1)});
  // FIR output -> median input 0; constants into the rest.
  code.push_back(ld(4, static_cast<std::int64_t>(
                          fir_base + sim::PeripheralLayout::kOutputBase)));
  code.push_back(st(4, med_in(0)));
  const std::int64_t consts[4] = {10 << 16, 200 << 16, 3 << 16, 50 << 16};
  for (std::size_t k = 0; k < 4; ++k) {
    code.push_back(li(5, consts[k]));
    code.push_back(st(5, med_in(k + 1)));
  }
  code.push_back(st(2, ctrl(med_base)));
  const std::size_t poll2 = code.size();
  code.push_back(ld(3, status(med_base)));
  code.push_back(Instr{Opcode::kAnd, 3, 3, 2, 0});
  code.push_back(Instr{Opcode::kBeq, 0, 3, sw::kZeroReg,
                       static_cast<std::int64_t>(poll2)});
  code.push_back(ld(6, static_cast<std::int64_t>(
                          med_base + sim::PeripheralLayout::kOutputBase)));
  code.push_back(st(6, 0x5000));
  code.push_back(Instr{Opcode::kHalt, 0, 0, 0, 0});

  iss.load_program(code);
  run_locked();

  // FIR of DC 1.0 is ~1.0 (1<<16); median of {~1, 10, 200, 3, 50} = 10.
  const std::int64_t median = iss.read_word(0x5000);
  EXPECT_EQ(median, 10 << 16);
  EXPECT_EQ(fir_dev.activations(), 1u);
  EXPECT_EQ(med_dev.activations(), 1u);
  // Both devices' traffic crossed the single shared bus.
  EXPECT_GT(bus.total_accesses(), 12u);
}

TEST_F(TwoDeviceSystem, DevicesOperateConcurrently) {
  // Start both devices back to back; the second start is issued while
  // the first device is still busy — their latencies overlap.
  for (std::size_t k = 0; k < fir_dev.num_inputs(); ++k) {
    fir_dev.reg_write(sim::PeripheralLayout::kInputBase + 8 * k, 1 << 16);
  }
  for (std::size_t k = 0; k < med_dev.num_inputs(); ++k) {
    med_dev.reg_write(sim::PeripheralLayout::kInputBase + 8 * k,
                      static_cast<std::int64_t>(k));
  }
  fir_dev.reg_write(sim::PeripheralLayout::kCtrl, 1);
  med_dev.reg_write(sim::PeripheralLayout::kCtrl, 1);
  EXPECT_TRUE(fir_dev.busy());
  EXPECT_TRUE(med_dev.busy());
  sim.run();
  EXPECT_TRUE(fir_dev.done());
  EXPECT_TRUE(med_dev.done());
  // Completion at max(latency), not the sum: they ran concurrently.
  EXPECT_EQ(sim.now(),
            std::max<sim::Time>(fir_impl.latency, med_impl.latency));
}

}  // namespace
}  // namespace mhs
