// Tier-1 coverage for the differential HW/SW co-verification stack:
// hw::RtlSim (the cycle-accurate RTL-level interpreter),
// hw::check_equivalence / hw::verify_synthesis (the differential
// checkers), the PR-9 narrowing end-to-end differential (narrowed and
// word-wide syntheses must be bit-identical under RtlSim, not just
// under simulate_datapath checksums), and the round-trip between the
// emitted Verilog text and the structures RtlSim executes.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/absint.h"
#include "apps/kernels.h"
#include "base/error.h"
#include "base/rng.h"
#include "hw/equivalence.h"
#include "hw/hls.h"
#include "hw/rtl_emit.h"
#include "ir/cdfg.h"

namespace mhs::hw {
namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

// The HlsResult's schedule keeps a pointer to the library, so the
// library must outlive every implementation synthesized from it.
const ComponentLibrary& shared_library() {
  static const ComponentLibrary lib = default_library();
  return lib;
}

HlsResult synth(const ir::Cdfg& k, HlsGoal goal,
                std::vector<std::size_t> widths = {}) {
  HlsConstraints constraints;
  constraints.goal = goal;
  constraints.op_width = std::move(widths);
  return synthesize(k, shared_library(), constraints);
}

std::map<std::string, std::int64_t> sample_inputs(const ir::Cdfg& k, Rng& rng,
                                                  std::int64_t lo = -128,
                                                  std::int64_t hi = 127) {
  std::map<std::string, std::int64_t> in;
  for (const ir::OpId id : k.inputs()) {
    in[k.op(id).name] = rng.uniform_int(lo, hi);
  }
  return in;
}

std::vector<ir::Cdfg> example_kernels() {
  std::vector<ir::Cdfg> kernels;
  kernels.push_back(apps::fir_kernel(8));
  kernels.push_back(apps::dct8_kernel());
  kernels.push_back(apps::median5_kernel());
  kernels.push_back(apps::checksum_kernel(8));
  kernels.push_back(apps::sobel3_kernel());
  kernels.push_back(apps::xtea_kernel(2));
  kernels.push_back(apps::iir_biquad_kernel());
  return kernels;
}

// ------------------------------------------------------------ wrap_to_width

TEST(WrapToWidth, SignExtendsFromTheSlicedBit) {
  EXPECT_EQ(wrap_to_width(127, 8), 127);
  EXPECT_EQ(wrap_to_width(128, 8), -128);
  EXPECT_EQ(wrap_to_width(255, 8), -1);
  EXPECT_EQ(wrap_to_width(-129, 8), 127);
  EXPECT_EQ(wrap_to_width(0, 1), 0);
  EXPECT_EQ(wrap_to_width(1, 1), -1);  // 1-bit two's complement: {-1, 0}
  const std::int64_t x = 0x7fff'abcd'1234'5678;
  EXPECT_EQ(wrap_to_width(x, 64), x);
  EXPECT_EQ(wrap_to_width(x, 100), x);
}

// ------------------------------------------------------------------ RtlSim

TEST(RtlSim, MatchesEvaluatorOnExampleKernels) {
  for (const ir::Cdfg& k : example_kernels()) {
    for (const HlsGoal goal : {HlsGoal::kMinLatency, HlsGoal::kMinArea}) {
      const HlsResult impl = synth(k, goal);
      const RtlSim sim(impl);
      Rng rng(2024);
      for (int s = 0; s < 4; ++s) {
        const auto in = sample_inputs(k, rng);
        const RtlTrace trace = sim.run(in);
        EXPECT_EQ(trace.outputs, k.evaluate(in)) << k.name();
        EXPECT_EQ(trace.cycles, impl.schedule.num_steps()) << k.name();
        EXPECT_EQ(trace.cycles, impl.latency) << k.name();
      }
    }
  }
}

TEST(RtlSim, StructuralAccessorsAgreeWithScheduleAndBinding) {
  const ir::Cdfg k = apps::fir_kernel(6);
  const HlsResult impl = synth(k, HlsGoal::kMinArea);
  const RtlSim sim(impl);
  EXPECT_EQ(sim.num_states(), impl.schedule.num_steps());
  EXPECT_EQ(sim.num_registers(), impl.binding.num_registers);
  std::size_t fus = 0;
  for (std::size_t t = 0; t < kNumFuTypes; ++t) {
    fus += impl.binding.fu_counts.count[t];
  }
  EXPECT_EQ(sim.num_fu_instances(), fus);
  std::size_t compute = 0;
  for (const ir::OpId id : k.op_ids()) {
    compute += ir::op_is_compute(k.op(id).kind) ? 1 : 0;
  }
  EXPECT_EQ(sim.num_compute_ops(), compute);
}

TEST(RtlSim, CountsFuFiresAndRegisterWrites) {
  const ir::Cdfg k = apps::median5_kernel();
  const HlsResult impl = synth(k, HlsGoal::kMinArea);
  const RtlSim sim(impl);
  Rng rng(7);
  const RtlTrace trace = sim.run(sample_inputs(k, rng));
  EXPECT_EQ(trace.fu_fires, sim.num_compute_ops());
  std::size_t registered = 0;
  for (const ir::OpId id : k.op_ids()) {
    registered += impl.binding.register_of[id.index()] != kNone ? 1 : 0;
  }
  EXPECT_EQ(trace.register_writes, registered);
}

TEST(RtlSim, RejectsATamperedBinding) {
  // Cross-validation: dropping a register allocation the controller's
  // load bits still reflect must be caught at construction, before any
  // vector runs — this is the structural power simulate_datapath lacks.
  const ir::Cdfg k = apps::fir_kernel(4);
  HlsResult impl = synth(k, HlsGoal::kMinArea);
  std::size_t victim = kNone;
  for (const ir::OpId id : k.op_ids()) {
    if (impl.binding.register_of[id.index()] != kNone) {
      victim = id.index();
      break;
    }
  }
  ASSERT_NE(victim, kNone) << "expected at least one registered value";
  impl.binding.register_of[victim] = kNone;
  EXPECT_THROW((RtlSim(impl)), InternalError);
}

TEST(RtlSim, MissingInputIsAPreconditionError) {
  const ir::Cdfg k = apps::fir_kernel(4);
  const HlsResult impl = synth(k, HlsGoal::kMinLatency);
  const RtlSim sim(impl);
  EXPECT_THROW(sim.run({}), PreconditionError);
}

// ------------------------------------------------------- check_equivalence

TEST(CheckEquivalence, CleanOnExampleKernelsUnderEveryGoal) {
  for (const ir::Cdfg& k : example_kernels()) {
    for (const HlsGoal goal : {HlsGoal::kMinLatency, HlsGoal::kMinArea}) {
      const HlsResult impl = synth(k, goal);
      Rng rng(11);
      for (int s = 0; s < 3; ++s) {
        const EquivResult r = check_equivalence(impl, sample_inputs(k, rng));
        ASSERT_FALSE(r.trapped) << k.name();
        EXPECT_TRUE(r.equivalent) << k.name() << ": " << r.detail;
        EXPECT_EQ(r.cycles, impl.latency) << k.name();
        EXPECT_EQ(r.rtl_outputs, r.ref_outputs) << k.name();
      }
    }
  }
}

TEST(CheckEquivalence, IssLegAgrees) {
  const ir::Cdfg k = apps::checksum_kernel(4);
  const HlsResult impl = synth(k, HlsGoal::kMinArea);
  EquivOptions options;
  options.check_iss = true;
  Rng rng(3);
  const EquivResult r = check_equivalence(impl, sample_inputs(k, rng), options);
  ASSERT_FALSE(r.trapped);
  EXPECT_TRUE(r.equivalent) << r.detail;
}

TEST(CheckEquivalence, TrappingVectorsAreScreenedNotCompared) {
  ir::Cdfg k("trapdiv");
  const ir::OpId a = k.input("a");
  const ir::OpId b = k.input("b");
  k.output("y", k.binary(ir::OpKind::kDiv, a, b));
  const HlsResult impl = synth(k, HlsGoal::kMinArea);
  const EquivResult r = check_equivalence(impl, {{"a", 10}, {"b", 0}});
  EXPECT_TRUE(r.trapped);
  EXPECT_TRUE(r.equivalent);  // vacuously: nothing was compared
  const EquivResult ok = check_equivalence(impl, {{"a", 10}, {"b", 3}});
  EXPECT_FALSE(ok.trapped);
  EXPECT_TRUE(ok.equivalent) << ok.detail;
}

TEST(CheckEquivalence, ReportsTamperedImplementationAsNonEquivalent) {
  const ir::Cdfg k = apps::fir_kernel(4);
  HlsResult impl = synth(k, HlsGoal::kMinArea);
  std::size_t victim = kNone;
  for (const ir::OpId id : k.op_ids()) {
    if (impl.binding.register_of[id.index()] != kNone) {
      victim = id.index();
      break;
    }
  }
  ASSERT_NE(victim, kNone);
  impl.binding.register_of[victim] = kNone;
  Rng rng(5);
  const EquivResult r = check_equivalence(impl, sample_inputs(k, rng));
  EXPECT_FALSE(r.equivalent);
  EXPECT_FALSE(r.detail.empty());
}

// -------------------------------------------------------- verify_synthesis

TEST(VerifySynthesis, CampaignIsCleanAndDeterministic) {
  const ir::Cdfg k = ir::with_input_ranges(apps::sad_kernel(4), {-128, 127});
  const HlsResult impl = synth(k, HlsGoal::kMinArea);
  const EquivCampaign a = verify_synthesis(impl, 32, 99);
  EXPECT_TRUE(a.all_equivalent) << a.first_failure;
  EXPECT_EQ(a.vectors + a.trapped, 32u);
  EXPECT_GT(a.vectors, 0u);
  const EquivCampaign b = verify_synthesis(impl, 32, 99);
  EXPECT_EQ(a.vectors, b.vectors);
  EXPECT_EQ(a.trapped, b.trapped);
}

// ------------------------------------------- narrowing end-to-end (PR 9)

TEST(NarrowingDifferential, NarrowedAndWordWideAreBitIdenticalUnderRtlSim) {
  for (const ir::Cdfg& base : example_kernels()) {
    const ir::Cdfg k = ir::with_input_ranges(base, {-128, 127});
    const std::vector<std::size_t> widths = analysis::absint_cdfg(k).width;
    const HlsResult narrowed = synth(k, HlsGoal::kMinArea, widths);
    const HlsResult wide = synth(k, HlsGoal::kMinArea);
    ASSERT_TRUE(narrowed.schedule.has_op_widths()) << k.name();
    const RtlSim narrow_sim(narrowed);
    const RtlSim wide_sim(wide);
    Rng rng(0xbeef);
    for (int s = 0; s < 6; ++s) {
      const auto in = sample_inputs(k, rng);
      const RtlTrace nt = narrow_sim.run(in);
      const RtlTrace wt = wide_sim.run(in);
      EXPECT_EQ(nt.outputs, wt.outputs) << k.name();
      EXPECT_EQ(nt.cycles, wt.cycles) << k.name();
      // And both agree with the behavioural reference.
      EXPECT_EQ(nt.outputs, k.evaluate(in)) << k.name();
    }
    // The differential checker holds on the narrowed implementation too.
    const EquivCampaign campaign = verify_synthesis(narrowed, 16, 0xa11);
    EXPECT_TRUE(campaign.all_equivalent)
        << k.name() << ": " << campaign.first_failure;
  }
}

// ------------------------------------------------- RTL text round-trip

/// Parses "key=<number>" occurrences after `marker` on the line
/// containing it.
std::size_t parse_after(const std::string& text, const std::string& marker) {
  const std::size_t pos = text.find(marker);
  EXPECT_NE(pos, std::string::npos) << "marker '" << marker << "' not found";
  if (pos == std::string::npos) return 0;
  std::size_t value = 0;
  std::size_t i = pos + marker.size();
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
    value = value * 10 + static_cast<std::size_t>(text[i] - '0');
    ++i;
  }
  return value;
}

std::size_t count_lines_starting(const std::string& text,
                                 const std::string& prefix) {
  std::size_t n = 0;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind(prefix, 0) == 0) ++n;
  }
  return n;
}

TEST(RtlRoundTrip, EmittedTextAgreesWithRtlSimStructures) {
  for (const ir::Cdfg& k :
       {apps::fir_kernel(6), apps::median5_kernel(), apps::dct8_kernel()}) {
    for (const HlsGoal goal : {HlsGoal::kMinLatency, HlsGoal::kMinArea}) {
      const HlsResult impl = synth(k, goal);
      const RtlSim sim(impl);
      const std::string rtl = emit_verilog(impl);
      // Header latency comment == FSM state count executed by RtlSim.
      EXPECT_EQ(parse_after(rtl, "latency "), sim.num_states()) << k.name();
      // "// 0 = idle, 1..N = control steps" — same state space.
      EXPECT_EQ(parse_after(rtl, "// 0 = idle, 1.."), sim.num_states())
          << k.name();
      // FU allocation header == the binding's instance counts RtlSim
      // sizes its output latches from.
      std::size_t emitted_fus = 0;
      for (std::size_t t = 0; t < kNumFuTypes; ++t) {
        const std::string key = std::string(fu_name(all_fu_types()[t])) + "=";
        const std::size_t n = parse_after(rtl, key);
        EXPECT_EQ(n, impl.binding.fu_counts.count[t]) << k.name();
        emitted_fus += n;
      }
      EXPECT_EQ(emitted_fus, sim.num_fu_instances()) << k.name();
      // One value register declaration per compute op.
      EXPECT_EQ(count_lines_starting(rtl, "  reg  signed ["),
                sim.num_compute_ops())
          << k.name();
    }
  }
}

}  // namespace
}  // namespace mhs::hw
