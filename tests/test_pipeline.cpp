// Tests for loop pipelining (hw/pipeline).
#include <gtest/gtest.h>

#include "apps/kernels.h"
#include "hw/pipeline.h"

namespace mhs::hw {
namespace {

TEST(Pipeline, RequirementMatchesResourceBoundAtIiOne) {
  // At II=1 every op-cycle needs its own FU instance.
  const ir::Cdfg c = apps::fir_kernel(4);
  const ComponentLibrary lib = default_library();
  const ModuloSchedule s = modulo_schedule(c, lib, 1);
  std::size_t mul_opcycles = 0;
  for (const ir::OpId id : c.op_ids()) {
    if (c.op(id).kind == ir::OpKind::kMul) {
      mul_opcycles += lib.op_latency(ir::OpKind::kMul);
    }
  }
  EXPECT_EQ(s.fu_requirement()[FuType::kMul], mul_opcycles);
  EXPECT_DOUBLE_EQ(s.throughput(), 1.0);
}

TEST(Pipeline, RequirementMonotoneNonIncreasingInIi) {
  const ir::Cdfg c = apps::dct8_kernel();
  const ComponentLibrary lib = default_library();
  FuCounts prev = FuCounts::unlimited();
  for (const std::size_t ii : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const ModuloSchedule s = modulo_schedule(c, lib, ii);
    for (std::size_t t = 0; t < kNumFuTypes; ++t) {
      EXPECT_LE(s.fu_requirement().count[t], prev.count[t])
          << "II " << ii << " type " << t;
    }
    prev = s.fu_requirement();
  }
}

TEST(Pipeline, AreaThroughputTradeoff) {
  const ir::Cdfg c = apps::dct8_kernel();
  const ComponentLibrary lib = default_library();
  const ModuloSchedule fast = modulo_schedule(c, lib, 2);
  const ModuloSchedule slow = modulo_schedule(c, lib, 32);
  EXPECT_GT(fast.throughput(), slow.throughput());
  EXPECT_GT(fast.area(lib), slow.area(lib));
}

TEST(Pipeline, CyclesForSamplesIsFillPlusDrain) {
  const ir::Cdfg c = apps::fir_kernel(8);
  const ComponentLibrary lib = default_library();
  const ModuloSchedule s = modulo_schedule(c, lib, 4);
  EXPECT_EQ(s.cycles_for(1), s.iteration_latency());
  EXPECT_EQ(s.cycles_for(10), s.iteration_latency() + 9 * 4);
  EXPECT_THROW(s.cycles_for(0), PreconditionError);
}

TEST(Pipeline, PipeliningBeatsSequentialForStreams) {
  // Processing 64 samples: a pipelined datapath at II=4 versus running
  // the non-pipelined min-latency schedule back to back.
  const ir::Cdfg c = apps::dct8_kernel();
  const ComponentLibrary lib = default_library();
  const ModuloSchedule pipe = modulo_schedule(c, lib, 4);
  const Schedule seq = asap_schedule(c, lib);
  const std::size_t samples = 64;
  EXPECT_LT(pipe.cycles_for(samples), seq.num_steps() * samples);
}

TEST(Pipeline, MinIiRespectsResources) {
  const ir::Cdfg c = apps::dct8_kernel();
  const ComponentLibrary lib = default_library();
  FuCounts res;
  res[FuType::kAlu] = 4;
  res[FuType::kMul] = 4;
  res[FuType::kShift] = 4;
  res[FuType::kDiv] = 1;
  const std::size_t ii = min_initiation_interval(c, lib, res);
  const ModuloSchedule s = modulo_schedule(c, lib, ii);
  for (std::size_t t = 0; t < kNumFuTypes; ++t) {
    EXPECT_LE(s.fu_requirement().count[t], res.count[t]);
  }
  // The resource bound: 64 muls x 2 cycles / 4 units = 32.
  EXPECT_GE(ii, 32u);
}

TEST(Pipeline, MinIiShrinksWithMoreResources) {
  const ir::Cdfg c = apps::dct8_kernel();
  const ComponentLibrary lib = default_library();
  FuCounts small;
  small[FuType::kAlu] = 2;
  small[FuType::kMul] = 2;
  small[FuType::kShift] = 2;
  small[FuType::kDiv] = 1;
  FuCounts big;
  big[FuType::kAlu] = 16;
  big[FuType::kMul] = 16;
  big[FuType::kShift] = 16;
  big[FuType::kDiv] = 1;
  EXPECT_GT(min_initiation_interval(c, lib, small),
            min_initiation_interval(c, lib, big));
}

TEST(Pipeline, MissingResourceClassIsInfeasible) {
  const ir::Cdfg c = apps::dct8_kernel();
  const ComponentLibrary lib = default_library();
  FuCounts res;  // all zero
  EXPECT_THROW(min_initiation_interval(c, lib, res), InfeasibleError);
}

TEST(Pipeline, InitiationIntervalIsPreservedAndInvertsThroughput) {
  // The II handed to the scheduler is a contract, not a hint: the
  // schedule must report exactly that interval, steady-state throughput
  // must be its exact inverse, and the marginal cost of one more sample
  // must be exactly II cycles.
  const ir::Cdfg c = apps::fir_kernel(8);
  const ComponentLibrary lib = default_library();
  for (const std::size_t ii : {1u, 2u, 3u, 7u, 16u}) {
    const ModuloSchedule s = modulo_schedule(c, lib, ii);
    EXPECT_EQ(s.initiation_interval(), ii);
    EXPECT_DOUBLE_EQ(s.throughput() * static_cast<double>(ii), 1.0);
    EXPECT_EQ(s.cycles_for(5) - s.cycles_for(4), ii);
    s.verify();
  }
}

TEST(Pipeline, MinIiIsTightAgainstTheResourceBound) {
  // min_initiation_interval must return the smallest feasible II: the
  // schedule at that II fits the resources, and II-1 (when >= 1) must
  // violate the per-type ceil(opcycles / II) resource bound for at
  // least one type — otherwise the search stopped early.
  const ir::Cdfg c = apps::dct8_kernel();
  const ComponentLibrary lib = default_library();
  FuCounts res;
  res[FuType::kAlu] = 8;
  res[FuType::kMul] = 8;
  res[FuType::kShift] = 4;
  res[FuType::kDiv] = 1;
  const std::size_t ii = min_initiation_interval(c, lib, res);
  const ModuloSchedule s = modulo_schedule(c, lib, ii);
  for (std::size_t t = 0; t < kNumFuTypes; ++t) {
    EXPECT_LE(s.fu_requirement().count[t], res.count[t]);
  }
  if (ii > 1) {
    bool tighter_ii_violates = false;
    for (std::size_t t = 0; t < kNumFuTypes; ++t) {
      std::size_t opcycles = 0;
      for (const ir::OpId id : c.op_ids()) {
        if (ir::op_is_compute(c.op(id).kind) &&
            fu_for_op(c.op(id).kind) == all_fu_types()[t]) {
          opcycles += lib.op_latency(c.op(id).kind);
        }
      }
      const std::size_t needed = (opcycles + ii - 2) / (ii - 1);
      tighter_ii_violates =
          tighter_ii_violates || needed > res.count[t];
    }
    EXPECT_TRUE(tighter_ii_violates)
        << "II " << ii << " is not minimal: II-1 also fits the bound";
  }
}

class PipelineIiSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PipelineIiSweep, SchedulesVerifyAcrossKernelsAndIis) {
  const std::size_t ii = GetParam();
  const ComponentLibrary lib = default_library();
  const ir::Cdfg kernels[] = {apps::fir_kernel(6), apps::dct8_kernel(),
                              apps::median5_kernel(),
                              apps::checksum_kernel(5)};
  for (const ir::Cdfg& c : kernels) {
    const ModuloSchedule s = modulo_schedule(c, lib, ii);  // self-verifies
    EXPECT_GE(s.iteration_latency(), 1u) << c.name();
    for (std::size_t t = 0; t < kNumFuTypes; ++t) {
      // Never below the resource-minimum bound.
      std::size_t opcycles = 0;
      for (const ir::OpId id : c.op_ids()) {
        if (ir::op_is_compute(c.op(id).kind) &&
            fu_for_op(c.op(id).kind) == all_fu_types()[t]) {
          opcycles += lib.op_latency(c.op(id).kind);
        }
      }
      if (opcycles > 0) {
        EXPECT_GE(s.fu_requirement().count[t],
                  (opcycles + ii - 1) / ii)
            << c.name();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelineIiSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace mhs::hw
