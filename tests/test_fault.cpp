// Unit tests for mhs::fault — the deterministic fault injector, the
// per-component injection hooks (bus, peripheral, DMA), the resilient
// driver (watchdog/retry/backoff/degradation) at all four interface
// levels, and the ResilienceReport surfaced through CosimReport and
// core::Report.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include "apps/kernels.h"
#include "apps/workloads.h"
#include "base/error.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "core/explorer.h"
#include "core/flow.h"
#include "cosynth/run.h"
#include "fault/fault.h"
#include "sim/cosim.h"
#include "sim/run.h"
#include "sim/dma.h"
#include "sim/peripheral.h"

namespace mhs::fault {
namespace {

// ------------------------------------------------------------- SplitMix64

TEST(SplitMix64, SameSeedSameStreamDifferentSeedsDiffer) {
  SplitMix64 a(123), b(123), c(124);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    any_diff = any_diff || va != c.next();
  }
  EXPECT_TRUE(any_diff);
}

TEST(SplitMix64, UniformStaysInUnitInterval) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(SplitMix64, KnownFirstValueOfSeedZero) {
  // The published SplitMix64 reference sequence pins the implementation.
  SplitMix64 rng(0);
  EXPECT_EQ(rng.next(), 0xe220a8397b1dcdafull);
}

// ------------------------------------------------------- specs and plans

TEST(FaultSpec, FactoriesEncodeKindRateAndParam) {
  const FaultSpec flip = FaultSpec::bus_bit_flip(0.25, 5);
  EXPECT_EQ(flip.kind, FaultKind::kBusBitFlip);
  EXPECT_DOUBLE_EQ(flip.rate, 0.25);
  EXPECT_EQ(flip.param, 5u);

  const FaultSpec starve = FaultSpec::bus_grant_starvation(0.5, 12);
  EXPECT_EQ(starve.kind, FaultKind::kBusGrantStarvation);
  EXPECT_EQ(starve.param, 12u);

  const FaultSpec hang = FaultSpec::peripheral_hang(1.0);
  EXPECT_EQ(hang.kind, FaultKind::kPeripheralStall);
  EXPECT_EQ(hang.param, FaultSpec::kHang);

  // Stuck-at packs the line index in bits 0..5 and the value in bit 6.
  const FaultSpec stuck1 = FaultSpec::stuck_at(1.0, 3, true);
  EXPECT_EQ(stuck1.param, 3u | 0x40u);
  const FaultSpec stuck0 = FaultSpec::stuck_at(1.0, 3, false);
  EXPECT_EQ(stuck0.param, 3u);

  EXPECT_EQ(FaultSpec::dma_drop(0.1).kind, FaultKind::kDmaDrop);
  EXPECT_EQ(FaultSpec::dma_duplicate(0.1).kind, FaultKind::kDmaDuplicate);
  EXPECT_EQ(FaultSpec::kernel_result_corruption(0.1, 0xff).param, 0xffu);
}

TEST(FaultSpec, FactoriesRejectInvalidParams) {
  EXPECT_THROW(FaultSpec::bus_bit_flip(0.1, 65), PreconditionError);
  EXPECT_THROW(FaultSpec::bus_grant_starvation(0.1, 0), PreconditionError);
  EXPECT_THROW(FaultSpec::peripheral_stall(0.1, 0), PreconditionError);
  EXPECT_THROW(FaultSpec::stuck_at(0.1, 64, true), PreconditionError);
}

TEST(FaultPlan, EnabledNeedsPositiveRateAndBudget) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.add(FaultSpec::bus_bit_flip(0.0));
  EXPECT_FALSE(plan.enabled());
  FaultSpec broke = FaultSpec::dma_drop(0.5);
  broke.max_count = 0;
  plan.add(broke);
  EXPECT_FALSE(plan.enabled());
  plan.add(FaultSpec::peripheral_stall(0.1, 10));
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlan, SummaryNamesEverySpec) {
  FaultPlan plan;
  plan.add(FaultSpec::bus_bit_flip(0.01))
      .add(FaultSpec::peripheral_hang(0.05));
  const std::string s = plan.summary();
  EXPECT_NE(s.find("bus_bit_flip"), std::string::npos);
  EXPECT_NE(s.find("peripheral_stall"), std::string::npos);
  EXPECT_NE(s.find("param=hang"), std::string::npos);
}

// ------------------------------------------------------ ResilienceReport

TEST(ResilienceReport, InvariantsDetectViolations) {
  ResilienceReport r;
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.invariants_hold());
  r.injected = 5;
  r.injected_by_kind[0] = 5;
  r.detected = 3;
  r.recovered = 2;
  EXPECT_TRUE(r.invariants_hold());
  EXPECT_FALSE(r.empty());

  ResilienceReport bad = r;
  bad.detected = 6;  // detected > injected
  EXPECT_FALSE(bad.invariants_hold());
  bad = r;
  bad.recovered = 4;  // recovered > detected
  EXPECT_FALSE(bad.invariants_hold());
  bad = r;
  bad.injected_by_kind[0] = 4;  // per-kind sum != injected
  EXPECT_FALSE(bad.invariants_hold());
}

TEST(ResilienceReport, MergeSumsEveryCounter) {
  ResilienceReport a, b;
  a.injected = 3;
  a.injected_by_kind[1] = 3;
  a.detected = 2;
  a.recovery_cycles = 100;
  b.injected = 4;
  b.injected_by_kind[2] = 4;
  b.recovered = 1;
  b.degradations = 2;
  b.retries = 5;
  a.merge(b);
  EXPECT_EQ(a.injected, 7u);
  EXPECT_EQ(a.injected_by_kind[1], 3u);
  EXPECT_EQ(a.injected_by_kind[2], 4u);
  EXPECT_EQ(a.detected, 2u);
  EXPECT_EQ(a.recovered, 1u);
  EXPECT_EQ(a.retries, 5u);
  EXPECT_EQ(a.degradations, 2u);
  EXPECT_EQ(a.recovery_cycles, 100u);
}

TEST(ResilienceReport, SummaryRendersCountersAndKinds) {
  ResilienceReport r;
  r.injected = 2;
  r.injected_by_kind[static_cast<std::size_t>(FaultKind::kDmaDrop)] = 2;
  const std::string s = r.summary();
  EXPECT_NE(s.find("injected=2"), std::string::npos);
  EXPECT_NE(s.find("dma_drop"), std::string::npos);
}

// ---------------------------------------------------------- FaultInjector

TEST(FaultInjector, DisabledPlanIsIdentity) {
  FaultInjector fi(42, FaultPlan{});
  EXPECT_FALSE(fi.enabled());
  EXPECT_EQ(fi.corrupt_bus_word(0x1234), 0x1234);
  EXPECT_EQ(fi.grant_starvation_cycles(), 0u);
  EXPECT_FALSE(fi.drop_dma_burst());
  EXPECT_FALSE(fi.duplicate_dma_burst());
  EXPECT_EQ(fi.peripheral_stall_cycles(), 0u);
  EXPECT_EQ(fi.corrupt_kernel_result(-7), -7);
  EXPECT_TRUE(fi.report().empty());
}

TEST(FaultInjector, SameSeedAndPlanReplaysTheExactSchedule) {
  FaultPlan plan;
  plan.add(FaultSpec::bus_bit_flip(0.3))
      .add(FaultSpec::bus_grant_starvation(0.2, 7))
      .add(FaultSpec::kernel_result_corruption(0.1));
  FaultInjector a(99, plan), b(99, plan);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.corrupt_bus_word(i), b.corrupt_bus_word(i));
    EXPECT_EQ(a.grant_starvation_cycles(), b.grant_starvation_cycles());
    EXPECT_EQ(a.corrupt_kernel_result(i), b.corrupt_kernel_result(i));
  }
  EXPECT_EQ(a.report(), b.report());
  EXPECT_GT(a.report().injected, 0u);
}

TEST(FaultInjector, FixedBitFlipTouchesExactlyThatBit) {
  FaultPlan plan;
  plan.add(FaultSpec::bus_bit_flip(1.0, 5));
  FaultInjector fi(1, plan);
  for (int i = 0; i < 20; ++i) {
    const std::int64_t out = fi.corrupt_bus_word(i);
    EXPECT_EQ(out ^ i, 1 << 5);
  }
  EXPECT_EQ(fi.report().injected, 20u);
  EXPECT_EQ(fi.report().injected_by_kind[static_cast<std::size_t>(
                FaultKind::kBusBitFlip)],
            20u);
}

TEST(FaultInjector, RandomBitFlipTouchesExactlyOneBit) {
  FaultPlan plan;
  plan.add(FaultSpec::bus_bit_flip(1.0));
  FaultInjector fi(1, plan);
  std::set<std::uint64_t> bits;
  for (int i = 0; i < 200; ++i) {
    const auto diff =
        static_cast<std::uint64_t>(fi.corrupt_bus_word(0));
    ASSERT_NE(diff, 0u);
    EXPECT_EQ(diff & (diff - 1), 0u) << "more than one bit flipped";
    bits.insert(diff);
  }
  EXPECT_GT(bits.size(), 10u) << "random bit choice is not random";
}

TEST(FaultInjector, MaxCountBoundsInjections) {
  FaultPlan plan;
  FaultSpec spec = FaultSpec::bus_bit_flip(1.0, 0);
  spec.max_count = 3;
  plan.add(spec);
  FaultInjector fi(1, plan);
  int corrupted = 0;
  for (int i = 0; i < 50; ++i) {
    if (fi.corrupt_bus_word(0) != 0) ++corrupted;
  }
  EXPECT_EQ(corrupted, 3);
  EXPECT_EQ(fi.report().injected, 3u);
}

TEST(FaultInjector, BudgetExhaustionDoesNotShiftLaterSpecsSchedules) {
  // The stream position depends only on the opportunity count, so
  // changing one spec's budget must not move another spec's injections.
  const auto schedule_of = [](std::uint64_t budget) {
    FaultPlan plan;
    FaultSpec first = FaultSpec::bus_bit_flip(0.5, 3);
    first.max_count = budget;
    plan.add(first);
    plan.add(FaultSpec::bus_bit_flip(0.5, 7));
    FaultInjector fi(5, plan);
    std::vector<bool> bit7;
    for (int i = 0; i < 100; ++i) {
      bit7.push_back((fi.corrupt_bus_word(0) & (1 << 7)) != 0);
    }
    return bit7;
  };
  EXPECT_EQ(schedule_of(0), schedule_of(UINT64_MAX));
}

TEST(FaultInjector, StuckAtLatchesAndDistortsEveryLaterWord) {
  FaultPlan plan;
  plan.add(FaultSpec::stuck_at(1.0, 2, true));
  FaultInjector fi(1, plan);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fi.corrupt_bus_word(0), 1 << 2);
  }
  // Words whose bit already matches pass through uncorrupted (and are
  // not counted), so injected == the number of actually-distorted words.
  EXPECT_EQ(fi.corrupt_bus_word(1 << 2), 1 << 2);
  EXPECT_GE(fi.report().injected, 10u);
  EXPECT_TRUE(fi.report().invariants_hold());

  FaultPlan low;
  low.add(FaultSpec::stuck_at(1.0, 0, false));
  FaultInjector fi0(1, low);
  EXPECT_EQ(fi0.corrupt_bus_word(0xff), 0xfe);
}

TEST(FaultInjector, StarvationAndStallReturnSpecParams) {
  FaultPlan plan;
  plan.add(FaultSpec::bus_grant_starvation(1.0, 9))
      .add(FaultSpec::peripheral_stall(1.0, 33));
  FaultInjector fi(1, plan);
  EXPECT_EQ(fi.grant_starvation_cycles(), 9u);
  EXPECT_EQ(fi.peripheral_stall_cycles(), 33u);

  FaultPlan hang;
  hang.add(FaultSpec::peripheral_stall(1.0, 5))
      .add(FaultSpec::peripheral_hang(1.0));
  FaultInjector fih(1, hang);
  EXPECT_EQ(fih.peripheral_stall_cycles(), FaultSpec::kHang);
}

TEST(FaultInjector, KernelCorruptionAppliesMaskOrRandomNonZero) {
  FaultPlan plan;
  plan.add(FaultSpec::kernel_result_corruption(1.0, 0xf0));
  FaultInjector fi(1, plan);
  EXPECT_EQ(fi.corrupt_kernel_result(0), 0xf0);

  FaultPlan rnd;
  rnd.add(FaultSpec::kernel_result_corruption(1.0));
  FaultInjector fir(1, rnd);
  for (int i = 0; i < 20; ++i) {
    EXPECT_NE(fir.corrupt_kernel_result(42), 42);
  }
}

TEST(FaultInjector, DmaHooksFireAtRateOne) {
  FaultPlan plan;
  plan.add(FaultSpec::dma_drop(1.0)).add(FaultSpec::dma_duplicate(1.0));
  FaultInjector fi(1, plan);
  EXPECT_TRUE(fi.drop_dma_burst());
  EXPECT_TRUE(fi.duplicate_dma_burst());
  EXPECT_EQ(fi.report().injected, 2u);
}

TEST(EffectiveSeed, EnvOverrideWinsWhenParseable) {
  ASSERT_EQ(setenv("MHS_FAULT_SEED", "123", 1), 0);
  EXPECT_EQ(effective_seed(42), 123u);
  ASSERT_EQ(setenv("MHS_FAULT_SEED", "not-a-number", 1), 0);
  EXPECT_EQ(effective_seed(42), 42u);
  ASSERT_EQ(unsetenv("MHS_FAULT_SEED"), 0);
  EXPECT_EQ(effective_seed(42), 42u);
}

}  // namespace
}  // namespace mhs::fault

namespace mhs::sim {
namespace {

/// Drives the accelerator co-simulation through the sim::run seam.
CosimReport accel_cosim(
    const hw::HlsResult& impl, const CosimConfig& config,
    const std::vector<std::vector<std::int64_t>>& samples) {
  SimRequest sreq;
  sreq.impl = &impl;
  sreq.samples = &samples;
  sreq.cosim = config;
  return run(sreq).cosim.value();
}

hw::HlsResult make_impl(const ir::Cdfg& kernel) {
  static hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  return hw::synthesize(kernel, lib, constraints);
}

std::vector<std::vector<std::int64_t>> random_samples(
    const ir::Cdfg& kernel, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::int64_t>> samples;
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<std::int64_t> in;
    for (std::size_t k = 0; k < kernel.inputs().size(); ++k) {
      in.push_back(rng.uniform_int(-1000, 1000));
    }
    samples.push_back(std::move(in));
  }
  return samples;
}

std::int64_t reference_checksum(const ir::Cdfg& kernel,
                                const std::vector<std::vector<std::int64_t>>&
                                    samples) {
  std::int64_t sum = 0;
  for (const auto& s : samples) {
    std::map<std::string, std::int64_t> in;
    std::size_t k = 0;
    for (const ir::OpId id : kernel.inputs()) {
      in[kernel.op(id).name] = s[k++];
    }
    for (const auto& [name, value] : kernel.evaluate(in)) sum += value;
  }
  return sum;
}

// --------------------------------------------------- component-level hooks

TEST(FaultBus, GrantStarvationDelaysEveryAccess) {
  Simulator clean_sim;
  BusModel clean(clean_sim, BusConfig{}, InterfaceLevel::kRegister);
  clean.access(0x1000, false);
  clean_sim.run();
  const Time clean_t = clean_sim.now();

  fault::FaultPlan plan;
  plan.add(fault::FaultSpec::bus_grant_starvation(1.0, 10));
  fault::FaultInjector fi(1, plan);
  Simulator sim;
  BusModel bus(sim, BusConfig{}, InterfaceLevel::kRegister);
  bus.set_fault_injector(&fi);
  bus.access(0x1000, false);
  sim.run();
  EXPECT_EQ(sim.now(), clean_t + 10);
  EXPECT_EQ(fi.report().injected, 1u);
}

struct FaultPeriphFixture : public ::testing::Test {
  FaultPeriphFixture()
      : impl(make_impl(kernel)),
        periph(sim, impl, InterfaceLevel::kRegister) {}

  void load_and_go() {
    for (std::size_t k = 0; k < kernel.inputs().size(); ++k) {
      periph.reg_write(PeripheralLayout::kInputBase + 8 * k, 1);
    }
    periph.reg_write(PeripheralLayout::kCtrl, 1);
  }

  ir::Cdfg kernel = apps::fir_kernel(4);
  hw::HlsResult impl;
  Simulator sim;
  StreamPeripheral periph;
};

TEST_F(FaultPeriphFixture, StallPostponesCompletionByParamCycles) {
  fault::FaultPlan plan;
  plan.add(fault::FaultSpec::peripheral_stall(1.0, 25));
  fault::FaultInjector fi(1, plan);
  periph.set_fault_injector(&fi);
  load_and_go();
  EXPECT_EQ(periph.busy_until(), periph.latency() + 25);
  sim.run();
  EXPECT_TRUE(periph.done());
  EXPECT_EQ(sim.now(), periph.latency() + 25);
}

TEST_F(FaultPeriphFixture, HangNeverCompletesUntilReset) {
  fault::FaultPlan plan;
  fault::FaultSpec hang = fault::FaultSpec::peripheral_hang(1.0);
  hang.max_count = 1;
  plan.add(hang);
  fault::FaultInjector fi(1, plan);
  periph.set_fault_injector(&fi);
  load_and_go();
  EXPECT_EQ(periph.busy_until(), StreamPeripheral::kNever);
  sim.run();
  EXPECT_TRUE(periph.busy());
  EXPECT_FALSE(periph.done());

  // RESET (ctrl bit 2) clears the hang; the retried activation succeeds
  // and any stale completion from the hung one stays discarded.
  periph.reg_write(PeripheralLayout::kCtrl, 4);
  EXPECT_FALSE(periph.busy());
  load_and_go();
  EXPECT_NE(periph.busy_until(), StreamPeripheral::kNever);
  sim.run();
  EXPECT_TRUE(periph.done());
}

TEST_F(FaultPeriphFixture, GoWhileBusyIsDroppedUnderInjection) {
  fault::FaultPlan plan;
  plan.add(fault::FaultSpec::peripheral_stall(1.0, 1000));
  fault::FaultInjector fi(1, plan);
  periph.set_fault_injector(&fi);
  load_and_go();
  const Time first_busy_until = periph.busy_until();
  periph.reg_write(PeripheralLayout::kCtrl, 1);  // GO while busy: dropped
  EXPECT_EQ(periph.busy_until(), first_busy_until);
  EXPECT_EQ(periph.activations(), 1u);
}

TEST_F(FaultPeriphFixture, ResultCorruptionChangesOutputs) {
  fault::FaultPlan plan;
  plan.add(fault::FaultSpec::kernel_result_corruption(1.0, 0xff));
  fault::FaultInjector fi(1, plan);
  periph.set_fault_injector(&fi);
  load_and_go();
  sim.run();
  std::map<std::string, std::int64_t> in;
  for (const ir::OpId id : kernel.inputs()) in[kernel.op(id).name] = 1;
  const std::int64_t truth = kernel.evaluate(in).begin()->second;
  EXPECT_EQ(periph.reg_read(PeripheralLayout::kOutputBase), truth ^ 0xff);
}

struct FaultDmaFixture : public ::testing::Test {
  FaultDmaFixture()
      : impl(make_impl(kernel)),
        bus(sim, BusConfig{}, InterfaceLevel::kRegister),
        device(sim, impl, InterfaceLevel::kRegister) {}

  DmaMemoryPort port() {
    return DmaMemoryPort{
        [this](std::uint64_t addr) { return memory[addr]; },
        [this](std::uint64_t addr, std::int64_t v) { memory[addr] = v; }};
  }

  ir::Cdfg kernel = apps::fir_kernel(4);
  hw::HlsResult impl;
  Simulator sim;
  BusModel bus;
  StreamPeripheral device;
  std::map<std::uint64_t, std::int64_t> memory;
};

TEST_F(FaultDmaFixture, DroppedBurstKillsTransferWithoutCompletion) {
  fault::FaultPlan plan;
  plan.add(fault::FaultSpec::dma_drop(1.0));
  fault::FaultInjector fi(1, plan);
  DmaEngine dma(sim, bus, port(), device);
  dma.set_fault_injector(&fi);
  int completions = 0;
  dma.set_completion_callback([&] { ++completions; });
  for (std::size_t k = 0; k < 4; ++k) memory[0x1000 + 8 * k] = 11;
  dma.start(DmaDirection::kMemToDevice, 0x1000,
            PeripheralLayout::kInputBase, 32);
  sim.run();
  EXPECT_FALSE(dma.busy());
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(dma.transfers_completed(), 0u);
  EXPECT_EQ(dma.transfers_dropped(), 1u);
}

TEST_F(FaultDmaFixture, DuplicatedBurstReplaysOnBusButLandsOnce) {
  fault::FaultPlan plan;
  fault::FaultSpec dup = fault::FaultSpec::dma_duplicate(1.0);
  dup.max_count = 1;
  plan.add(dup);
  fault::FaultInjector fi(1, plan);
  DmaEngine dma(sim, bus, port(), device, /*burst_bytes=*/32);
  dma.set_fault_injector(&fi);
  for (std::size_t k = 0; k < 4; ++k) {
    memory[0x1000 + 8 * k] = static_cast<std::int64_t>(k + 1);
  }
  dma.start(DmaDirection::kMemToDevice, 0x1000,
            PeripheralLayout::kInputBase, 32);
  sim.run();
  EXPECT_EQ(dma.bursts_issued(), 2u);  // one logical burst, replayed
  EXPECT_EQ(dma.transfers_completed(), 1u);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(device.reg_read(PeripheralLayout::kInputBase + 8 * k),
              static_cast<std::int64_t>(k + 1));
  }
}

TEST_F(FaultDmaFixture, CancelMidFlightDisarmsPendingBurstEvents) {
  DmaEngine dma(sim, bus, port(), device, /*burst_bytes=*/8);
  for (std::size_t k = 0; k < 4; ++k) memory[0x1000 + 8 * k] = 77;
  dma.start(DmaDirection::kMemToDevice, 0x1000,
            PeripheralLayout::kInputBase, 32);
  // Let the first burst land, then cancel with later bursts in flight.
  sim.advance_to(sim.now() + 1);
  dma.cancel();
  EXPECT_FALSE(dma.busy());
  const std::int64_t before = device.reg_read(PeripheralLayout::kInputBase +
                                              8 * 3);
  sim.run();  // disarmed events pop harmlessly
  EXPECT_EQ(device.reg_read(PeripheralLayout::kInputBase + 8 * 3), before);
  EXPECT_EQ(dma.transfers_completed(), 0u);

  // The engine is reusable after a cancellation.
  dma.start(DmaDirection::kMemToDevice, 0x1000,
            PeripheralLayout::kInputBase, 32);
  sim.run();
  EXPECT_EQ(dma.transfers_completed(), 1u);
}

TEST_F(FaultDmaFixture, TeardownWithInFlightEventsDoesNotCrash) {
  // Regression: the completion event of a mid-flight transfer used to
  // fire into a destroyed engine. The epoch token now disarms it.
  {
    DmaEngine dma(sim, bus, port(), device, /*burst_bytes=*/8);
    for (std::size_t k = 0; k < 4; ++k) memory[0x1000 + 8 * k] = 5;
    dma.start(DmaDirection::kMemToDevice, 0x1000,
              PeripheralLayout::kInputBase, 32);
  }  // engine destroyed with burst events still queued
  sim.run();  // must not touch the dead engine
  SUCCEED();
}

// ------------------------------------------------------ cosim differential

struct LevelGolden {
  InterfaceLevel level;
  bool use_irq;
  double cycles;
  std::uint64_t events;
  std::uint64_t bus_accesses;
};

TEST(FaultCosim, FaultFreeRunsMatchPrePrBaseline) {
  // Golden numbers captured from the co-simulator before mhs::fault
  // existed: a disabled plan must leave every level bit-identical.
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::HlsResult impl = make_impl(kernel);
  const auto samples = random_samples(kernel, 6, 42);
  const std::int64_t want_checksum = -184;
  ASSERT_EQ(reference_checksum(kernel, samples), want_checksum);

  const LevelGolden goldens[] = {
      {InterfaceLevel::kPin, false, 450.0, 330, 54},
      {InterfaceLevel::kPin, true, 482.0, 270, 42},
      {InterfaceLevel::kRegister, false, 450.0, 60, 54},
      {InterfaceLevel::kRegister, true, 482.0, 48, 42},
      {InterfaceLevel::kDriver, false, 540.0, 18, 12},
      {InterfaceLevel::kMessage, false, 2460.0, 12, 12},
  };
  for (const LevelGolden& g : goldens) {
    CosimConfig cfg;
    cfg.level = g.level;
    cfg.use_irq = g.use_irq;
    // A plan object with only zero-rate specs is as good as no plan.
    cfg.fault_plan.add(fault::FaultSpec::bus_bit_flip(0.0))
        .add(fault::FaultSpec::dma_drop(0.0));
    const CosimReport report = accel_cosim(impl, cfg, samples);
    const std::string what = std::string(interface_level_name(g.level)) +
                             (g.use_irq ? "+irq" : "");
    EXPECT_EQ(report.total_cycles, g.cycles) << what;
    EXPECT_EQ(report.sim_events, g.events) << what;
    EXPECT_EQ(report.bus_accesses, g.bus_accesses) << what;
    EXPECT_EQ(report.checksum, want_checksum) << what;
    EXPECT_TRUE(report.resilience.empty()) << what;
  }
}

// --------------------------------------------------- determinism under load

fault::FaultPlan mixed_plan() {
  fault::FaultPlan plan;
  plan.add(fault::FaultSpec::bus_bit_flip(0.02))
      .add(fault::FaultSpec::bus_grant_starvation(0.05, 6))
      .add(fault::FaultSpec::peripheral_stall(0.2, 40))
      .add(fault::FaultSpec::kernel_result_corruption(0.1, 0x100));
  return plan;
}

TEST(FaultCosim, SameSeedAndPlanReproduceBitExactlyAtEveryLevel) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::HlsResult impl = make_impl(kernel);
  const auto samples = random_samples(kernel, 8, 11);
  for (const InterfaceLevel level : kAllInterfaceLevels) {
    CosimConfig cfg;
    cfg.level = level;
    cfg.fault_plan = mixed_plan();
    cfg.fault_seed = 77;
    const CosimReport a = accel_cosim(impl, cfg, samples);
    const CosimReport b = accel_cosim(impl, cfg, samples);
    EXPECT_EQ(a.checksum, b.checksum) << interface_level_name(level);
    EXPECT_EQ(a.total_cycles, b.total_cycles) << interface_level_name(level);
    EXPECT_EQ(a.sim_events, b.sim_events) << interface_level_name(level);
    EXPECT_EQ(a.resilience, b.resilience) << interface_level_name(level);
    EXPECT_TRUE(a.resilience.invariants_hold())
        << interface_level_name(level);
    EXPECT_GT(a.resilience.injected, 0u) << interface_level_name(level);
  }
}

TEST(FaultCosim, DifferentSeedsScheduleDifferentFaults) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::HlsResult impl = make_impl(kernel);
  const auto samples = random_samples(kernel, 8, 11);
  CosimConfig cfg;
  cfg.level = InterfaceLevel::kRegister;
  cfg.fault_plan = mixed_plan();
  cfg.fault_seed = 1;
  const CosimReport a = accel_cosim(impl, cfg, samples);
  cfg.fault_seed = 2;
  const CosimReport b = accel_cosim(impl, cfg, samples);
  EXPECT_FALSE(a.resilience == b.resilience &&
               a.checksum == b.checksum &&
               a.total_cycles == b.total_cycles);
}

TEST(FaultCosim, MhsFaultSeedEnvOverridesConfigSeed) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::HlsResult impl = make_impl(kernel);
  const auto samples = random_samples(kernel, 6, 11);
  CosimConfig cfg;
  cfg.level = InterfaceLevel::kDriver;
  cfg.fault_plan = mixed_plan();
  cfg.fault_seed = 1000;
  const CosimReport direct = [&] {
    CosimConfig c = cfg;
    c.fault_seed = 31337;
    return accel_cosim(impl, c, samples);
  }();
  ASSERT_EQ(setenv("MHS_FAULT_SEED", "31337", 1), 0);
  const CosimReport via_env = accel_cosim(impl, cfg, samples);
  ASSERT_EQ(unsetenv("MHS_FAULT_SEED"), 0);
  EXPECT_EQ(via_env.resilience, direct.resilience);
  EXPECT_EQ(via_env.checksum, direct.checksum);
}

// -------------------------------------------------------- recovery paths

TEST(FaultRecovery, SingleHangIsDetectedAndRetriedAtDriverLevel) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::HlsResult impl = make_impl(kernel);
  const auto samples = random_samples(kernel, 4, 9);
  CosimConfig cfg;
  cfg.level = InterfaceLevel::kDriver;
  fault::FaultSpec hang = fault::FaultSpec::peripheral_hang(1.0);
  hang.max_count = 1;
  cfg.fault_plan.add(hang);
  const CosimReport report = accel_cosim(impl, cfg, samples);
  EXPECT_EQ(report.checksum, reference_checksum(kernel, samples));
  EXPECT_EQ(report.resilience.injected, 1u);
  EXPECT_EQ(report.resilience.detected, 1u);
  EXPECT_EQ(report.resilience.recovered, 1u);
  EXPECT_EQ(report.resilience.retries, 1u);
  EXPECT_EQ(report.resilience.degradations, 0u);
  EXPECT_GT(report.resilience.recovery_cycles, 0u);
  EXPECT_GT(report.profile.cycles(obs::Profile::kFaultRecovery), 0u);
}

TEST(FaultRecovery, SingleHangIsRecoveredAtIssLevels) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::HlsResult impl = make_impl(kernel);
  const auto samples = random_samples(kernel, 4, 9);
  for (const InterfaceLevel level :
       {InterfaceLevel::kPin, InterfaceLevel::kRegister}) {
    CosimConfig cfg;
    cfg.level = level;
    fault::FaultSpec hang = fault::FaultSpec::peripheral_hang(1.0);
    hang.max_count = 1;
    cfg.fault_plan.add(hang);
    const CosimReport report = accel_cosim(impl, cfg, samples);
    EXPECT_EQ(report.checksum, reference_checksum(kernel, samples))
        << interface_level_name(level);
    EXPECT_EQ(report.resilience.recovered, 1u)
        << interface_level_name(level);
    EXPECT_GE(report.resilience.retries, 1u) << interface_level_name(level);
    EXPECT_EQ(report.resilience.degradations, 0u)
        << interface_level_name(level);
  }
}

TEST(FaultRecovery, SingleHangIsRecoveredAtMessageLevel) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::HlsResult impl = make_impl(kernel);
  const auto samples = random_samples(kernel, 4, 9);
  CosimConfig cfg;
  cfg.level = InterfaceLevel::kMessage;
  fault::FaultSpec hang = fault::FaultSpec::peripheral_hang(1.0);
  hang.max_count = 1;
  cfg.fault_plan.add(hang);
  const CosimReport report = accel_cosim(impl, cfg, samples);
  EXPECT_EQ(report.checksum, reference_checksum(kernel, samples));
  EXPECT_EQ(report.resilience.recovered, 1u);
  EXPECT_EQ(report.resilience.degradations, 0u);
}

TEST(FaultRecovery, BackoffDoublesTheWindowUpToTheCap) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::HlsResult impl = make_impl(kernel);
  const auto samples = random_samples(kernel, 1, 9);
  CosimConfig cfg;
  cfg.level = InterfaceLevel::kDriver;
  fault::FaultSpec hang = fault::FaultSpec::peripheral_hang(1.0);
  hang.max_count = 3;  // first three activations hang, the fourth works
  cfg.fault_plan.add(hang);
  cfg.resilience.timeout_cycles = 100;
  cfg.resilience.backoff_cap = 2;  // windows: 100, 200, 200
  cfg.resilience.max_retries = 3;
  const CosimReport report = accel_cosim(impl, cfg, samples);
  EXPECT_EQ(report.checksum, reference_checksum(kernel, samples));
  EXPECT_EQ(report.resilience.detected, 3u);
  EXPECT_EQ(report.resilience.recovered, 1u);
  // The watchdog windows are exactly the backed-off-and-capped sequence.
  EXPECT_EQ(report.profile.cycles(obs::Profile::kFaultRecovery),
            100u + 200u + 200u);
}

TEST(FaultRecovery, DegradationFallsBackToSoftwareAfterRetriesExhaust) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::HlsResult impl = make_impl(kernel);
  const auto samples = random_samples(kernel, 6, 9);
  CosimConfig cfg;
  cfg.level = InterfaceLevel::kDriver;
  cfg.fault_plan.add(fault::FaultSpec::peripheral_hang(1.0));
  cfg.resilience.max_retries = 1;
  cfg.resilience.degrade_after = 2;  // sticky after two failed samples
  const CosimReport report = accel_cosim(impl, cfg, samples);
  // Every sample still computes the right answer — in software.
  EXPECT_EQ(report.checksum, reference_checksum(kernel, samples));
  EXPECT_EQ(report.resilience.degradations, samples.size());
  EXPECT_EQ(report.resilience.recovered, 0u);
  // Only the first two samples attempt hardware (then the driver sticks).
  // Only the first two samples attempt hardware (1 retry each) before
  // degradation goes sticky; the rest run the SW fallback directly.
  EXPECT_EQ(report.resilience.retries, 2u);
  EXPECT_TRUE(report.resilience.invariants_hold());
}

TEST(FaultRecovery, ResilientIsaDriverDegradesAndStaysCorrect) {
  // The generated (ISS-executed) resilient driver must reach the same
  // checksum through its inlined software fallback — the relocated
  // kernel body, the register save/restore, and the monitor protocol all
  // have to be right for this to hold.
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::HlsResult impl = make_impl(kernel);
  const auto samples = random_samples(kernel, 5, 13);
  for (const bool use_irq : {false, true}) {
    CosimConfig cfg;
    cfg.level = InterfaceLevel::kRegister;
    cfg.use_irq = use_irq;
    cfg.background_unroll = use_irq ? 2 : 0;
    cfg.fault_plan.add(fault::FaultSpec::peripheral_hang(1.0));
    cfg.resilience.max_retries = 1;
    cfg.resilience.degrade_after = 1;
    const CosimReport report = accel_cosim(impl, cfg, samples);
    EXPECT_EQ(report.checksum, reference_checksum(kernel, samples))
        << (use_irq ? "irq" : "polling");
    EXPECT_EQ(report.resilience.degradations, samples.size())
        << (use_irq ? "irq" : "polling");
    EXPECT_EQ(report.resilience.recovered, 0u);
    EXPECT_TRUE(report.resilience.invariants_hold());
  }
}

TEST(FaultRecovery, MessageLevelDegradationStaysCorrect) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::HlsResult impl = make_impl(kernel);
  const auto samples = random_samples(kernel, 6, 13);
  CosimConfig cfg;
  cfg.level = InterfaceLevel::kMessage;
  cfg.fault_plan.add(fault::FaultSpec::peripheral_hang(1.0));
  cfg.resilience.max_retries = 2;
  cfg.resilience.degrade_after = 1;
  const CosimReport report = accel_cosim(impl, cfg, samples);
  EXPECT_EQ(report.checksum, reference_checksum(kernel, samples));
  EXPECT_EQ(report.resilience.degradations, samples.size());
  EXPECT_EQ(report.hw_activations, 0u);
}

TEST(FaultRecovery, VerifyWritesCatchesBusCorruptionAtDriverLevel) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::HlsResult impl = make_impl(kernel);
  const auto samples = random_samples(kernel, 6, 17);
  CosimConfig cfg;
  cfg.level = InterfaceLevel::kDriver;
  cfg.fault_plan.add(fault::FaultSpec::bus_bit_flip(0.1, 13));
  cfg.resilience.verify_writes = true;
  const CosimReport report = accel_cosim(impl, cfg, samples);
  EXPECT_GT(report.resilience.injected, 0u);
  EXPECT_GT(report.resilience.detected, 0u);
  EXPECT_TRUE(report.resilience.invariants_hold());
}

TEST(FaultRecovery, ProfileBucketsSumToTotalUnderInjection) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::HlsResult impl = make_impl(kernel);
  const auto samples = random_samples(kernel, 8, 23);
  for (const InterfaceLevel level : kAllInterfaceLevels) {
    CosimConfig cfg;
    cfg.level = level;
    cfg.fault_plan = mixed_plan();
    const CosimReport report = accel_cosim(impl, cfg, samples);
    std::uint64_t sum = 0;
    for (std::size_t c = 0; c < obs::Profile::kNumCategories; ++c) {
      sum += report.profile.cycles(static_cast<obs::Profile::Category>(c));
    }
    EXPECT_EQ(sum, report.profile.total()) << interface_level_name(level);
    EXPECT_EQ(static_cast<double>(report.profile.total()),
              report.total_cycles)
        << interface_level_name(level);
  }
}

TEST(FaultObs, CountersAndRecoveryHistogramReachTheRegistry) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::HlsResult impl = make_impl(kernel);
  const auto samples = random_samples(kernel, 4, 9);
  obs::Registry registry;
  {
    obs::ScopedRegistry scope(registry);
    CosimConfig cfg;
    cfg.level = InterfaceLevel::kDriver;
    fault::FaultSpec hang = fault::FaultSpec::peripheral_hang(1.0);
    hang.max_count = 1;
    cfg.fault_plan.add(hang);
    (void)accel_cosim(impl, cfg, samples);
  }
  EXPECT_EQ(registry.counter("fault.injected"), 1u);
  EXPECT_EQ(registry.counter("fault.detected"), 1u);
  EXPECT_EQ(registry.counter("fault.recovered"), 1u);
  bool saw_hist = false;
  for (const obs::HistStat& h : registry.summary().hists) {
    saw_hist = saw_hist || h.name == "fault.recovery_cycles";
  }
  EXPECT_TRUE(saw_hist);
}

}  // namespace
}  // namespace mhs::sim

namespace mhs::core {
namespace {

// The component library must outlive every HlsResult synthesized from it
// (HlsResult keeps a pointer), so it is a function-local static, not a
// temporary.
hw::HlsResult make_impl(const ir::Cdfg& kernel) {
  static hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  return hw::synthesize(kernel, lib, constraints);
}

TEST(FaultFlow, ResilienceReportFlowsIntoTheUnifiedReport) {
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  FlowConfig cfg = FlowConfig::defaults()
                       .with_fault_plan(fault::FaultPlan{}.add(
                           fault::FaultSpec::peripheral_stall(0.5, 50)))
                       .with_fault_seed(5);
  const FlowReport report = run_codesign_flow(w.graph, w.kernels, cfg);
  ASSERT_TRUE(report.cosim.has_value());
  ASSERT_EQ(report.report.resilience.size(), 1u);
  EXPECT_EQ(report.report.resilience[0], report.cosim->resilience);
  EXPECT_TRUE(report.report.resilience[0].invariants_hold());
  EXPECT_NE(report.report.str().find("faults injected"), std::string::npos);
}

TEST(FaultFlow, FaultFreeFlowKeepsReportResilienceEmpty) {
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  const FlowReport report =
      run_codesign_flow(w.graph, w.kernels, FlowConfig::defaults());
  EXPECT_TRUE(report.report.resilience.empty());
}

TEST(FaultFlow, ThreadCountDoesNotChangeResilienceResults) {
  // Determinism satellite: each run owns its injector, so a batch of
  // faulty co-simulations spread over the explorer's thread pool at
  // 1/2/4/8 threads must produce identical ResilienceReports, checksums,
  // and predicted times.
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::HlsResult impl = make_impl(kernel);
  Rng rng(19);
  std::vector<std::vector<std::int64_t>> samples;
  for (int s = 0; s < 6; ++s) {
    std::vector<std::int64_t> in;
    for (std::size_t k = 0; k < kernel.inputs().size(); ++k) {
      in.push_back(rng.uniform_int(-500, 500));
    }
    samples.push_back(std::move(in));
  }
  constexpr std::size_t kRuns = 8;
  const auto run_batch = [&](std::size_t threads) {
    std::vector<sim::CosimReport> out(kRuns);
    ThreadPool pool(threads);
    pool.parallel_for(kRuns, [&](std::size_t i) {
      sim::CosimConfig cfg;
      cfg.level = sim::kAllInterfaceLevels[i % 4];
      cfg.fault_plan.add(fault::FaultSpec::peripheral_stall(0.4, 60))
          .add(fault::FaultSpec::bus_bit_flip(0.02));
      cfg.fault_seed = 100 + i;
      sim::SimRequest sreq;
      sreq.impl = &impl;
      sreq.samples = &samples;
      sreq.cosim = cfg;
      out[i] = sim::run(sreq).cosim.value();
    });
    return out;
  };
  const std::vector<sim::CosimReport> baseline = run_batch(1);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const std::vector<sim::CosimReport> got = run_batch(threads);
    for (std::size_t i = 0; i < kRuns; ++i) {
      EXPECT_EQ(got[i].resilience, baseline[i].resilience)
          << "run " << i << " at " << threads << " threads";
      EXPECT_EQ(got[i].checksum, baseline[i].checksum) << i;
      EXPECT_EQ(got[i].total_cycles, baseline[i].total_cycles) << i;
      EXPECT_EQ(got[i].sim_events, baseline[i].sim_events) << i;
      EXPECT_TRUE(got[i].resilience.invariants_hold()) << i;
    }
  }
}

TEST(FaultFlow, InterfaceSynthesisScoresDriversUnderInjection) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::HlsResult impl = make_impl(kernel);
  Rng rng(3);
  std::vector<std::vector<std::int64_t>> samples;
  for (int s = 0; s < 6; ++s) {
    std::vector<std::int64_t> in;
    for (std::size_t k = 0; k < kernel.inputs().size(); ++k) {
      in.push_back(rng.uniform_int(-100, 100));
    }
    samples.push_back(std::move(in));
  }
  cosynth::InterfaceRequirements reqs;
  reqs.fault_plan.add(fault::FaultSpec::peripheral_stall(0.4, 60));
  reqs.fault_seed = 21;
  cosynth::AddressMapAllocator allocator;
  cosynth::Request request;
  request.impl = &impl;
  request.interface_reqs = reqs;
  request.samples = &samples;
  request.allocator = &allocator;
  const cosynth::InterfaceDesign design =
      *cosynth::run(cosynth::Target::kInterface, request).iface;
  ASSERT_EQ(design.candidates.size(), 2u);
  for (const cosynth::DriverCandidate& cand : design.candidates) {
    EXPECT_GT(cand.report.resilience.injected, 0u);
    EXPECT_TRUE(cand.report.resilience.invariants_hold());
  }
}

}  // namespace
}  // namespace mhs::core
