// Tests for the bench_report library: BENCH_<name>.json schema
// checking, lossless aggregation, baseline parsing, and the
// direction-aware regression comparator the CI gate builds on.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "apps/bench_report/report_lib.h"

namespace mhs::apps {
namespace {

std::string doc_text(const std::string& name, double lower_metric,
                     double higher_metric) {
  std::ostringstream os;
  os << "{\"schema_version\": 1, \"name\": \"" << name
     << "\", \"title\": \"t\", \"git_rev\": \"abc\", \"wall_ms\": 12.5, "
        "\"metrics\": ["
     << "{\"name\": \"wall\", \"value\": " << lower_metric
     << ", \"unit\": \"ms\", \"direction\": \"lower\"},"
     << "{\"name\": \"speedup\", \"value\": " << higher_metric
     << ", \"unit\": \"x\", \"direction\": \"higher\"},"
     << "{\"name\": \"points\", \"value\": 80, \"direction\": \"info\"}"
     << "], \"claims\": [{\"text\": \"holds\", \"held\": true}]}";
  return os.str();
}

TEST(BenchReport, ParsesWellFormedDocument) {
  std::string error;
  const std::optional<BenchDoc> doc =
      parse_bench_doc(doc_text("bench_x", 100.0, 2.0), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->name, "bench_x");
  EXPECT_EQ(doc->title, "t");
  EXPECT_EQ(doc->git_rev, "abc");
  EXPECT_DOUBLE_EQ(doc->wall_ms, 12.5);
  ASSERT_EQ(doc->metrics.size(), 3u);
  EXPECT_EQ(doc->metrics[0].name, "wall");
  EXPECT_EQ(doc->metrics[0].direction, "lower");
  EXPECT_EQ(doc->metrics[0].unit, "ms");
  EXPECT_EQ(doc->metrics[2].direction, "info");
  ASSERT_EQ(doc->claims.size(), 1u);
  EXPECT_TRUE(doc->claims[0].held);
}

TEST(BenchReport, RejectsSchemaViolations) {
  std::string error;
  EXPECT_FALSE(parse_bench_doc("not json", &error).has_value());
  EXPECT_NE(error.find("invalid JSON"), std::string::npos);
  EXPECT_FALSE(parse_bench_doc("[1, 2]", &error).has_value());
  EXPECT_FALSE(
      parse_bench_doc("{\"name\": \"x\", \"metrics\": [], \"claims\": []}",
                      &error)
          .has_value());
  EXPECT_NE(error.find("schema_version"), std::string::npos);
  EXPECT_FALSE(parse_bench_doc("{\"schema_version\": 2, \"name\": \"x\", "
                               "\"metrics\": [], \"claims\": []}",
                               &error)
                   .has_value());
  EXPECT_NE(error.find("unsupported"), std::string::npos);
  // Missing name / metrics / claims.
  EXPECT_FALSE(parse_bench_doc("{\"schema_version\": 1, \"metrics\": [], "
                               "\"claims\": []}",
                               &error)
                   .has_value());
  EXPECT_FALSE(parse_bench_doc(
                   "{\"schema_version\": 1, \"name\": \"x\", \"claims\": []}",
                   &error)
                   .has_value());
  EXPECT_FALSE(parse_bench_doc(
                   "{\"schema_version\": 1, \"name\": \"x\", \"metrics\": []}",
                   &error)
                   .has_value());
  // Ill-typed metric entries and unknown directions.
  EXPECT_FALSE(parse_bench_doc("{\"schema_version\": 1, \"name\": \"x\", "
                               "\"metrics\": [{\"name\": \"m\"}], "
                               "\"claims\": []}",
                               &error)
                   .has_value());
  EXPECT_FALSE(parse_bench_doc("{\"schema_version\": 1, \"name\": \"x\", "
                               "\"metrics\": [{\"name\": \"m\", \"value\": 1, "
                               "\"direction\": \"sideways\"}], "
                               "\"claims\": []}",
                               &error)
                   .has_value());
  EXPECT_NE(error.find("sideways"), std::string::npos);
  // Ill-typed claim.
  EXPECT_FALSE(parse_bench_doc("{\"schema_version\": 1, \"name\": \"x\", "
                               "\"metrics\": [], "
                               "\"claims\": [{\"text\": \"c\"}]}",
                               &error)
                   .has_value());
}

TEST(BenchReport, DetectsInjectedSlowdownPastThreshold) {
  std::string error;
  // Baseline wall 100 ms; current 120 ms — a 20% slowdown on a
  // lower-is-better metric must trip the default 10% threshold.
  const std::vector<BenchDoc> baseline = {
      *parse_bench_doc(doc_text("bench_x", 100.0, 2.0), &error)};
  const std::vector<BenchDoc> current = {
      *parse_bench_doc(doc_text("bench_x", 120.0, 2.0), &error)};
  const std::vector<Regression> regressions =
      compare_to_baseline(current, baseline, 10.0);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_EQ(regressions[0].bench, "bench_x");
  EXPECT_EQ(regressions[0].metric, "wall");
  EXPECT_DOUBLE_EQ(regressions[0].baseline, 100.0);
  EXPECT_DOUBLE_EQ(regressions[0].current, 120.0);
  EXPECT_NEAR(regressions[0].change_pct, 20.0, 1e-9);
  // The rendered comparison flags it.
  const std::string table = comparison_table(current, baseline, 10.0);
  EXPECT_NE(table.find("REGRESSED"), std::string::npos);
}

TEST(BenchReport, SmallChangesStayWithinThreshold) {
  std::string error;
  const std::vector<BenchDoc> baseline = {
      *parse_bench_doc(doc_text("bench_x", 100.0, 2.0), &error)};
  // 5% slower: within the 10% slack.
  const std::vector<BenchDoc> five = {
      *parse_bench_doc(doc_text("bench_x", 105.0, 2.0), &error)};
  EXPECT_TRUE(compare_to_baseline(five, baseline, 10.0).empty());
  // 20% faster is an improvement, never a regression.
  const std::vector<BenchDoc> faster = {
      *parse_bench_doc(doc_text("bench_x", 80.0, 2.0), &error)};
  EXPECT_TRUE(compare_to_baseline(faster, baseline, 10.0).empty());
  // A tighter threshold catches the 5%.
  EXPECT_EQ(compare_to_baseline(five, baseline, 2.0).size(), 1u);
}

TEST(BenchReport, HigherIsBetterDirectionInverts) {
  std::string error;
  const std::vector<BenchDoc> baseline = {
      *parse_bench_doc(doc_text("bench_x", 100.0, 4.0), &error)};
  // Speedup fell 4.0 -> 3.0 (-25%): regression for a "higher" metric.
  const std::vector<BenchDoc> current = {
      *parse_bench_doc(doc_text("bench_x", 100.0, 3.0), &error)};
  const std::vector<Regression> regressions =
      compare_to_baseline(current, baseline, 10.0);
  ASSERT_EQ(regressions.size(), 1u);
  EXPECT_EQ(regressions[0].metric, "speedup");
  EXPECT_LT(regressions[0].change_pct, 0.0);
  // A rising speedup never regresses.
  const std::vector<BenchDoc> better = {
      *parse_bench_doc(doc_text("bench_x", 100.0, 8.0), &error)};
  EXPECT_TRUE(compare_to_baseline(better, baseline, 10.0).empty());
}

TEST(BenchReport, InfoMetricsAndUnmatchedNamesNeverRegress) {
  std::string error;
  // "points" is info-direction: a 10x change is not a regression.
  std::string moved = doc_text("bench_x", 100.0, 2.0);
  const std::vector<BenchDoc> baseline = {*parse_bench_doc(moved, &error)};
  std::string shifted = moved;
  const std::size_t pos = shifted.find("\"value\": 80");
  shifted.replace(pos, 11, "\"value\": 800");
  const std::vector<BenchDoc> current = {*parse_bench_doc(shifted, &error)};
  EXPECT_TRUE(compare_to_baseline(current, baseline, 10.0).empty());
  // A bench missing from the baseline is skipped entirely.
  const std::vector<BenchDoc> other = {
      *parse_bench_doc(doc_text("bench_y", 500.0, 0.1), &error)};
  EXPECT_TRUE(compare_to_baseline(other, baseline, 10.0).empty());
  EXPECT_TRUE(comparison_table(other, baseline, 10.0).empty());
}

TEST(BenchReport, AggregateRoundTripsAsBaseline) {
  std::string error;
  const std::vector<BenchDoc> docs = {
      *parse_bench_doc(doc_text("bench_a", 10.0, 1.5), &error),
      *parse_bench_doc(doc_text("bench_b", 20.0, 3.0), &error)};
  const std::string aggregate = aggregate_json(docs);
  const std::optional<std::vector<BenchDoc>> round =
      parse_baseline(aggregate, &error);
  ASSERT_TRUE(round.has_value()) << error;
  ASSERT_EQ(round->size(), 2u);
  EXPECT_EQ((*round)[0].name, "bench_a");
  EXPECT_EQ((*round)[1].name, "bench_b");
  ASSERT_EQ((*round)[1].metrics.size(), 3u);
  EXPECT_DOUBLE_EQ((*round)[1].metrics[0].value, 20.0);
  // The round-tripped docs compare clean against the originals.
  EXPECT_TRUE(compare_to_baseline(docs, *round, 10.0).empty());
  // A single document also works as a baseline.
  const std::optional<std::vector<BenchDoc>> single =
      parse_baseline(doc_text("bench_a", 10.0, 1.5), &error);
  ASSERT_TRUE(single.has_value()) << error;
  EXPECT_EQ(single->size(), 1u);
  // An empty aggregate parses to zero docs.
  const std::optional<std::vector<BenchDoc>> none =
      parse_baseline(aggregate_json({}), &error);
  ASSERT_TRUE(none.has_value()) << error;
  EXPECT_TRUE(none->empty());
}

TEST(BenchReport, SummaryTableListsEveryBench) {
  std::string error;
  const std::vector<BenchDoc> docs = {
      *parse_bench_doc(doc_text("bench_a", 10.0, 1.5), &error),
      *parse_bench_doc(doc_text("bench_b", 20.0, 3.0), &error)};
  const std::string table = summary_table(docs);
  EXPECT_NE(table.find("bench_a"), std::string::npos);
  EXPECT_NE(table.find("bench_b"), std::string::npos);
  EXPECT_NE(table.find("1/1"), std::string::npos);
  EXPECT_NE(table.find("abc"), std::string::npos);
}

TEST(BenchReport, CollectInputsScansDirectoriesForBenchJson) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "mhs_bench_report_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::ofstream(dir / "BENCH_a.json") << "{}";
  std::ofstream(dir / "BENCH_b.json") << "{}";
  std::ofstream(dir / "other.json") << "{}";
  std::ofstream(dir / "BENCH_c.txt") << "{}";
  std::string error;
  const std::optional<std::vector<std::string>> files =
      collect_inputs({dir.string()}, &error);
  ASSERT_TRUE(files.has_value()) << error;
  ASSERT_EQ(files->size(), 2u);  // only BENCH_*.json, sorted
  EXPECT_NE((*files)[0].find("BENCH_a.json"), std::string::npos);
  EXPECT_NE((*files)[1].find("BENCH_b.json"), std::string::npos);
  // An explicit file path is taken as-is, and deduplicated against the
  // directory scan.
  const std::optional<std::vector<std::string>> mixed = collect_inputs(
      {dir.string(), (dir / "BENCH_a.json").string()}, &error);
  ASSERT_TRUE(mixed.has_value());
  EXPECT_EQ(mixed->size(), 2u);
  // Nonexistent paths are an error.
  EXPECT_FALSE(
      collect_inputs({(dir / "missing.json").string()}, &error).has_value());
  EXPECT_NE(error.find("missing.json"), std::string::npos);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mhs::apps
