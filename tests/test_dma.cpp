// Tests for the DMA engine and multi-master bus arbitration.
#include <gtest/gtest.h>

#include <map>

#include "apps/kernels.h"
#include "sim/dma.h"

namespace mhs::sim {
namespace {

struct DmaFixture : public ::testing::Test {
  DmaFixture()
      : impl(hw::synthesize(kernel, lib,
                            hw::HlsConstraints{hw::HlsGoal::kMinArea, 0, {}, {}})),
        bus(sim, BusConfig{}, InterfaceLevel::kRegister),
        device(sim, impl, InterfaceLevel::kRegister) {}

  DmaMemoryPort port() {
    return DmaMemoryPort{
        [this](std::uint64_t addr) { return memory[addr]; },
        [this](std::uint64_t addr, std::int64_t v) { memory[addr] = v; }};
  }

  ir::Cdfg kernel = apps::fir_kernel(4);
  hw::ComponentLibrary lib = hw::default_library();
  hw::HlsResult impl;
  Simulator sim;
  BusModel bus;
  StreamPeripheral device;
  std::map<std::uint64_t, std::int64_t> memory;
};

TEST_F(DmaFixture, MovesInputsToDeviceAndResultsBack) {
  DmaEngine dma(sim, bus, port(), device);
  // Sample data in "CPU memory".
  for (std::size_t k = 0; k < 4; ++k) {
    memory[0x1000 + 8 * k] = static_cast<std::int64_t>((k + 1)) << 16;
  }

  int completions = 0;
  dma.set_completion_callback([&] { ++completions; });

  dma.start(DmaDirection::kMemToDevice, 0x1000,
            PeripheralLayout::kInputBase, 4 * 8);
  EXPECT_TRUE(dma.busy());
  sim.run();
  EXPECT_FALSE(dma.busy());
  EXPECT_EQ(completions, 1);

  // Start the device directly and let it finish.
  device.reg_write(PeripheralLayout::kCtrl, 1);
  sim.run();
  ASSERT_TRUE(device.done());

  // DMA the single output word back.
  dma.start(DmaDirection::kDeviceToMem, 0x2000,
            PeripheralLayout::kOutputBase, 8);
  sim.run();
  EXPECT_EQ(completions, 2);

  // Cross-check against the functional reference.
  std::map<std::string, std::int64_t> in;
  std::size_t k = 0;
  for (const ir::OpId id : kernel.inputs()) {
    in[kernel.op(id).name] = memory[0x1000 + 8 * k++];
  }
  EXPECT_EQ(memory[0x2000], kernel.evaluate(in).at("y"));
}

TEST_F(DmaFixture, BurstsSplitLargeTransfers) {
  DmaEngine dma(sim, bus, port(), device, /*burst_bytes=*/16);
  for (std::size_t k = 0; k < 4; ++k) memory[0x1000 + 8 * k] = 1;
  dma.start(DmaDirection::kMemToDevice, 0x1000,
            PeripheralLayout::kInputBase, 32);
  sim.run();
  EXPECT_EQ(dma.bursts_issued(), 2u);  // 32 bytes in 16-byte bursts
  EXPECT_EQ(dma.transfers_completed(), 1u);
}

TEST_F(DmaFixture, RejectsMisuse) {
  DmaEngine dma(sim, bus, port(), device);
  EXPECT_THROW(dma.start(DmaDirection::kMemToDevice, 0x1001,
                         PeripheralLayout::kInputBase, 8),
               PreconditionError);  // unaligned
  EXPECT_THROW(dma.start(DmaDirection::kMemToDevice, 0x1000,
                         PeripheralLayout::kInputBase, 4),
               PreconditionError);  // not a word multiple
  dma.start(DmaDirection::kMemToDevice, 0x1000,
            PeripheralLayout::kInputBase, 8);
  EXPECT_THROW(dma.start(DmaDirection::kMemToDevice, 0x1000,
                         PeripheralLayout::kInputBase, 8),
               PreconditionError);  // busy
}

TEST_F(DmaFixture, CpuAccessWaitsForDmaBurst) {
  DmaEngine dma(sim, bus, port(), device, /*burst_bytes=*/32);
  memory[0x1000] = 7;
  memory[0x1008] = 7;
  memory[0x1010] = 7;
  memory[0x1018] = 7;
  dma.start(DmaDirection::kMemToDevice, 0x1000,
            PeripheralLayout::kInputBase, 32);
  // The DMA reserved the bus starting at t=0; a CPU access issued now
  // must wait for the burst to finish.
  const Time burst_cost = bus.block_cost(32);
  const Time elapsed = bus.access(0x10008, /*is_write=*/false);
  EXPECT_GE(elapsed, burst_cost + bus.word_cost());
  sim.run();
  EXPECT_FALSE(dma.busy());
}

TEST_F(DmaFixture, DmaBurstWaitsForEarlierCpuTraffic) {
  // CPU grabs the bus first; the DMA's first burst is granted afterwards.
  bus.access(0x10000, true);
  const Time cpu_done = bus.free_at();
  DmaEngine dma(sim, bus, port(), device, 32);
  memory[0x1000] = 1;
  // Reserve happens inside start(); grant must be >= the CPU completion.
  dma.start(DmaDirection::kMemToDevice, 0x1000,
            PeripheralLayout::kInputBase, 8);
  EXPECT_GE(bus.free_at(), cpu_done + bus.block_cost(8));
  sim.run();
  EXPECT_EQ(device.reg_read(PeripheralLayout::kInputBase), 1);
}

TEST_F(DmaFixture, ConcurrencyWinOverCpuCopy) {
  // Scenario: move 4 input words and start the device, while the CPU has
  // 200 cycles of unrelated compute to do.
  //
  // CPU-copy: the CPU performs 4 bus accesses (serial with its compute).
  // DMA:      the engine moves the block while the CPU computes.
  const Time compute = 200;

  // CPU-copy timeline.
  Time cpu_copy_finish = 0;
  {
    Simulator s2;
    BusModel b2(s2, BusConfig{}, InterfaceLevel::kRegister);
    Time t = 0;
    for (int k = 0; k < 4; ++k) t += b2.access(0x10000 + 8 * k, true);
    cpu_copy_finish = t + compute;  // copy first, then compute
  }

  // DMA timeline: reservation runs concurrently with compute.
  const Time dma_cost = bus.block_cost(32);
  const Time dma_finish = std::max(dma_cost, compute);

  EXPECT_LT(dma_finish, cpu_copy_finish);
}

}  // namespace
}  // namespace mhs::sim
