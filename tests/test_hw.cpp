// Unit tests for mhs::hw — component library, scheduling, binding, FSM
// controller, HLS driver, datapath simulation, incremental estimation.
#include <gtest/gtest.h>

#include "apps/kernels.h"
#include "base/rng.h"
#include "hw/binding.h"
#include "hw/estimate.h"
#include "hw/fsm.h"
#include "hw/hls.h"
#include "hw/schedule.h"

namespace mhs::hw {
namespace {

/// y = (a+b) * (c+d); two adds are parallel, then one multiply.
ir::Cdfg two_add_mul() {
  ir::Cdfg c("two_add_mul");
  const ir::OpId a = c.input("a");
  const ir::OpId b = c.input("b");
  const ir::OpId d = c.input("c");
  const ir::OpId e = c.input("d");
  c.output("y", c.mul(c.add(a, b), c.add(d, e)));
  return c;
}

TEST(ComponentLibrary, OpToFuMapping) {
  EXPECT_EQ(fu_for_op(ir::OpKind::kAdd), FuType::kAlu);
  EXPECT_EQ(fu_for_op(ir::OpKind::kMin), FuType::kAlu);
  EXPECT_EQ(fu_for_op(ir::OpKind::kMul), FuType::kMul);
  EXPECT_EQ(fu_for_op(ir::OpKind::kDiv), FuType::kDiv);
  EXPECT_EQ(fu_for_op(ir::OpKind::kShl), FuType::kShift);
  EXPECT_THROW(fu_for_op(ir::OpKind::kConst), PreconditionError);
}

TEST(ComponentLibrary, DefaultLatencies) {
  const ComponentLibrary lib = default_library();
  EXPECT_EQ(lib.op_latency(ir::OpKind::kAdd), 1u);
  EXPECT_EQ(lib.op_latency(ir::OpKind::kMul), 2u);
  EXPECT_EQ(lib.op_latency(ir::OpKind::kDiv), 8u);
  EXPECT_EQ(lib.op_latency(ir::OpKind::kInput), 0u);
}

TEST(Schedule, AsapIsMinimumLatency) {
  const ir::Cdfg c = two_add_mul();
  const ComponentLibrary lib = default_library();
  const Schedule s = asap_schedule(c, lib);
  // adds at step 0 (1 cycle), mul at step 1 (2 cycles) -> 3 steps.
  EXPECT_EQ(s.num_steps(), 3u);
  const FuCounts peak = s.peak_usage();
  EXPECT_EQ(peak[FuType::kAlu], 2u);  // both adds in parallel
  EXPECT_EQ(peak[FuType::kMul], 1u);
}

TEST(Schedule, AlapMeetsBoundAndDefersWork) {
  const ir::Cdfg c = two_add_mul();
  const ComponentLibrary lib = default_library();
  const Schedule s = alap_schedule(c, lib, 5);
  EXPECT_LE(s.num_steps(), 5u);
  const FuCounts peak = s.peak_usage();
  EXPECT_EQ(peak[FuType::kMul], 1u);
  EXPECT_THROW(alap_schedule(c, lib, 1), PreconditionError);
}

TEST(Schedule, ListScheduleHonorsResources) {
  const ir::Cdfg c = two_add_mul();
  const ComponentLibrary lib = default_library();
  FuCounts res;
  res[FuType::kAlu] = 1;
  res[FuType::kMul] = 1;
  const Schedule s = list_schedule(c, lib, res);
  // adds serialized: steps 0 and 1, mul starts at 2 -> 4 steps.
  EXPECT_EQ(s.num_steps(), 4u);
  for (std::size_t step = 0; step < s.num_steps(); ++step) {
    EXPECT_LE(s.fu_usage(FuType::kAlu, step), 1u);
    EXPECT_LE(s.fu_usage(FuType::kMul, step), 1u);
  }
}

TEST(Schedule, ListScheduleRejectsZeroNeededResource) {
  const ir::Cdfg c = two_add_mul();
  const ComponentLibrary lib = default_library();
  FuCounts res;
  res[FuType::kAlu] = 1;  // no multiplier
  EXPECT_THROW(list_schedule(c, lib, res), PreconditionError);
}

TEST(Schedule, ForceDirectedReducesPeakVsAsap) {
  // A wide kernel: 6 independent multiplies feeding an add chain.
  ir::Cdfg c("wide");
  std::vector<ir::OpId> products;
  for (int i = 0; i < 6; ++i) {
    products.push_back(c.mul(c.input("a" + std::to_string(i)),
                             c.input("b" + std::to_string(i))));
  }
  ir::OpId acc = products[0];
  for (int i = 1; i < 6; ++i) acc = c.add(acc, products[i]);
  c.output("y", acc);

  const ComponentLibrary lib = default_library();
  const Schedule asap = asap_schedule(c, lib);
  const std::size_t bound = asap.num_steps() + 6;
  const Schedule fds = force_directed_schedule(c, lib, bound);
  EXPECT_LE(fds.num_steps(), bound);
  EXPECT_LT(fds.peak_usage()[FuType::kMul],
            asap.peak_usage()[FuType::kMul]);
}

TEST(Schedule, VerifyCatchesPrecedenceViolation) {
  ir::Cdfg c("v");
  const ir::OpId a = c.input("a");
  const ir::OpId m = c.mul(a, a);
  c.output("y", m);
  const ComponentLibrary lib = default_library();
  // mul (index 1) starts at 0, output (index 2) at 1 — but mul takes 2.
  EXPECT_THROW(Schedule(c, lib, {0, 0, 1}), InternalError);
}

TEST(Binding, SharesFusAcrossSteps) {
  const ir::Cdfg c = two_add_mul();
  const ComponentLibrary lib = default_library();
  FuCounts res;
  res[FuType::kAlu] = 1;
  res[FuType::kMul] = 1;
  const Schedule s = list_schedule(c, lib, res);
  const Binding b = bind(s);
  EXPECT_EQ(b.fu_counts[FuType::kAlu], 1u);  // both adds share one ALU
  EXPECT_EQ(b.fu_counts[FuType::kMul], 1u);
  // The shared ALU's input ports see two different sources -> muxes.
  EXPECT_GT(b.mux_inputs, 0u);
}

TEST(Binding, ParallelOpsGetDistinctInstances) {
  const ir::Cdfg c = two_add_mul();
  const ComponentLibrary lib = default_library();
  const Schedule s = asap_schedule(c, lib);
  const Binding b = bind(s);
  EXPECT_EQ(b.fu_counts[FuType::kAlu], 2u);
  // Values crossing the step boundary (add results feeding the mul at
  // step 1) need registers.
  EXPECT_GE(b.num_registers, 1u);
}

TEST(Binding, NeverExceedsSchedulePeak) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    ir::Cdfg c("rand");
    std::vector<ir::OpId> values;
    for (int i = 0; i < 4; ++i) {
      values.push_back(c.input("x" + std::to_string(i)));
    }
    for (int i = 0; i < 12; ++i) {
      const ir::OpId a = values[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(values.size()) - 1))];
      const ir::OpId b = values[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(values.size()) - 1))];
      const ir::OpKind kinds[] = {ir::OpKind::kAdd, ir::OpKind::kMul,
                                  ir::OpKind::kSub, ir::OpKind::kXor};
      values.push_back(c.binary(kinds[rng.uniform_int(0, 3)], a, b));
    }
    c.output("y", values.back());
    const ComponentLibrary lib = default_library();
    const Schedule s = asap_schedule(c, lib);
    const Binding b = bind(s);  // bind() verifies internally
    const FuCounts peak = s.peak_usage();
    for (std::size_t t = 0; t < kNumFuTypes; ++t) {
      EXPECT_LE(b.fu_counts.count[t],
                std::max<std::size_t>(peak.count[t], 1));
    }
  }
}

TEST(Controller, StatesMatchScheduleAndBitsAssert) {
  const ir::Cdfg c = two_add_mul();
  const ComponentLibrary lib = default_library();
  const Schedule s = asap_schedule(c, lib);
  const Binding b = bind(s);
  const Controller ctrl(s, b);
  EXPECT_EQ(ctrl.num_states(), s.num_steps());
  EXPECT_GT(ctrl.num_control_bits(), 0u);
  // The multiply occupies steps 1 and 2: its enable must assert there.
  const std::size_t mul_enable = ctrl.fu_enable_bit(FuType::kMul, 0);
  EXPECT_FALSE(ctrl.asserted(0, mul_enable));
  EXPECT_TRUE(ctrl.asserted(1, mul_enable));
  EXPECT_TRUE(ctrl.asserted(2, mul_enable));
  EXPECT_FALSE(ctrl.dump().empty());
}

TEST(Hls, GoalsTradeLatencyForArea) {
  const ir::Cdfg c = apps::dct8_kernel();
  const ComponentLibrary lib = default_library();
  HlsConstraints fast;
  fast.goal = HlsGoal::kMinLatency;
  HlsConstraints small;
  small.goal = HlsGoal::kMinArea;
  const HlsResult rf = synthesize(c, lib, fast);
  const HlsResult rs = synthesize(c, lib, small);
  EXPECT_LT(rf.latency, rs.latency);
  EXPECT_GT(rf.area.fu, rs.area.fu);
  EXPECT_GT(rf.area.total(), 0.0);
  EXPECT_GT(rs.area.controller, 0.0);
}

TEST(Hls, LatencyConstrainedRespectsBound) {
  const ir::Cdfg c = apps::fir_kernel(8);
  const ComponentLibrary lib = default_library();
  HlsConstraints fastest;
  fastest.goal = HlsGoal::kMinLatency;
  const std::size_t min_latency = synthesize(c, lib, fastest).latency;
  HlsConstraints mid;
  mid.goal = HlsGoal::kLatencyConstrained;
  mid.latency_bound = min_latency + 8;
  const HlsResult r = synthesize(c, lib, mid);
  EXPECT_LE(r.latency, min_latency + 8);
}

TEST(Hls, DatapathSimulationMatchesEvaluator) {
  const ir::Cdfg kernels[] = {apps::fir_kernel(6), apps::median5_kernel(),
                              apps::dct8_kernel()};
  for (const ir::Cdfg& c : kernels) {
    const ComponentLibrary lib = default_library();
    for (const HlsGoal goal : {HlsGoal::kMinLatency, HlsGoal::kMinArea}) {
      HlsConstraints constraints;
      constraints.goal = goal;
      const HlsResult impl = synthesize(c, lib, constraints);
      Rng rng(99);
      std::map<std::string, std::int64_t> in;
      for (const ir::OpId id : c.inputs()) {
        in[c.op(id).name] = rng.uniform_int(-1000, 1000);
      }
      std::size_t cycles = 0;
      const auto hw_out = simulate_datapath(impl, in, &cycles);
      const auto ref_out = c.evaluate(in);
      EXPECT_EQ(hw_out, ref_out) << c.name();
      EXPECT_EQ(cycles, impl.latency);
    }
  }
}

TEST(Estimate, ProfileFromHlsReflectsBinding) {
  const ir::Cdfg c = two_add_mul();
  const ComponentLibrary lib = default_library();
  HlsConstraints constraints;
  const HlsResult impl = synthesize(c, lib, constraints);
  const HwProfile p = profile_from_hls(impl);
  EXPECT_EQ(p.fu[FuType::kAlu], impl.binding.fu_counts[FuType::kAlu]);
  EXPECT_EQ(p.states, impl.latency);
}

TEST(Estimate, IncrementalMatchesFromScratch) {
  const ComponentLibrary lib = default_library();
  Rng rng(17);
  std::vector<HwProfile> profiles;
  for (std::size_t i = 0; i < 20; ++i) {
    ir::TaskCosts costs;
    costs.sw_cycles = rng.uniform(500, 5000);
    costs.hw_cycles = costs.sw_cycles / rng.uniform(4, 16);
    costs.hw_area = rng.uniform(200, 3000);
    costs.parallelism = rng.uniform();
    profiles.push_back(profile_from_costs(costs, lib));
  }

  IncrementalAreaEstimator inc(lib);
  std::vector<std::size_t> resident;
  for (int step = 0; step < 200; ++step) {
    const std::size_t key =
        static_cast<std::size_t>(rng.uniform_int(0, 19));
    if (inc.contains(key)) {
      inc.remove(key);
      resident.erase(std::find(resident.begin(), resident.end(), key));
    } else {
      inc.add(key, profiles[key]);
      resident.push_back(key);
    }
    std::vector<HwProfile> current;
    for (const std::size_t k : resident) current.push_back(profiles[k]);
    EXPECT_NEAR(inc.area(), shared_area_from_scratch(lib, current), 1e-9)
        << "step " << step;
  }
}

TEST(Estimate, SharingBeatsSumOfParts) {
  const ComponentLibrary lib = default_library();
  ir::TaskCosts costs;
  costs.sw_cycles = 2000;
  costs.hw_cycles = 200;
  costs.hw_area = 1500;
  const HwProfile p = profile_from_costs(costs, lib);
  const std::vector<HwProfile> five(5, p);
  const double shared = shared_area_from_scratch(lib, five);
  const std::vector<HwProfile> one(1, p);
  const double unshared = 5.0 * shared_area_from_scratch(lib, one);
  EXPECT_LT(shared, unshared);
}

TEST(Estimate, AddRemoveGuards) {
  const ComponentLibrary lib = default_library();
  IncrementalAreaEstimator inc(lib);
  EXPECT_THROW(inc.remove(0), PreconditionError);
  inc.add(0, HwProfile{});
  EXPECT_THROW(inc.add(0, HwProfile{}), PreconditionError);
  EXPECT_EQ(inc.num_resident(), 1u);
  inc.remove(0);
  EXPECT_DOUBLE_EQ(inc.area(), 0.0);
}

class HlsKernelParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, HlsGoal>> {};

TEST_P(HlsKernelParam, FirFamilyFunctionalAcrossSizesAndGoals) {
  const auto [taps, goal] = GetParam();
  const ir::Cdfg c = apps::fir_kernel(taps);
  const ComponentLibrary lib = default_library();
  HlsConstraints constraints;
  constraints.goal = goal;
  const HlsResult impl = synthesize(c, lib, constraints);
  std::map<std::string, std::int64_t> in;
  for (const ir::OpId id : c.inputs()) {
    in[c.op(id).name] = static_cast<std::int64_t>(id.value()) << 16;
  }
  EXPECT_EQ(simulate_datapath(impl, in), c.evaluate(in));
  EXPECT_GE(impl.latency, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HlsKernelParam,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16, 32),
                       ::testing::Values(HlsGoal::kMinLatency,
                                         HlsGoal::kMinArea)));

}  // namespace
}  // namespace mhs::hw
