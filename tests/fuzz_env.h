// The fuzz-campaign environment contract, shared by every fuzzer in
// tests/ (absint_fuzz, fault_fuzz, equiv_fuzz):
//
//   * MHS_FUZZ_ITERS         — iteration count for ALL fuzzers (each has
//                              its own default scale; the sanitize gate
//                              dials this down, soak runs dial it up);
//   * MHS_<FUZZER>_SEED      — per-fuzzer base-seed override (e.g.
//                              MHS_EQUIV_SEED, MHS_ABSINT_SEED), so one
//                              campaign can be replayed or re-pointed at
//                              a different region of seed space without
//                              recompiling. Case i of a campaign always
//                              uses seed base + i, so any failure
//                              reproduces from the printed seed alone.
//
// Also hosts the UB-safe full-range draw helpers every fuzzer needs
// (Rng::uniform_int over the whole i64 span would compute hi - lo in
// signed arithmetic — UB the sanitize gate's UBSan build rejects).
#pragma once

#include <cstdint>
#include <cstdlib>

#include "base/rng.h"

namespace mhs::fuzz {

/// Campaign size: MHS_FUZZ_ITERS when set to a positive integer, else
/// `default_iters` (each fuzzer's own scale).
inline std::size_t fuzz_iters(std::size_t default_iters) {
  const char* env = std::getenv("MHS_FUZZ_ITERS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return default_iters;
}

/// Base seed: the named env var when set to a valid u64, else
/// `default_base`. Pass the fuzzer's own variable name (e.g.
/// "MHS_EQUIV_SEED") so campaigns stay independently steerable.
inline std::uint64_t fuzz_seed_base(const char* env_name,
                                    std::uint64_t default_base) {
  const char* env = std::getenv(env_name);
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != nullptr && *end == '\0') {
      return static_cast<std::uint64_t>(v);
    }
  }
  return default_base;
}

/// A full 64-bit draw composed from two half-width uniform_int calls.
inline std::uint64_t raw_u64(Rng& rng) {
  constexpr std::int64_t kHalf = (std::int64_t{1} << 32) - 1;
  const auto low = static_cast<std::uint64_t>(rng.uniform_int(0, kHalf));
  const auto high = static_cast<std::uint64_t>(rng.uniform_int(0, kHalf));
  return (high << 32) | low;
}

/// Uniform-ish draw in [lo, hi] inclusive, safe for arbitrary i64 spans.
/// (Modulo bias is irrelevant at fuzzing scale.)
inline std::int64_t draw_in_range(Rng& rng, std::int64_t lo, std::int64_t hi) {
  const std::uint64_t width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  if (width == ~std::uint64_t{0}) {
    return static_cast<std::int64_t>(raw_u64(rng));
  }
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   raw_u64(rng) % (width + 1));
}

}  // namespace mhs::fuzz
