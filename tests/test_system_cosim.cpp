// Tests for the full-system co-simulator (sim/system_cosim) and its
// agreement with the analytic cost model.
#include <gtest/gtest.h>

#include "apps/workloads.h"
#include "base/rng.h"
#include "base/stats.h"
#include "ir/task_graph_gen.h"
#include "sim/run.h"
#include "sim/system_cosim.h"

namespace mhs::sim {
namespace {

/// Drives the system co-simulation through the sim::run seam.
SystemCosimResult system_cosim(const ir::TaskGraph& graph,
                               const partition::Mapping& mapping,
                               const SystemCosimConfig& config = {}) {
  SimRequest sreq;
  sreq.level = Level::kSystem;
  sreq.graph = &graph;
  sreq.mapping = &mapping;
  sreq.system = config;
  return run(sreq).system.value();
}


TEST(SystemCosim, AllSwIsSerialSum) {
  const ir::TaskGraph g = apps::jpeg_pipeline_graph();
  const partition::Mapping all_sw(g.num_tasks(), false);
  const SystemCosimResult r = system_cosim(g, all_sw);
  EXPECT_NEAR(r.makespan, g.total_sw_cycles(), 2.0);
  EXPECT_NEAR(r.cpu_busy, g.total_sw_cycles(), 1e-9);
  EXPECT_DOUBLE_EQ(r.bus_busy, 0.0);
}

TEST(SystemCosim, HardwareTasksOverlap) {
  // Independent tasks all in HW finish in ~max, not sum.
  ir::TaskGraph g("par");
  g.add_task("a", {1000, 400, 100, 0, 0, 0});
  g.add_task("b", {1000, 300, 100, 0, 0, 0});
  g.add_task("c", {1000, 500, 100, 0, 0, 0});
  const partition::Mapping all_hw(3, true);
  const SystemCosimResult r = system_cosim(g, all_hw);
  EXPECT_NEAR(r.makespan, 500.0, 1.0);
}

TEST(SystemCosim, CrossEdgesPayBusCost) {
  ir::TaskGraph g("chain");
  const ir::TaskId a = g.add_task("a", {100, 10, 100, 0, 0, 0});
  const ir::TaskId b = g.add_task("b", {100, 10, 100, 0, 0, 0});
  g.add_edge(a, b, 400);
  const partition::Mapping split = {false, true};
  const SystemCosimResult r = system_cosim(g, split);
  // SW a (100) + cross transfer (24 + 400/4 = 124) + HW b (10).
  EXPECT_NEAR(r.makespan, 234.0, 2.0);
  EXPECT_NEAR(r.bus_busy, 124.0, 1e-9);
}

TEST(SystemCosim, BusContentionSerializesTransfers) {
  // Two HW producers finish simultaneously and both feed a SW consumer:
  // the second transfer must wait for the first.
  ir::TaskGraph g("contend");
  const ir::TaskId p1 = g.add_task("p1", {0, 100, 100, 0, 0, 0});
  const ir::TaskId p2 = g.add_task("p2", {0, 100, 100, 0, 0, 0});
  const ir::TaskId c = g.add_task("c", {50, 5, 100, 0, 0, 0});
  g.add_edge(p1, c, 400);
  g.add_edge(p2, c, 400);
  const partition::Mapping m = {true, true, false};
  const SystemCosimResult r = system_cosim(g, m);
  // Transfers cost 124 each; they serialize: second arrives at 100+248.
  EXPECT_GT(r.bus_wait, 0.0);
  EXPECT_NEAR(r.makespan, 100.0 + 2 * 124.0 + 50.0, 2.0);
}

TEST(SystemCosim, MatchesStaticModelWithoutContention) {
  // On a chain (never two simultaneous transfers) the dynamic engine and
  // the static list schedule agree exactly.
  Rng rng(6);
  ir::TaskGraphGenConfig cfg;
  cfg.shape = ir::GraphShape::kPipeline;
  cfg.num_tasks = 10;
  const ir::TaskGraph g = ir::generate_task_graph(cfg, rng);
  const partition::CostModel model(g, hw::default_library());
  for (int trial = 0; trial < 8; ++trial) {
    partition::Mapping m(g.num_tasks());
    for (std::size_t i = 0; i < m.size(); ++i) m[i] = rng.bernoulli(0.5);
    const double predicted = model.schedule_latency(m, true, true);
    const SystemCosimResult r = system_cosim(g, m);
    EXPECT_NEAR(r.makespan, predicted, predicted * 0.01 + 3.0);
  }
}

TEST(SystemCosim, NeverFasterThanCriticalPathAndTracksModel) {
  Rng rng(14);
  ir::TaskGraphGenConfig cfg;
  cfg.num_tasks = 14;
  const ir::TaskGraph g = ir::generate_task_graph(cfg, rng);
  const partition::CostModel model(g, hw::default_library());
  StatAccumulator rel_err;
  for (int trial = 0; trial < 12; ++trial) {
    partition::Mapping m(g.num_tasks());
    for (std::size_t i = 0; i < m.size(); ++i) m[i] = rng.bernoulli(0.5);
    const double predicted = model.schedule_latency(m, true, true);
    const SystemCosimResult r = system_cosim(g, m);
    rel_err.add(relative_error(r.makespan, predicted));
  }
  // The static model is a faithful guide: mean deviation small.
  EXPECT_LT(rel_err.mean(), 0.10);
}

TEST(SystemCosim, RejectsBadMapping) {
  const ir::TaskGraph g = apps::jpeg_pipeline_graph();
  EXPECT_THROW(
      system_cosim(g, partition::Mapping(2, false)),
      PreconditionError);
}

}  // namespace
}  // namespace mhs::sim
