// Tests for mhs::obs — the flow-wide observability layer: span
// recording/nesting, cross-thread counter aggregation, Chrome-trace JSON
// export + well-formedness, the disabled-sink no-op guarantee, and the
// core::Report envelope the flow and explorer fill in.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/kernels.h"
#include "apps/workloads.h"
#include "base/rng.h"
#include "core/explorer.h"
#include "core/flow.h"
#include "core/report.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "sim/cosim.h"
#include "sim/run.h"

namespace mhs::obs {
namespace {

/// Drives the accelerator co-simulation through the sim::run seam.
sim::CosimReport accel_cosim(
    const hw::HlsResult& impl, const sim::CosimConfig& config,
    const std::vector<std::vector<std::int64_t>>& samples) {
  sim::SimRequest sreq;
  sreq.impl = &impl;
  sreq.samples = &samples;
  sreq.cosim = config;
  return sim::run(sreq).cosim.value();
}


TEST(Obs, DisabledByDefaultAndSpansInert) {
  ASSERT_EQ(registry(), nullptr);
  EXPECT_FALSE(enabled());
  Span span("orphan", "test");
  EXPECT_FALSE(span.active());
  span.arg("key", "value");  // must be a no-op, not a crash
  count("orphan.counter", 5);  // likewise
  // Nothing was recorded anywhere: installing a fresh registry afterwards
  // sees an empty world.
  Registry r;
  EXPECT_EQ(r.num_events(), 0u);
  EXPECT_EQ(r.counter("orphan.counter"), 0u);
}

TEST(Obs, UninstalledRegistryRecordsNothing) {
  Registry r;  // constructed but never installed
  { Span span("ignored", "test"); }
  count("ignored", 1);
  EXPECT_EQ(r.num_events(), 0u);
  EXPECT_EQ(r.counter("ignored"), 0u);
}

TEST(Obs, SpanRecordsNameCategoryAndDuration) {
  Registry r;
  {
    ScopedRegistry scope(r);
    Span span("work", "test");
    EXPECT_TRUE(span.active());
  }
  ASSERT_EQ(r.num_events(), 1u);
  const std::vector<SpanEvent> events = r.events();
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].category, "test");
  EXPECT_GE(events[0].start_us, 0.0);
  EXPECT_GE(events[0].dur_us, 0.0);
}

TEST(Obs, NestedSpansBothRecordedInnerWithinOuter) {
  Registry r;
  {
    ScopedRegistry scope(r);
    Span outer("outer", "test");
    {
      Span inner("inner", "test");
    }
  }
  ASSERT_EQ(r.num_events(), 2u);
  const std::vector<SpanEvent> events = r.events();  // (start, tid, name)
  // The outer span starts first but finishes last; sorting by start time
  // puts it first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_LE(events[0].start_us, events[1].start_us);
  EXPECT_GE(events[0].start_us + events[0].dur_us,
            events[1].start_us + events[1].dur_us);
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST(Obs, SpanMoveTransfersOwnershipWithoutDoubleRecord) {
  Registry r;
  {
    ScopedRegistry scope(r);
    Span span;
    EXPECT_FALSE(span.active());
    if (enabled()) {
      span = Span(std::string("dynamic[") + "7]", "test");
      span.arg("index", "7");
    }
    EXPECT_TRUE(span.active());
    Span moved(std::move(span));
    EXPECT_FALSE(span.active());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(moved.active());
  }
  ASSERT_EQ(r.num_events(), 1u);
  const SpanEvent event = r.events()[0];
  EXPECT_EQ(event.name, "dynamic[7]");
  ASSERT_EQ(event.args.size(), 1u);
  EXPECT_EQ(event.args[0].first, "index");
  EXPECT_EQ(event.args[0].second, "7");
}

TEST(Obs, CountersAggregateAcrossThreads) {
  Registry r;
  {
    ScopedRegistry scope(r);
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kPerThread = 1000;
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([] {
        for (std::size_t i = 0; i < kPerThread; ++i) count("shared", 1);
        count("per_thread_once", 3);
      });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(r.counter("shared"), kThreads * kPerThread);
    EXPECT_EQ(r.counter("per_thread_once"), kThreads * 3u);
  }
}

TEST(Obs, SpansFromDistinctThreadsGetDistinctTids) {
  Registry r;
  {
    ScopedRegistry scope(r);
    Span main_span("main", "test");
    std::thread worker([] { Span span("worker", "test"); });
    worker.join();
  }
  ASSERT_EQ(r.num_events(), 2u);
  const std::vector<SpanEvent> events = r.events();
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(Obs, SummaryAggregatesByCategoryAndName) {
  Registry r;
  {
    ScopedRegistry scope(r);
    for (int i = 0; i < 3; ++i) Span span("kl", "partition");
    Span other("estimate", "flow");
    count("cache.hits", 41);
    count("cache.hits", 1);
  }
  const Summary s = r.summary();
  ASSERT_EQ(s.spans.size(), 2u);
  // Sorted by (category, name): flow/estimate before partition/kl.
  EXPECT_EQ(s.spans[0].category, "flow");
  EXPECT_EQ(s.spans[0].name, "estimate");
  EXPECT_EQ(s.spans[0].count, 1u);
  EXPECT_EQ(s.spans[1].category, "partition");
  EXPECT_EQ(s.spans[1].name, "kl");
  EXPECT_EQ(s.spans[1].count, 3u);
  EXPECT_GE(s.spans[1].max_us, s.spans[1].min_us);
  EXPECT_GE(s.spans[1].total_us, s.spans[1].max_us);
  ASSERT_EQ(s.counters.size(), 1u);
  EXPECT_EQ(s.counters[0].name, "cache.hits");
  EXPECT_EQ(s.counters[0].value, 42u);
  // The plain-text rendering mentions every aggregate.
  const std::string table = s.table();
  EXPECT_NE(table.find("kl"), std::string::npos);
  EXPECT_NE(table.find("estimate"), std::string::npos);
  EXPECT_NE(table.find("cache.hits"), std::string::npos);
  EXPECT_NE(table.find("42"), std::string::npos);
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(Summary{}.empty());
}

TEST(Obs, ChromeTraceJsonIsWellFormedAndEscaped) {
  Registry r;
  {
    ScopedRegistry scope(r);
    Span span("name with \"quotes\" and \\slashes\\", "cat\negory");
    span.arg("key", "line1\nline2\ttabbed");
    count("counter/with\"quote", 7);
  }
  const std::string json = r.chrome_trace_json();
  EXPECT_TRUE(json_is_valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(Obs, JsonValidatorAcceptsValidDocuments) {
  EXPECT_TRUE(json_is_valid("{}"));
  EXPECT_TRUE(json_is_valid("[]"));
  EXPECT_TRUE(json_is_valid("  {\"a\": [1, -2.5e3, true, false, null]} "));
  EXPECT_TRUE(json_is_valid("{\"s\": \"\\\"\\\\\\n\\u0041\"}"));
  EXPECT_TRUE(json_is_valid("[[[{\"deep\": []}]]]"));
}

TEST(Obs, JsonValidatorRejectsMalformedDocuments) {
  EXPECT_FALSE(json_is_valid(""));
  EXPECT_FALSE(json_is_valid("{"));
  EXPECT_FALSE(json_is_valid("{\"a\":}"));
  EXPECT_FALSE(json_is_valid("[1,]"));
  EXPECT_FALSE(json_is_valid("{\"a\": 1} trailing"));
  EXPECT_FALSE(json_is_valid("{'single': 1}"));
  EXPECT_FALSE(json_is_valid("{\"bad\": \"\\q\"}"));
  EXPECT_FALSE(json_is_valid("{\"bad\": \"\\u12g4\"}"));
  EXPECT_FALSE(json_is_valid("01"));
  EXPECT_FALSE(json_is_valid("nul"));
}

TEST(Obs, JsonEscapeRoundTripsThroughValidator) {
  const std::string nasty = "\"\\\n\r\t\x01 plain";
  const std::string doc = "{\"k\": \"" + json_escape(nasty) + "\"}";
  EXPECT_TRUE(json_is_valid(doc)) << doc;
}

TEST(Obs, JsonParseReportsErrorPositions) {
  JsonError error;
  // The offending character is the second ',' on line 3.
  EXPECT_FALSE(json_parse("{\n  \"a\": 1,\n  \"b\": [1,, 2]\n}", &error));
  EXPECT_EQ(error.line, 3u);
  EXPECT_EQ(error.column, 11u);
  EXPECT_EQ(error.str(), "line 3, column 11: expected a value");

  // Single-line: column counts from 1.
  EXPECT_FALSE(json_parse("[1, x]", &error));
  EXPECT_EQ(error.line, 1u);
  EXPECT_EQ(error.column, 5u);

  // Unexpected end of input points one past the last character.
  EXPECT_FALSE(json_parse("{\"a\": ", &error));
  EXPECT_EQ(error.line, 1u);
  EXPECT_EQ(error.column, 7u);
  EXPECT_NE(error.message.find("end of input"), std::string::npos);

  // Trailing garbage after a complete document.
  EXPECT_FALSE(json_parse("{} {}", &error));
  EXPECT_EQ(error.column, 4u);
  EXPECT_NE(error.message.find("trailing"), std::string::npos);

  // The deepest (first) failure wins, not an enclosing context.
  EXPECT_FALSE(json_parse("{\"s\": \"ab\\q\"}", &error));
  EXPECT_EQ(error.line, 1u);
  EXPECT_EQ(error.column, 11u);
  EXPECT_NE(error.message.find("escape"), std::string::npos);

  // Success leaves the error untouched and returns the value.
  error = JsonError{};
  const auto parsed = json_parse("{\"ok\": 1}", &error);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(error.message.empty());
}

TEST(Obs, ScopedRegistryRestoresPreviousSink) {
  Registry outer_r;
  {
    ScopedRegistry outer(outer_r);
    EXPECT_EQ(registry(), &outer_r);
    {
      Registry inner_r;
      ScopedRegistry inner(inner_r);
      EXPECT_EQ(registry(), &inner_r);
      count("where", 1);
      EXPECT_EQ(inner_r.counter("where"), 1u);
      EXPECT_EQ(outer_r.counter("where"), 0u);
    }
    EXPECT_EQ(registry(), &outer_r);
  }
  EXPECT_EQ(registry(), nullptr);
}

// -- End-to-end: the instrumented flow and explorer.

TEST(ObsFlow, CodesignFlowEmitsAllFivePhaseSpans) {
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  core::FlowConfig config;
  config.cosim_samples = 2;
  Registry r;
  core::FlowReport report;
  {
    ScopedRegistry scope(r);
    report = core::run_codesign_flow(w.graph, w.kernels, config);
  }
  const Summary s = r.summary();
  for (const char* phase :
       {"specify", "estimate", "partition", "cosynth", "cosim"}) {
    bool found = false;
    for (const SpanStat& span : s.spans) {
      if (span.category == "flow" && span.name == phase) found = true;
    }
    EXPECT_TRUE(found) << "missing flow phase span: " << phase;
  }
  // The partition phase ran a strategy underneath, with its counters.
  EXPECT_GE(r.counter("partition." +
                      std::string(partition::strategy_name(config.strategy)) +
                      ".runs"),
            1u);
  // Co-simulation ran and counted its events.
  ASSERT_TRUE(report.cosim.has_value());
  EXPECT_EQ(r.counter("cosim.events"), report.cosim->sim_events);
  EXPECT_EQ(r.counter("cosim.samples"), config.cosim_samples);
  // The trace export is valid Chrome trace JSON.
  const std::string json = r.chrome_trace_json();
  EXPECT_TRUE(json_is_valid(json));
  for (const char* phase :
       {"specify", "estimate", "partition", "cosynth", "cosim"}) {
    EXPECT_NE(json.find(std::string("\"") + phase + "\""),
              std::string::npos)
        << phase;
  }
  // The flow's Report envelope embeds the summary and the design.
  EXPECT_FALSE(report.report.obs.empty());
  ASSERT_EQ(report.report.designs.size(), 1u);
  EXPECT_EQ(report.report.designs[0].target, "coprocessor");
  EXPECT_GT(report.report.wall_ms, 0.0);
  const std::string rendered = report.report.str();
  EXPECT_NE(rendered.find("coprocessor"), std::string::npos);
}

TEST(ObsFlow, DisabledRunProducesIdenticalDesign) {
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  core::FlowConfig config;
  config.cosim_samples = 2;
  const core::FlowReport plain =
      core::run_codesign_flow(w.graph, w.kernels, config);
  Registry r;
  core::FlowReport traced;
  {
    ScopedRegistry scope(r);
    traced = core::run_codesign_flow(w.graph, w.kernels, config);
  }
  // Tracing must not perturb results.
  EXPECT_EQ(plain.design.partition.mapping, traced.design.partition.mapping);
  EXPECT_DOUBLE_EQ(plain.design.latency(), traced.design.latency());
  EXPECT_DOUBLE_EQ(plain.design.area(), traced.design.area());
  // And the untraced run carries an empty obs summary.
  EXPECT_TRUE(plain.report.obs.empty());
  EXPECT_FALSE(traced.report.obs.empty());
}

TEST(ObsFlow, ExplorerEmitsPointSpansAndCacheCounters) {
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  core::Explorer::Options options;
  options.num_threads = 2;
  core::Explorer explorer(w.graph, w.kernels, options);
  const std::vector<core::FlowConfig> configs = {
      core::FlowConfig::defaults(),
      core::FlowConfig::defaults().without_kernel_optimization()};
  const std::vector<partition::Strategy> strategies = {
      partition::Strategy::kHotSpot, partition::Strategy::kKl};
  const std::vector<partition::Objective> objectives = {{}};
  Registry r;
  core::ExploreReport report;
  {
    ScopedRegistry scope(r);
    report = explorer.sweep(configs, strategies, objectives);
  }
  EXPECT_EQ(r.counter("explorer.points"), report.points.size());
  // The estimate cache saw one lookup per (kernel, config) pair; the obs
  // counters mirror the report's totals for a fresh explorer.
  EXPECT_EQ(r.counter("explorer.estimate_cache.hits"),
            report.estimate_cache_hits);
  EXPECT_EQ(r.counter("explorer.estimate_cache.misses"),
            report.estimate_cache_misses);
  EXPECT_EQ(r.counter("explorer.eval_cache.hits"), report.cost_cache_hits);
  EXPECT_EQ(r.counter("explorer.eval_cache.misses"),
            report.cost_cache_misses);
  EXPECT_GT(r.counter("explorer.estimate_cache.hits") +
                r.counter("explorer.estimate_cache.misses"),
            0u);
  // Per-point spans are tagged with batch index and strategy args.
  const std::vector<SpanEvent> events = r.events();
  std::size_t point_spans = 0;
  for (const SpanEvent& event : events) {
    if (event.category != "explorer" ||
        event.name.rfind("point[", 0) != 0) {
      continue;
    }
    ++point_spans;
    bool has_batch = false;
    bool has_strategy = false;
    for (const auto& [key, value] : event.args) {
      if (key == "batch_index") has_batch = true;
      if (key == "strategy") has_strategy = true;
    }
    EXPECT_TRUE(has_batch && has_strategy) << event.name;
  }
  EXPECT_EQ(point_spans, report.points.size());
  // The explorer's Report envelope lists the frontier designs.
  EXPECT_EQ(report.report.designs.size(), report.frontier.size());
  EXPECT_FALSE(report.report.obs.empty());
  EXPECT_TRUE(json_is_valid(r.chrome_trace_json()));
}

// -- Histograms and gauges.

TEST(ObsHistogram, BucketGeometry) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(UINT64_MAX), 64u);
  EXPECT_EQ(Histogram::bucket_lo(0), 0u);
  EXPECT_EQ(Histogram::bucket_hi(0), 0u);
  for (std::size_t b = 1; b < Histogram::kNumBuckets; ++b) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lo(b)), b);
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_hi(b)), b);
    EXPECT_EQ(Histogram::bucket_lo(b), Histogram::bucket_hi(b - 1) + 1);
  }
}

TEST(ObsHistogram, CountSumMinMaxAndEmptyStats) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  const HistStat empty = h.stat("empty");
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.min, 0u);
  EXPECT_DOUBLE_EQ(empty.p50, 0.0);
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  for (const std::uint64_t v : {7u, 3u, 100u, 3u}) h.record(v);
  const HistStat s = h.stat("vals");
  EXPECT_EQ(s.name, "vals");
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 113u);
  EXPECT_EQ(s.min, 3u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 113.0 / 4.0);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
}

TEST(ObsHistogram, PercentilesAreInterpolatedFromBuckets) {
  // A single sample: every percentile is the lower edge of its bucket
  // (rank 0, interpolation weight 0).
  Histogram single;
  single.record(8);
  EXPECT_DOUBLE_EQ(single.percentile(0.5), 8.0);
  EXPECT_DOUBLE_EQ(single.percentile(0.99), 8.0);
  // All zeros live in the exact bucket {0}.
  Histogram zeros;
  for (int i = 0; i < 5; ++i) zeros.record(0);
  EXPECT_DOUBLE_EQ(zeros.percentile(0.9), 0.0);
  // Eight samples of 8 (bucket [8, 15]): p50 rank = 0.5 * 7 = 3.5, so
  // the interpolated value is lo + (3.5 / 8) * (hi - lo).
  Histogram repeated;
  for (int i = 0; i < 8; ++i) repeated.record(8);
  EXPECT_DOUBLE_EQ(repeated.percentile(0.5), 8.0 + (3.5 / 8.0) * 7.0);
  // The top quantile interpolates the last rank (7 of 8) the same way.
  EXPECT_DOUBLE_EQ(repeated.percentile(1.0), 8.0 + (7.0 / 8.0) * 7.0);
}

TEST(ObsHistogram, MergeIsBitIdenticalAcrossThreadCounts) {
  // One fixed multiset of samples, recorded through 1/2/4/8 threads into
  // a registry histogram. Every exported statistic must be bit-identical
  // (not just close): the histogram is a pure function of the recorded
  // multiset, independent of interleaving.
  constexpr std::size_t kSamples = 4096;
  std::vector<std::uint64_t> values;
  Rng rng(99);
  for (std::size_t i = 0; i < kSamples; ++i) {
    values.push_back(static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20)));
  }
  std::vector<HistStat> stats;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    Registry r;
    ScopedRegistry scope(r);
    Histogram& h = r.histogram("merge.test");
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&h, &values, t, threads] {
        for (std::size_t i = t; i < values.size(); i += threads) {
          h.record(values[i]);
        }
      });
    }
    for (std::thread& w : workers) w.join();
    stats.push_back(h.stat("merge.test"));
    // The registry's summary carries the same percentiles.
    const Summary s = r.summary();
    ASSERT_EQ(s.hists.size(), 1u);
    EXPECT_EQ(s.hists[0].count, kSamples);
    EXPECT_EQ(s.hists[0].p50, stats.back().p50);
  }
  for (const HistStat& s : stats) {
    EXPECT_EQ(s.count, stats[0].count);
    EXPECT_EQ(s.sum, stats[0].sum);
    EXPECT_EQ(s.min, stats[0].min);
    EXPECT_EQ(s.max, stats[0].max);
    // Bit-identical doubles, hence EXPECT_EQ rather than NEAR.
    EXPECT_EQ(s.p50, stats[0].p50);
    EXPECT_EQ(s.p90, stats[0].p90);
    EXPECT_EQ(s.p99, stats[0].p99);
  }
}

TEST(ObsGauge, LastWriteWinsAndRangeTracked) {
  Registry r;
  {
    ScopedRegistry scope(r);
    gauge("speed", 3.0);
    gauge("speed", 1.0);
    gauge("speed", 2.0);
  }
  const Summary s = r.summary();
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_EQ(s.gauges[0].name, "speed");
  EXPECT_DOUBLE_EQ(s.gauges[0].value, 2.0);
  EXPECT_DOUBLE_EQ(s.gauges[0].min, 1.0);
  EXPECT_DOUBLE_EQ(s.gauges[0].max, 3.0);
  EXPECT_EQ(s.gauges[0].updates, 3u);
  // Gauges ride into the summary table and the Chrome trace.
  EXPECT_NE(s.table().find("speed"), std::string::npos);
  EXPECT_TRUE(json_is_valid(r.chrome_trace_json()));
  EXPECT_NE(r.chrome_trace_json().find("speed"), std::string::npos);
  // And the free function is a no-op without a sink.
  gauge("orphan", 1.0);
  EXPECT_TRUE(Registry().summary().gauges.empty());
}

TEST(ObsHistogram, ObserveLandsInSummaryWithPercentiles) {
  Registry r;
  {
    ScopedRegistry scope(r);
    for (std::uint64_t v = 1; v <= 100; ++v) observe("latency", v);
  }
  const Summary s = r.summary();
  ASSERT_EQ(s.hists.size(), 1u);
  EXPECT_EQ(s.hists[0].name, "latency");
  EXPECT_EQ(s.hists[0].count, 100u);
  EXPECT_EQ(s.hists[0].sum, 5050u);
  EXPECT_EQ(s.hists[0].min, 1u);
  EXPECT_EQ(s.hists[0].max, 100u);
  EXPECT_GT(s.hists[0].p50, 0.0);
  EXPECT_LE(s.hists[0].p90, s.hists[0].p99);
  const std::string table = s.table();
  EXPECT_NE(table.find("latency"), std::string::npos);
  EXPECT_NE(table.find("p50"), std::string::npos);
  // Histogram percentiles export as Chrome counter events.
  const std::string json = r.chrome_trace_json();
  EXPECT_TRUE(json_is_valid(json));
  EXPECT_NE(json.find("latency"), std::string::npos);
}

// -- JSON parser edge cases.

TEST(ObsJson, RejectsNaNAndInfinity) {
  EXPECT_FALSE(json_is_valid("NaN"));
  EXPECT_FALSE(json_is_valid("Infinity"));
  EXPECT_FALSE(json_is_valid("-Infinity"));
  EXPECT_FALSE(json_is_valid("{\"a\": NaN}"));
  EXPECT_FALSE(json_is_valid("[Infinity]"));
  EXPECT_FALSE(json_is_valid("{\"a\": nan}"));
}

TEST(ObsJson, NumberGrammarEdges) {
  EXPECT_TRUE(json_is_valid("0"));
  EXPECT_TRUE(json_is_valid("-0"));
  EXPECT_TRUE(json_is_valid("0.5"));
  EXPECT_TRUE(json_is_valid("1e5"));
  EXPECT_TRUE(json_is_valid("1E+5"));
  EXPECT_TRUE(json_is_valid("-1.25e-3"));
  EXPECT_FALSE(json_is_valid("+1"));
  EXPECT_FALSE(json_is_valid("1."));
  EXPECT_FALSE(json_is_valid(".5"));
  EXPECT_FALSE(json_is_valid("1e"));
  EXPECT_FALSE(json_is_valid("-"));
  EXPECT_FALSE(json_is_valid("0x10"));
}

TEST(ObsJson, EscapesAndNestedArrays) {
  EXPECT_TRUE(json_is_valid("\"\\u0000\""));
  EXPECT_TRUE(json_is_valid("\"\\b\\f\\n\\r\\t\\/\\\\\\\"\""));
  EXPECT_FALSE(json_is_valid("\"\\x41\""));
  EXPECT_FALSE(json_is_valid("\"unterminated"));
  // Deeply nested arrays with mixed values parse and navigate.
  const std::optional<JsonValue> v =
      json_parse("[[1, [2, [3, {\"k\": [true, null, \"s\"]}]]], []]");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_array());
  ASSERT_EQ(v->as_array().size(), 2u);
  const JsonValue& deep =
      v->as_array()[0].as_array()[1].as_array()[1].as_array()[1];
  const JsonValue* k = deep.find("k");
  ASSERT_NE(k, nullptr);
  ASSERT_TRUE(k->is_array());
  EXPECT_TRUE(k->as_array()[0].as_bool());
  EXPECT_EQ(k->as_array()[2].as_string(), "s");
}

TEST(ObsJson, DepthGuardRejectsRunawayNesting) {
  // The parser serves untrusted request bodies (svc::Request wire JSON),
  // so recursion is capped at kJsonMaxDepth: anything deeper is a parse
  // error naming the limit, not a stack overflow.
  const auto nested = [](int depth, char open, char close) {
    std::string s(static_cast<std::size_t>(depth), open);
    s += "1";
    s.append(static_cast<std::size_t>(depth), close);
    return s;
  };

  EXPECT_TRUE(json_is_valid(nested(kJsonMaxDepth - 1, '[', ']')));
  EXPECT_TRUE(json_is_valid(nested(kJsonMaxDepth, '[', ']')));

  JsonError error;
  EXPECT_FALSE(json_parse(nested(kJsonMaxDepth + 1, '[', ']'), &error));
  EXPECT_NE(error.message.find("nesting"), std::string::npos);
  EXPECT_NE(error.message.find(std::to_string(kJsonMaxDepth)),
            std::string::npos);

  // Objects burn the same depth budget as arrays.
  std::string object = "1";
  for (int i = 0; i < kJsonMaxDepth + 1; ++i) {
    object = "{\"k\":" + object + "}";
  }
  error = JsonError{};
  EXPECT_FALSE(json_parse(object, &error));
  EXPECT_NE(error.message.find("nesting"), std::string::npos);

  // Well under the limit, mixed nesting parses and renders back.
  const std::string mixed = nested(200, '[', ']');
  const std::optional<JsonValue> v = json_parse(mixed);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(json_render(*v), mixed);
}

// -- Cycle-attribution profiles.

TEST(ObsProfile, FinalizeDerivesIdleAndHoldsExactSum) {
  Profile p("unit");
  p.attribute(Profile::kSwExecute, 10);
  p.attribute(Profile::kBus, 5);
  p.finalize(20);
  EXPECT_EQ(p.cycles(Profile::kSwExecute), 10u);
  EXPECT_EQ(p.cycles(Profile::kBus), 5u);
  EXPECT_EQ(p.cycles(Profile::kIdle), 5u);
  EXPECT_EQ(p.attributed(), p.total());
  EXPECT_EQ(p.total(), 20u);
  EXPECT_DOUBLE_EQ(p.fraction(Profile::kSwExecute), 0.5);
  const std::string table = p.table();
  EXPECT_NE(table.find("cycle attribution: unit"), std::string::npos);
  EXPECT_NE(table.find("sw execute"), std::string::npos);
  EXPECT_NE(table.find("100.0"), std::string::npos);
}

TEST(ObsProfile, OvershootIsShavedDeterministically) {
  // Rounding overshoot: claimed 15 > total 12; the excess 3 comes out of
  // kSwExecute first, idle stays 0 and the sum is exact.
  Profile p;
  p.attribute(Profile::kSwExecute, 10);
  p.attribute(Profile::kBus, 5);
  p.finalize(12);
  EXPECT_EQ(p.cycles(Profile::kSwExecute), 7u);
  EXPECT_EQ(p.cycles(Profile::kBus), 5u);
  EXPECT_EQ(p.cycles(Profile::kIdle), 0u);
  EXPECT_EQ(p.attributed(), 12u);
  EXPECT_EQ(p.total(), 12u);
}

namespace {
std::vector<std::vector<std::int64_t>> profile_samples(
    const ir::Cdfg& kernel, std::size_t n) {
  Rng rng(404);
  std::vector<std::vector<std::int64_t>> samples;
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<std::int64_t> in;
    for (std::size_t k = 0; k < kernel.inputs().size(); ++k) {
      in.push_back(rng.uniform_int(-1000, 1000));
    }
    samples.push_back(std::move(in));
  }
  return samples;
}
}  // namespace

TEST(ObsProfile, PinLevelCosimAttributionSumsToTotalCycles) {
  // Fig. 4 configuration: the FIR accelerator co-simulated at pin level.
  // Every simulated cycle must be attributed to exactly one class.
  const ir::Cdfg kernel = apps::fir_kernel(8);
  const hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  const hw::HlsResult impl = hw::synthesize(kernel, lib, constraints);
  const auto samples = profile_samples(kernel, 8);
  for (const sim::InterfaceLevel level :
       {sim::InterfaceLevel::kPin, sim::InterfaceLevel::kRegister,
        sim::InterfaceLevel::kDriver}) {
    sim::CosimConfig cfg;
    cfg.level = level;
    const sim::CosimReport r = accel_cosim(impl, cfg, samples);
    ASSERT_GT(r.total_cycles, 0.0);
    EXPECT_EQ(r.profile.total(),
              static_cast<std::uint64_t>(r.total_cycles))
        << sim::interface_level_name(level);
    EXPECT_EQ(r.profile.attributed(), r.profile.total())
        << sim::interface_level_name(level);
    // ISS-backed levels charge software execution; every level moves data.
    if (level != sim::InterfaceLevel::kDriver) {
      EXPECT_GT(r.profile.cycles(Profile::kSwExecute), 0u)
          << sim::interface_level_name(level);
    }
    EXPECT_GT(r.profile.cycles(Profile::kBus), 0u)
        << sim::interface_level_name(level);
  }
}

TEST(ObsProfile, FlowEmbedsCosimProfileInReport) {
  // Fig. 8-style flow with co-simulation enabled: the CosimReport's
  // profile lands in core::Report::profiles and renders in str().
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  core::FlowConfig config;
  config.cosim_samples = 2;
  const core::FlowReport report =
      core::run_codesign_flow(w.graph, w.kernels, config);
  ASSERT_TRUE(report.cosim.has_value());
  ASSERT_EQ(report.report.profiles.size(), 1u);
  const Profile& p = report.report.profiles[0];
  EXPECT_FALSE(p.empty());
  EXPECT_EQ(p.attributed(), p.total());
  EXPECT_EQ(p.total(),
            static_cast<std::uint64_t>(report.cosim->total_cycles));
  EXPECT_NE(report.report.str().find("cycle attribution"),
            std::string::npos);
}

TEST(ObsProfile, IssOpcodeCountersSumToRetiredInstructions) {
  const ir::Cdfg kernel = apps::fir_kernel(8);
  const hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  const hw::HlsResult impl = hw::synthesize(kernel, lib, constraints);
  const auto samples = profile_samples(kernel, 4);
  sim::CosimConfig cfg;
  cfg.level = sim::InterfaceLevel::kRegister;
  Registry r;
  sim::CosimReport report;
  {
    ScopedRegistry scope(r);
    report = accel_cosim(impl, cfg, samples);
  }
  ASSERT_GT(report.sw_instructions, 0u);
  std::uint64_t op_total = 0;
  std::size_t op_kinds = 0;
  for (const CounterStat& c : r.summary().counters) {
    if (c.name.rfind("iss.op.", 0) == 0) {
      op_total += c.value;
      ++op_kinds;
    }
  }
  EXPECT_GT(op_kinds, 1u);
  EXPECT_EQ(op_total, report.sw_instructions);
}

TEST(ObsFlow, WallTimeDerivedFromRootFlowSpan) {
  // Satellite (f): the report's wall time and the root "flow" span come
  // from the same two clock reads, so they agree exactly.
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  core::FlowConfig config;
  config.cosim_samples = 2;
  Registry r;
  core::FlowReport report;
  {
    ScopedRegistry scope(r);
    report = core::run_codesign_flow(w.graph, w.kernels, config);
  }
  const SpanEvent* root = nullptr;
  const std::vector<SpanEvent> events = r.events();
  for (const SpanEvent& e : events) {
    if (e.category == "flow" && e.name == "flow") root = &e;
  }
  ASSERT_NE(root, nullptr);
  EXPECT_DOUBLE_EQ(report.report.wall_ms, root->dur_us / 1000.0);
}

TEST(ObsFlow, ExplorerWallTimeDerivedFromExploreSpan) {
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  core::Explorer explorer(w.graph, w.kernels, {});
  const std::vector<core::FlowConfig> configs = {core::FlowConfig::defaults()};
  const std::vector<partition::Strategy> strategies = {
      partition::Strategy::kHotSpot};
  const std::vector<partition::Objective> objectives = {{}};
  Registry r;
  core::ExploreReport report;
  {
    ScopedRegistry scope(r);
    report = explorer.sweep(configs, strategies, objectives);
  }
  const SpanEvent* batch = nullptr;
  const std::vector<SpanEvent> events = r.events();
  for (const SpanEvent& e : events) {
    if (e.category == "explorer" && e.name == "explore") batch = &e;
  }
  ASSERT_NE(batch, nullptr);
  EXPECT_DOUBLE_EQ(report.wall_ms, batch->dur_us / 1000.0);
  // The per-point latency histogram recorded one sample per point.
  const Summary s = r.summary();
  bool found = false;
  for (const HistStat& h : s.hists) {
    if (h.name == "explorer.point_us") {
      found = true;
      EXPECT_EQ(h.count, report.points.size());
    }
  }
  EXPECT_TRUE(found);
  // The cache hit-rate gauge was set.
  bool gauge_found = false;
  for (const GaugeStat& g : s.gauges) {
    if (g.name == "explorer.cost_cache.hit_rate") gauge_found = true;
  }
  EXPECT_TRUE(gauge_found);
}

TEST(ObsReport, AddDesignCapturesCommonShape) {
  core::Report report;
  report.title = "unit";
  struct FakeDesign {
    double latency() const { return 123.0; }
    double area() const { return 4.5; }
    std::string summary() const { return "fake detail"; }
  };
  report.add_design("fake", FakeDesign{});
  ASSERT_EQ(report.designs.size(), 1u);
  EXPECT_EQ(report.designs[0].target, "fake");
  EXPECT_DOUBLE_EQ(report.designs[0].latency, 123.0);
  EXPECT_DOUBLE_EQ(report.designs[0].area, 4.5);
  const std::string text = report.str();
  EXPECT_NE(text.find("unit"), std::string::npos);
  EXPECT_NE(text.find("fake"), std::string::npos);
}

// ------------------------------------------------ request-registry merging

/// Builds one deterministic "per-request" registry: `threads` concurrent
/// recorders each add spans, counters, histogram samples, and gauges.
/// The same (salt, threads) always produces the same aggregate content,
/// so merge-order experiments compare apples to apples.
std::unique_ptr<Registry> make_request_registry(std::uint32_t salt,
                                                std::size_t threads) {
  auto r = std::make_unique<Registry>();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&r, salt] {
      for (std::uint32_t i = 0; i < 8; ++i) {
        SpanEvent e;
        e.name = "work" + std::to_string(i % 3);
        e.category = "req";
        e.start_us = static_cast<double>(salt * 100 + i);
        e.dur_us = 1.0 + (salt % 5) + i;
        r->record(std::move(e));
        r->count("req.ops", salt + i);
        r->histogram("req.latency_us").record(10 * (i + 1) + salt);
        r->gauge("req.depth", static_cast<double>(salt));
      }
    });
  }
  for (std::thread& th : pool) th.join();
  return r;
}

TEST(ObsMerge, MergeOrderIsByteIdenticalAcrossRecordingThreadCounts) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    constexpr std::size_t kRequests = 5;
    std::vector<std::unique_ptr<Registry>> sources;
    for (std::size_t k = 0; k < kRequests; ++k) {
      sources.push_back(
          make_request_registry(static_cast<std::uint32_t>(k + 1), threads));
    }

    const std::vector<std::vector<std::size_t>> orders = {
        {0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}, {1, 4, 0, 3, 2}};
    std::string first_json;
    std::string first_table;
    for (const std::vector<std::size_t>& order : orders) {
      Registry target;
      for (const std::size_t idx : order) target.merge_from(*sources[idx]);
      const Summary s = target.summary();
      const std::string json = summary_json(s);
      const std::string table = s.table();
      if (first_json.empty()) {
        first_json = json;
        first_table = table;
      }
      EXPECT_EQ(json, first_json) << "threads=" << threads;
      EXPECT_EQ(table, first_table) << "threads=" << threads;
    }

    // A pairwise merge tree folds to the same bytes as the flat fold.
    Registry left;
    left.merge_from(*sources[0]);
    left.merge_from(*sources[1]);
    Registry right;
    right.merge_from(*sources[2]);
    right.merge_from(*sources[3]);
    right.merge_from(*sources[4]);
    Registry tree;
    tree.merge_from(left);
    tree.merge_from(right);
    EXPECT_EQ(summary_json(tree.summary()), first_json)
        << "threads=" << threads;

    // Counters sum exactly: each source adds threads * (8*salt + 28).
    std::uint64_t expected_ops = 0;
    for (std::uint64_t salt = 1; salt <= kRequests; ++salt) {
      expected_ops += threads * (8 * salt + 28);
    }
    EXPECT_EQ(tree.counter("req.ops"), expected_ops);
  }
}

// ------------------------------------------------------- hostile name JSON

TEST(ObsJson, ChromeTraceAndSummarySurviveHostileNames) {
  Registry r;
  const std::string hostile[] = {
      "quote\"name",       "back\\slash",  "ctrl\x01\x02char",
      "new\nline\ttab",    "</script>",    "utf8 µs \xE2\x86\x92 done",
      "nul-adjacent \x1f", "{\"fake\":1}",
  };
  double i = 0.0;
  for (const std::string& name : hostile) {
    SpanEvent e;
    e.name = name;
    e.category = "cat\"\\\n";
    e.start_us = i;
    e.dur_us = 1.0 + i;
    e.args = {{"arg\"key\n", "val\\ue\x02"}};
    r.record(std::move(e));
    r.count(name, 1);
    r.histogram(name).record(static_cast<std::uint64_t>(i) + 1);
    r.gauge(name, i * 1.5);
    i += 1.0;
  }

  // The Chrome trace must be strict JSON despite every name needing
  // escaping — json_parse is the oracle.
  const std::string trace = r.chrome_trace_json();
  JsonError err;
  const std::optional<JsonValue> doc = json_parse(trace, &err);
  ASSERT_TRUE(doc.has_value()) << err.str();
  ASSERT_TRUE(doc->is_object());
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_GE(events->as_array().size(), std::size(hostile));

  // Escaping must round-trip: every hostile name comes back verbatim
  // through the parser (as a span name and as a counter event).
  for (const std::string& name : hostile) {
    bool span_found = false;
    bool counter_found = false;
    for (const JsonValue& event : events->as_array()) {
      const JsonValue* n = event.find("name");
      const JsonValue* ph = event.find("ph");
      if (n == nullptr || ph == nullptr || !n->is_string()) continue;
      if (ph->string_or("") == "X" && n->as_string() == name) {
        span_found = true;
      }
      // Counter events carry decorated names ("counter <name>", ...):
      // containment is the round-trip check.
      if (ph->string_or("") == "C" &&
          n->as_string().find(name) != std::string::npos) {
        counter_found = true;
      }
    }
    EXPECT_TRUE(span_found) << "span name lost: " << name;
    EXPECT_TRUE(counter_found) << "counter name lost: " << name;
  }

  // The summary JSON form survives the same names.
  const std::string summary = summary_json(r.summary());
  EXPECT_TRUE(json_parse(summary, &err).has_value()) << err.str();
}

// ----------------------------------------------------- sink-explicit APIs

TEST(Obs, SinkExplicitHelpersTargetGivenRegistry) {
  ASSERT_EQ(registry(), nullptr);  // no global sink installed
  Registry r;
  {
    Span span(&r, "explicit", "test");
    EXPECT_TRUE(span.active());
    count(&r, "explicit.count", 2);
    observe(&r, "explicit.us", 7);
    gauge(&r, "explicit.gauge", 1.0);
  }
  EXPECT_EQ(r.num_events(), 1u);
  EXPECT_EQ(r.counter("explicit.count"), 2u);
  const Summary s = r.summary();
  ASSERT_EQ(s.hists.size(), 1u);
  EXPECT_EQ(s.hists[0].count, 1u);
  ASSERT_EQ(s.gauges.size(), 1u);

  // A null sink with no global registry: everything is inert.
  Span inert(static_cast<Registry*>(nullptr), "inert", "test");
  EXPECT_FALSE(inert.active());
  count(static_cast<Registry*>(nullptr), "inert.count", 1);
  observe(static_cast<Registry*>(nullptr), "inert.us", 1);
  gauge(static_cast<Registry*>(nullptr), "inert.gauge", 1.0);
  EXPECT_EQ(r.num_events(), 1u);
}

}  // namespace
}  // namespace mhs::obs
