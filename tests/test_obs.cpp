// Tests for mhs::obs — the flow-wide observability layer: span
// recording/nesting, cross-thread counter aggregation, Chrome-trace JSON
// export + well-formedness, the disabled-sink no-op guarantee, and the
// core::Report envelope the flow and explorer fill in.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "apps/workloads.h"
#include "core/explorer.h"
#include "core/flow.h"
#include "core/report.h"
#include "obs/obs.h"

namespace mhs::obs {
namespace {

TEST(Obs, DisabledByDefaultAndSpansInert) {
  ASSERT_EQ(registry(), nullptr);
  EXPECT_FALSE(enabled());
  Span span("orphan", "test");
  EXPECT_FALSE(span.active());
  span.arg("key", "value");  // must be a no-op, not a crash
  count("orphan.counter", 5);  // likewise
  // Nothing was recorded anywhere: installing a fresh registry afterwards
  // sees an empty world.
  Registry r;
  EXPECT_EQ(r.num_events(), 0u);
  EXPECT_EQ(r.counter("orphan.counter"), 0u);
}

TEST(Obs, UninstalledRegistryRecordsNothing) {
  Registry r;  // constructed but never installed
  { Span span("ignored", "test"); }
  count("ignored", 1);
  EXPECT_EQ(r.num_events(), 0u);
  EXPECT_EQ(r.counter("ignored"), 0u);
}

TEST(Obs, SpanRecordsNameCategoryAndDuration) {
  Registry r;
  {
    ScopedRegistry scope(r);
    Span span("work", "test");
    EXPECT_TRUE(span.active());
  }
  ASSERT_EQ(r.num_events(), 1u);
  const std::vector<SpanEvent> events = r.events();
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].category, "test");
  EXPECT_GE(events[0].start_us, 0.0);
  EXPECT_GE(events[0].dur_us, 0.0);
}

TEST(Obs, NestedSpansBothRecordedInnerWithinOuter) {
  Registry r;
  {
    ScopedRegistry scope(r);
    Span outer("outer", "test");
    {
      Span inner("inner", "test");
    }
  }
  ASSERT_EQ(r.num_events(), 2u);
  const std::vector<SpanEvent> events = r.events();  // (start, tid, name)
  // The outer span starts first but finishes last; sorting by start time
  // puts it first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_LE(events[0].start_us, events[1].start_us);
  EXPECT_GE(events[0].start_us + events[0].dur_us,
            events[1].start_us + events[1].dur_us);
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST(Obs, SpanMoveTransfersOwnershipWithoutDoubleRecord) {
  Registry r;
  {
    ScopedRegistry scope(r);
    Span span;
    EXPECT_FALSE(span.active());
    if (enabled()) {
      span = Span(std::string("dynamic[") + "7]", "test");
      span.arg("index", "7");
    }
    EXPECT_TRUE(span.active());
    Span moved(std::move(span));
    EXPECT_FALSE(span.active());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(moved.active());
  }
  ASSERT_EQ(r.num_events(), 1u);
  const SpanEvent event = r.events()[0];
  EXPECT_EQ(event.name, "dynamic[7]");
  ASSERT_EQ(event.args.size(), 1u);
  EXPECT_EQ(event.args[0].first, "index");
  EXPECT_EQ(event.args[0].second, "7");
}

TEST(Obs, CountersAggregateAcrossThreads) {
  Registry r;
  {
    ScopedRegistry scope(r);
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kPerThread = 1000;
    std::vector<std::thread> workers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([] {
        for (std::size_t i = 0; i < kPerThread; ++i) count("shared", 1);
        count("per_thread_once", 3);
      });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(r.counter("shared"), kThreads * kPerThread);
    EXPECT_EQ(r.counter("per_thread_once"), kThreads * 3u);
  }
}

TEST(Obs, SpansFromDistinctThreadsGetDistinctTids) {
  Registry r;
  {
    ScopedRegistry scope(r);
    Span main_span("main", "test");
    std::thread worker([] { Span span("worker", "test"); });
    worker.join();
  }
  ASSERT_EQ(r.num_events(), 2u);
  const std::vector<SpanEvent> events = r.events();
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(Obs, SummaryAggregatesByCategoryAndName) {
  Registry r;
  {
    ScopedRegistry scope(r);
    for (int i = 0; i < 3; ++i) Span span("kl", "partition");
    Span other("estimate", "flow");
    count("cache.hits", 41);
    count("cache.hits", 1);
  }
  const Summary s = r.summary();
  ASSERT_EQ(s.spans.size(), 2u);
  // Sorted by (category, name): flow/estimate before partition/kl.
  EXPECT_EQ(s.spans[0].category, "flow");
  EXPECT_EQ(s.spans[0].name, "estimate");
  EXPECT_EQ(s.spans[0].count, 1u);
  EXPECT_EQ(s.spans[1].category, "partition");
  EXPECT_EQ(s.spans[1].name, "kl");
  EXPECT_EQ(s.spans[1].count, 3u);
  EXPECT_GE(s.spans[1].max_us, s.spans[1].min_us);
  EXPECT_GE(s.spans[1].total_us, s.spans[1].max_us);
  ASSERT_EQ(s.counters.size(), 1u);
  EXPECT_EQ(s.counters[0].name, "cache.hits");
  EXPECT_EQ(s.counters[0].value, 42u);
  // The plain-text rendering mentions every aggregate.
  const std::string table = s.table();
  EXPECT_NE(table.find("kl"), std::string::npos);
  EXPECT_NE(table.find("estimate"), std::string::npos);
  EXPECT_NE(table.find("cache.hits"), std::string::npos);
  EXPECT_NE(table.find("42"), std::string::npos);
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(Summary{}.empty());
}

TEST(Obs, ChromeTraceJsonIsWellFormedAndEscaped) {
  Registry r;
  {
    ScopedRegistry scope(r);
    Span span("name with \"quotes\" and \\slashes\\", "cat\negory");
    span.arg("key", "line1\nline2\ttabbed");
    count("counter/with\"quote", 7);
  }
  const std::string json = r.chrome_trace_json();
  EXPECT_TRUE(json_is_valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(Obs, JsonValidatorAcceptsValidDocuments) {
  EXPECT_TRUE(json_is_valid("{}"));
  EXPECT_TRUE(json_is_valid("[]"));
  EXPECT_TRUE(json_is_valid("  {\"a\": [1, -2.5e3, true, false, null]} "));
  EXPECT_TRUE(json_is_valid("{\"s\": \"\\\"\\\\\\n\\u0041\"}"));
  EXPECT_TRUE(json_is_valid("[[[{\"deep\": []}]]]"));
}

TEST(Obs, JsonValidatorRejectsMalformedDocuments) {
  EXPECT_FALSE(json_is_valid(""));
  EXPECT_FALSE(json_is_valid("{"));
  EXPECT_FALSE(json_is_valid("{\"a\":}"));
  EXPECT_FALSE(json_is_valid("[1,]"));
  EXPECT_FALSE(json_is_valid("{\"a\": 1} trailing"));
  EXPECT_FALSE(json_is_valid("{'single': 1}"));
  EXPECT_FALSE(json_is_valid("{\"bad\": \"\\q\"}"));
  EXPECT_FALSE(json_is_valid("{\"bad\": \"\\u12g4\"}"));
  EXPECT_FALSE(json_is_valid("01"));
  EXPECT_FALSE(json_is_valid("nul"));
}

TEST(Obs, JsonEscapeRoundTripsThroughValidator) {
  const std::string nasty = "\"\\\n\r\t\x01 plain";
  const std::string doc = "{\"k\": \"" + json_escape(nasty) + "\"}";
  EXPECT_TRUE(json_is_valid(doc)) << doc;
}

TEST(Obs, ScopedRegistryRestoresPreviousSink) {
  Registry outer_r;
  {
    ScopedRegistry outer(outer_r);
    EXPECT_EQ(registry(), &outer_r);
    {
      Registry inner_r;
      ScopedRegistry inner(inner_r);
      EXPECT_EQ(registry(), &inner_r);
      count("where", 1);
      EXPECT_EQ(inner_r.counter("where"), 1u);
      EXPECT_EQ(outer_r.counter("where"), 0u);
    }
    EXPECT_EQ(registry(), &outer_r);
  }
  EXPECT_EQ(registry(), nullptr);
}

// -- End-to-end: the instrumented flow and explorer.

TEST(ObsFlow, CodesignFlowEmitsAllFivePhaseSpans) {
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  core::FlowConfig config;
  config.cosim_samples = 2;
  Registry r;
  core::FlowReport report;
  {
    ScopedRegistry scope(r);
    report = core::run_codesign_flow(w.graph, w.kernels, config);
  }
  const Summary s = r.summary();
  for (const char* phase :
       {"specify", "estimate", "partition", "cosynth", "cosim"}) {
    bool found = false;
    for (const SpanStat& span : s.spans) {
      if (span.category == "flow" && span.name == phase) found = true;
    }
    EXPECT_TRUE(found) << "missing flow phase span: " << phase;
  }
  // The partition phase ran a strategy underneath, with its counters.
  EXPECT_GE(r.counter("partition." +
                      std::string(partition::strategy_name(config.strategy)) +
                      ".runs"),
            1u);
  // Co-simulation ran and counted its events.
  ASSERT_TRUE(report.cosim.has_value());
  EXPECT_EQ(r.counter("cosim.events"), report.cosim->sim_events);
  EXPECT_EQ(r.counter("cosim.samples"), config.cosim_samples);
  // The trace export is valid Chrome trace JSON.
  const std::string json = r.chrome_trace_json();
  EXPECT_TRUE(json_is_valid(json));
  for (const char* phase :
       {"specify", "estimate", "partition", "cosynth", "cosim"}) {
    EXPECT_NE(json.find(std::string("\"") + phase + "\""),
              std::string::npos)
        << phase;
  }
  // The flow's Report envelope embeds the summary and the design.
  EXPECT_FALSE(report.report.obs.empty());
  ASSERT_EQ(report.report.designs.size(), 1u);
  EXPECT_EQ(report.report.designs[0].target, "coprocessor");
  EXPECT_GT(report.report.wall_ms, 0.0);
  const std::string rendered = report.report.str();
  EXPECT_NE(rendered.find("coprocessor"), std::string::npos);
}

TEST(ObsFlow, DisabledRunProducesIdenticalDesign) {
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  core::FlowConfig config;
  config.cosim_samples = 2;
  const core::FlowReport plain =
      core::run_codesign_flow(w.graph, w.kernels, config);
  Registry r;
  core::FlowReport traced;
  {
    ScopedRegistry scope(r);
    traced = core::run_codesign_flow(w.graph, w.kernels, config);
  }
  // Tracing must not perturb results.
  EXPECT_EQ(plain.design.partition.mapping, traced.design.partition.mapping);
  EXPECT_DOUBLE_EQ(plain.design.latency(), traced.design.latency());
  EXPECT_DOUBLE_EQ(plain.design.area(), traced.design.area());
  // And the untraced run carries an empty obs summary.
  EXPECT_TRUE(plain.report.obs.empty());
  EXPECT_FALSE(traced.report.obs.empty());
}

TEST(ObsFlow, ExplorerEmitsPointSpansAndCacheCounters) {
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  core::Explorer::Options options;
  options.num_threads = 2;
  core::Explorer explorer(w.graph, w.kernels, options);
  const std::vector<core::FlowConfig> configs = {
      core::FlowConfig::defaults(),
      core::FlowConfig::defaults().without_kernel_optimization()};
  const std::vector<partition::Strategy> strategies = {
      partition::Strategy::kHotSpot, partition::Strategy::kKl};
  const std::vector<partition::Objective> objectives = {{}};
  Registry r;
  core::ExploreReport report;
  {
    ScopedRegistry scope(r);
    report = explorer.sweep(configs, strategies, objectives);
  }
  EXPECT_EQ(r.counter("explorer.points"), report.points.size());
  // The estimate cache saw one lookup per (kernel, config) pair; the obs
  // counters mirror the report's totals for a fresh explorer.
  EXPECT_EQ(r.counter("explorer.estimate_cache.hits"),
            report.estimate_cache_hits);
  EXPECT_EQ(r.counter("explorer.estimate_cache.misses"),
            report.estimate_cache_misses);
  EXPECT_EQ(r.counter("explorer.eval_cache.hits"), report.cost_cache_hits);
  EXPECT_EQ(r.counter("explorer.eval_cache.misses"),
            report.cost_cache_misses);
  EXPECT_GT(r.counter("explorer.estimate_cache.hits") +
                r.counter("explorer.estimate_cache.misses"),
            0u);
  // Per-point spans are tagged with batch index and strategy args.
  const std::vector<SpanEvent> events = r.events();
  std::size_t point_spans = 0;
  for (const SpanEvent& event : events) {
    if (event.category != "explorer" ||
        event.name.rfind("point[", 0) != 0) {
      continue;
    }
    ++point_spans;
    bool has_batch = false;
    bool has_strategy = false;
    for (const auto& [key, value] : event.args) {
      if (key == "batch_index") has_batch = true;
      if (key == "strategy") has_strategy = true;
    }
    EXPECT_TRUE(has_batch && has_strategy) << event.name;
  }
  EXPECT_EQ(point_spans, report.points.size());
  // The explorer's Report envelope lists the frontier designs.
  EXPECT_EQ(report.report.designs.size(), report.frontier.size());
  EXPECT_FALSE(report.report.obs.empty());
  EXPECT_TRUE(json_is_valid(r.chrome_trace_json()));
}

TEST(ObsReport, AddDesignCapturesCommonShape) {
  core::Report report;
  report.title = "unit";
  struct FakeDesign {
    double latency() const { return 123.0; }
    double area() const { return 4.5; }
    std::string summary() const { return "fake detail"; }
  };
  report.add_design("fake", FakeDesign{});
  ASSERT_EQ(report.designs.size(), 1u);
  EXPECT_EQ(report.designs[0].target, "fake");
  EXPECT_DOUBLE_EQ(report.designs[0].latency, 123.0);
  EXPECT_DOUBLE_EQ(report.designs[0].area, 4.5);
  const std::string text = report.str();
  EXPECT_NE(text.find("unit"), std::string::npos);
  EXPECT_NE(text.find("fake"), std::string::npos);
}

}  // namespace
}  // namespace mhs::obs
