// Property-based tests: randomized sweeps over the library's key
// invariants, parameterized by seed (TEST_P) so each seed is a distinct,
// reproducible test case.
#include <gtest/gtest.h>

#include "apps/kernels.h"
#include "apps/workloads.h"
#include "base/rng.h"
#include "base/stats.h"
#include "hw/binding.h"
#include "hw/estimate.h"
#include "hw/hls.h"
#include "ir/task_graph_algos.h"
#include "ir/task_graph_gen.h"
#include "opt/knapsack.h"
#include "opt/pareto.h"
#include "partition/algorithms.h"
#include "sim/os_cosim.h"
#include "sim/run.h"
#include "sw/iss.h"

namespace mhs {
namespace {

/// Random dataflow kernel over div-free ops.
ir::Cdfg random_kernel(Rng& rng, std::size_t inputs, std::size_t ops) {
  ir::Cdfg c("prop");
  std::vector<ir::OpId> vals;
  for (std::size_t i = 0; i < inputs; ++i) {
    vals.push_back(c.input("x" + std::to_string(i)));
  }
  vals.push_back(c.constant(rng.uniform_int(-64, 64)));
  const ir::OpKind kinds[] = {
      ir::OpKind::kAdd, ir::OpKind::kSub,   ir::OpKind::kMul,
      ir::OpKind::kAnd, ir::OpKind::kOr,    ir::OpKind::kXor,
      ir::OpKind::kMin, ir::OpKind::kMax,   ir::OpKind::kCmpLt,
      ir::OpKind::kCmpEq};
  for (std::size_t i = 0; i < ops; ++i) {
    if (rng.bernoulli(0.1)) {
      vals.push_back(c.select(rng.pick(vals), rng.pick(vals),
                              rng.pick(vals)));
    } else if (rng.bernoulli(0.1)) {
      vals.push_back(c.unary(rng.bernoulli(0.5) ? ir::OpKind::kNeg
                                                : ir::OpKind::kAbs,
                             rng.pick(vals)));
    } else {
      vals.push_back(c.binary(kinds[rng.uniform_int(0, 9)],
                              rng.pick(vals), rng.pick(vals)));
    }
  }
  c.output("y0", vals.back());
  c.output("y1", rng.pick(vals));
  return c;
}

class Seeded : public ::testing::TestWithParam<std::uint64_t> {};

// Property: SW (compiled, ISS-executed) == HW (synthesized datapath) ==
// interpreter, for random kernels and random data.
TEST_P(Seeded, ImplementationEquivalence) {
  Rng rng(GetParam());
  const ir::Cdfg kernel = random_kernel(rng, 4, 24);
  const hw::ComponentLibrary lib = hw::default_library();

  const sw::Program program = sw::compile(kernel);
  hw::HlsConstraints constraints;
  constraints.goal =
      rng.bernoulli(0.5) ? hw::HlsGoal::kMinArea : hw::HlsGoal::kMinLatency;
  const hw::HlsResult impl = hw::synthesize(kernel, lib, constraints);

  for (int trial = 0; trial < 4; ++trial) {
    std::map<std::string, std::int64_t> in;
    for (const ir::OpId id : kernel.inputs()) {
      in[kernel.op(id).name] = rng.uniform_int(-10'000, 10'000);
    }
    const auto reference = kernel.evaluate(in);
    sw::Iss iss;
    EXPECT_EQ(sw::run_program(iss, program, in), reference);
    EXPECT_EQ(hw::simulate_datapath(impl, in), reference);
  }
}

// Property: every schedule produced by every scheduler verifies, and
// binding never violates exclusivity (bind() self-verifies).
TEST_P(Seeded, SchedulersAlwaysProduceLegalSchedules) {
  Rng rng(GetParam() + 1000);
  const ir::Cdfg kernel = random_kernel(rng, 3, 18);
  const hw::ComponentLibrary lib = hw::default_library();

  const hw::Schedule asap = hw::asap_schedule(kernel, lib);
  const hw::Schedule alap =
      hw::alap_schedule(kernel, lib, asap.num_steps() + 4);
  hw::FuCounts one;
  for (std::size_t t = 0; t < hw::kNumFuTypes; ++t) one.count[t] = 1;
  const hw::Schedule list = hw::list_schedule(kernel, lib, one);
  const hw::Schedule fds =
      hw::force_directed_schedule(kernel, lib, asap.num_steps() + 4);

  // ASAP is the latency lower bound.
  EXPECT_LE(asap.num_steps(), alap.num_steps());
  EXPECT_LE(asap.num_steps(), list.num_steps());
  EXPECT_LE(asap.num_steps(), fds.num_steps());
  // FDS honors its bound.
  EXPECT_LE(fds.num_steps(), asap.num_steps() + 4);
  // Single-FU list schedule never exceeds one unit of each type.
  const hw::FuCounts peak = list.peak_usage();
  for (std::size_t t = 0; t < hw::kNumFuTypes; ++t) {
    EXPECT_LE(peak.count[t], 1u);
  }
  // Bindings verify for all schedules.
  (void)hw::bind(asap);
  (void)hw::bind(alap);
  (void)hw::bind(list);
  (void)hw::bind(fds);
}

// Property: the incremental estimator equals the from-scratch estimate
// after any interleaving of adds and removes.
TEST_P(Seeded, IncrementalEstimatorConsistency) {
  Rng rng(GetParam() + 2000);
  const hw::ComponentLibrary lib = hw::default_library();
  hw::IncrementalAreaEstimator inc(lib);
  std::map<std::size_t, hw::HwProfile> resident;
  for (int step = 0; step < 60; ++step) {
    const std::size_t key = static_cast<std::size_t>(rng.uniform_int(0, 11));
    if (resident.count(key)) {
      inc.remove(key);
      resident.erase(key);
    } else {
      ir::TaskCosts costs;
      costs.sw_cycles = rng.uniform(100, 4000);
      costs.hw_cycles = costs.sw_cycles / rng.uniform(2, 20);
      costs.hw_area = rng.uniform(100, 4000);
      costs.parallelism = rng.uniform();
      const hw::HwProfile p = hw::profile_from_costs(costs, lib);
      inc.add(key, p);
      resident.emplace(key, p);
    }
    std::vector<hw::HwProfile> profiles;
    for (const auto& [k, p] : resident) profiles.push_back(p);
    ASSERT_NEAR(inc.area(), hw::shared_area_from_scratch(lib, profiles),
                1e-9);
  }
}

// Property: partition latency is monotone — moving any single task of an
// all-SW mapping to HW never increases the schedule latency when
// communication is free, and the scheduler never reports less than the
// critical path.
TEST_P(Seeded, ScheduleLatencyBounds) {
  Rng rng(GetParam() + 3000);
  ir::TaskGraphGenConfig cfg;
  cfg.num_tasks = 10 + static_cast<std::size_t>(rng.uniform_int(0, 6));
  const ir::TaskGraph g = ir::generate_task_graph(cfg, rng);
  const partition::CostModel model(g, hw::default_library());

  const partition::Mapping all_sw(g.num_tasks(), false);
  const double sw_latency = model.schedule_latency(all_sw, true, false);
  for (std::size_t t = 0; t < g.num_tasks(); ++t) {
    partition::Mapping m = all_sw;
    m[t] = true;
    EXPECT_LE(model.schedule_latency(m, true, false), sw_latency + 1e-9);
  }

  // Any mapping's latency >= critical path under the mapped delays.
  for (int trial = 0; trial < 5; ++trial) {
    partition::Mapping m(g.num_tasks());
    for (std::size_t t = 0; t < g.num_tasks(); ++t) {
      m[t] = rng.bernoulli(0.5);
    }
    const double latency = model.schedule_latency(m, true, false);
    const double cp = ir::critical_path_length(
        g,
        [&](ir::TaskId t) {
          return m[t.index()] ? g.task(t).costs.hw_cycles
                              : g.task(t).costs.sw_cycles;
        },
        ir::zero_edge_delay());
    EXPECT_GE(latency, cp - 1e-9);
  }
}

// Property: knapsack result obeys capacity and is at least as good as
// greedy-by-density (it is exact).
TEST_P(Seeded, KnapsackDominatesGreedy) {
  Rng rng(GetParam() + 4000);
  std::vector<opt::KnapsackItem> items;
  for (std::size_t i = 0; i < 16; ++i) {
    items.push_back(
        opt::KnapsackItem{rng.uniform(0.5, 8.0), rng.uniform(1.0, 20.0), i});
  }
  const double capacity = rng.uniform(5.0, 25.0);
  const opt::KnapsackResult exact = opt::solve_knapsack(items, capacity);
  EXPECT_LE(exact.total_weight, capacity + 1e-9);

  // Greedy by density.
  std::vector<opt::KnapsackItem> by_density = items;
  std::sort(by_density.begin(), by_density.end(),
            [](const auto& a, const auto& b) {
              return a.value / a.weight > b.value / b.weight;
            });
  double w = 0.0, v = 0.0;
  for (const auto& item : by_density) {
    if (w + item.weight <= capacity) {
      w += item.weight;
      v += item.value;
    }
  }
  EXPECT_GE(exact.total_value, v - 1e-9);
}

// Property: message-level co-simulation conserves tokens (messages per
// channel equals iterations) and never deadlocks on acyclic farm
// topologies, for any mapping.
TEST_P(Seeded, OsCosimTokenConservation) {
  Rng rng(GetParam() + 5000);
  const std::size_t workers =
      1 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  const ir::ProcessNetwork net = apps::worker_farm_network(
      workers, rng.uniform(500, 4000), rng.uniform(16, 256));
  std::vector<bool> mapping(net.num_processes());
  for (std::size_t i = 0; i < mapping.size(); ++i) {
    mapping[i] = rng.bernoulli(0.5);
  }
  sim::OsCosimConfig cfg;
  cfg.iterations = 7;
  const sim::OsCosimResult r = [&] {
    sim::SimRequest sreq;
    sreq.level = sim::Level::kProcess;
    sreq.network = &net;
    sreq.in_hw = &mapping;
    sreq.os = cfg;
    return sim::run(sreq).os.value();
  }();
  EXPECT_FALSE(r.deadlocked);
  for (const std::uint64_t m : r.channel_messages) {
    EXPECT_EQ(m, 7u);
  }
  EXPECT_GE(r.comm_cycles, r.cross_comm_cycles);
}

// Property: Pareto front of any point set is mutually non-dominating and
// dominates or ties every input point.
TEST_P(Seeded, ParetoFrontCorrectness) {
  Rng rng(GetParam() + 6000);
  std::vector<opt::DesignPoint> points;
  for (std::size_t i = 0; i < 40; ++i) {
    points.push_back(
        {rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0), i});
  }
  const auto front = opt::pareto_front(points);
  ASSERT_FALSE(front.empty());
  for (std::size_t i = 0; i < front.size(); ++i) {
    for (std::size_t j = 0; j < front.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(opt::dominates(front[i], front[j]));
    }
  }
  for (const opt::DesignPoint& p : points) {
    bool covered = false;
    for (const opt::DesignPoint& f : front) {
      if (opt::dominates(f, p) ||
          (f.objective1 == p.objective1 && f.objective2 == p.objective2)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Seeded,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           11, 12, 13, 14, 15, 16));

}  // namespace
}  // namespace mhs
