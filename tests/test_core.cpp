// Unit tests for mhs::core — the taxonomy/criteria framework and the
// end-to-end co-design flow.
#include <gtest/gtest.h>

#include "apps/workloads.h"
#include "core/flow.h"
#include "core/taxonomy.h"

namespace mhs::core {
namespace {

TEST(Taxonomy, NamesAreStable) {
  EXPECT_STREQ(system_type_name(SystemType::kTypeI), "Type I");
  EXPECT_STREQ(system_type_name(SystemType::kTypeII), "Type II");
  EXPECT_STREQ(design_task_name(DesignTask::kPartitioning), "partitioning");
  EXPECT_STREQ(partition_factor_name(PartitionFactor::kCommunication),
               "communication");
}

TEST(Taxonomy, RegistryCoversThePaperSurvey) {
  const auto& approaches = surveyed_approaches();
  EXPECT_GE(approaches.size(), 12u);
  // Both system types appear.
  bool type1 = false, type2 = false;
  for (const ApproachProfile& a : approaches) {
    type1 = type1 || a.system_type == SystemType::kTypeI;
    type2 = type2 || a.system_type == SystemType::kTypeII;
    // Criterion 3 only applies to co-simulating approaches.
    if (a.cosim_level.has_value()) {
      EXPECT_TRUE(a.tasks.count(DesignTask::kCoSimulation)) << a.name;
    }
    // Criterion 4 only applies to partitioning approaches.
    if (!a.factors.empty()) {
      EXPECT_TRUE(a.tasks.count(DesignTask::kPartitioning)) << a.name;
    }
    EXPECT_FALSE(a.mhs_module.empty()) << a.name;
  }
  EXPECT_TRUE(type1);
  EXPECT_TRUE(type2);
}

TEST(Taxonomy, Figure2ClaimEveryTaskSubsetPopulated) {
  // The paper: "Examples of system design methodologies can be found that
  // fit into every subset of this diagram." Our registry covers the
  // subsets that include at least one task and are consistent with the
  // paper's own constraint that partitioning occurs within co-synthesis.
  const auto covered = covered_task_subsets();
  using enum DesignTask;
  EXPECT_TRUE(covered.count({kCoSimulation}));
  EXPECT_TRUE(covered.count({kCoSynthesis}));
  EXPECT_TRUE(covered.count({kCoSimulation, kCoSynthesis}));
  EXPECT_TRUE(covered.count({kCoSynthesis, kPartitioning}));
  EXPECT_TRUE(
      covered.count({kCoSimulation, kCoSynthesis, kPartitioning}));
}

TEST(Taxonomy, AdamsThomasConsidersAllFactorsButModifiability) {
  // §4.5.1: "considers all the factors outlined in Section 3.3 except
  // for modifiability."
  for (const ApproachProfile& a : surveyed_approaches()) {
    if (a.citation != "[10]") continue;
    EXPECT_EQ(a.factors.size(), 5u);
    EXPECT_FALSE(a.factors.count(PartitionFactor::kModifiability));
    return;
  }
  FAIL() << "reference [10] missing from registry";
}

TEST(Taxonomy, ComparisonTableRenders) {
  const std::string table = comparison_table();
  EXPECT_NE(table.find("Chinook"), std::string::npos);
  EXPECT_NE(table.find("Type II"), std::string::npos);
  EXPECT_NE(table.find("cosynth::synthesize_exact"), std::string::npos);
}

TEST(Flow, AnnotateDerivesCostsFromKernels) {
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  FlowConfig cfg;
  const ir::TaskGraph annotated =
      annotate_costs(w.graph, w.kernels, cfg);
  for (const ir::TaskId t : annotated.task_ids()) {
    if (w.kernels[t.index()] == nullptr) continue;
    const ir::TaskCosts& c = annotated.task(t).costs;
    EXPECT_GT(c.sw_cycles, 0.0) << annotated.task(t).name;
    EXPECT_GT(c.hw_cycles, 0.0);
    EXPECT_GT(c.hw_area, 0.0);
    EXPECT_LT(c.hw_cycles, c.sw_cycles);  // synthesized HW is faster
  }
  // dct8 is wider than checksum: more dataflow parallelism.
  EXPECT_GT(annotated.task(ir::TaskId(2)).costs.parallelism,
            annotated.task(ir::TaskId(4)).costs.parallelism);
}

TEST(Flow, EndToEndProducesConsistentReport) {
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  FlowConfig cfg;
  cfg.objective.latency_target =
      0.0;  // pure energy optimization via KL
  cfg.objective.area_weight = 0.02;
  const FlowReport report = run_codesign_flow(w.graph, w.kernels, cfg);
  EXPECT_EQ(report.annotated.num_tasks(), w.graph.num_tasks());
  EXPECT_GE(report.design.speedup(), 1.0);
  EXPECT_FALSE(report.summary.empty());
  EXPECT_NE(report.summary.find("speedup"), std::string::npos);
  if (report.design.partition.metrics.tasks_in_hw > 0) {
    EXPECT_GT(report.validated_hw_area, 0.0);
    ASSERT_TRUE(report.cosim.has_value());
    EXPECT_GT(report.cosim->total_cycles, 0.0);
  }
}

TEST(Flow, KernelArityChecked) {
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  FlowConfig cfg;
  std::vector<const ir::Cdfg*> short_list(w.graph.num_tasks() - 1,
                                          nullptr);
  EXPECT_THROW(annotate_costs(w.graph, short_list, cfg),
               PreconditionError);
}

}  // namespace
}  // namespace mhs::core
