// Unit tests for mhs::opt — annealing, bin packing, knapsack, Pareto.
#include <gtest/gtest.h>

#include <cmath>

#include "opt/anneal.h"
#include "opt/binpack.h"
#include "opt/knapsack.h"
#include "opt/pareto.h"

namespace mhs::opt {
namespace {

TEST(Anneal, MinimizesAConvexToy) {
  // State: integer x in [-50, 50]; energy = (x-17)^2. Moves: x +/- 1.
  int x = -40;
  int best_x = x;
  int last_delta = 0;
  auto energy = [](int v) { return (v - 17.0) * (v - 17.0); };

  AnnealConfig cfg;
  cfg.initial_temperature = 100.0;
  cfg.rounds = 80;
  cfg.moves_per_round = 40;
  const AnnealStats stats = anneal(
      cfg, energy(x),
      [&](Rng& rng) {
        last_delta = rng.bernoulli(0.5) ? 1 : -1;
        const double before = energy(x);
        x += last_delta;
        return energy(x) - before;
      },
      [&] { x -= last_delta; },
      [&] { best_x = x; });
  EXPECT_EQ(best_x, 17);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_NEAR(stats.best_energy, 0.0, 1e-9);
}

TEST(Anneal, ValidatesConfig) {
  AnnealConfig bad;
  bad.cooling_rate = 1.5;
  auto noop_propose = [](Rng&) { return 0.0; };
  auto noop = [] {};
  EXPECT_THROW(anneal(bad, 0.0, noop_propose, noop, noop),
               PreconditionError);
}

TEST(BinPack, PacksIntoMinimalBinsSimpleCase) {
  // Items 0.6,0.6,0.4,0.4 into unit bins: FFD gives 2 bins.
  std::vector<PackItem> items;
  for (const double s : {0.6, 0.6, 0.4, 0.4}) {
    items.push_back(PackItem{{s}, items.size()});
  }
  const std::vector<BinType> types = {BinType{{1.0}, 10.0, 0}};
  const PackResult r = first_fit_decreasing(items, types);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.bins.size(), 2u);
  EXPECT_DOUBLE_EQ(r.total_cost, 20.0);
}

TEST(BinPack, PrefersCheaperBinTypes) {
  std::vector<PackItem> items = {PackItem{{0.3}, 0}};
  const std::vector<BinType> types = {BinType{{1.0}, 50.0, 0},
                                      BinType{{0.5}, 10.0, 1}};
  const PackResult r = first_fit_decreasing(items, types);
  ASSERT_EQ(r.bins.size(), 1u);
  EXPECT_EQ(r.bins[0].type_key, 1u);  // cheap bin suffices
}

TEST(BinPack, MultiDimensionalConstraints) {
  // Item exceeds dimension 1 of the small type even though dim 0 fits.
  std::vector<PackItem> items = {PackItem{{0.2, 0.9}, 0}};
  const std::vector<BinType> types = {BinType{{1.0, 0.5}, 10.0, 0},
                                      BinType{{1.0, 1.0}, 30.0, 1}};
  const PackResult r = first_fit_decreasing(items, types);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.bins[0].type_key, 1u);
}

TEST(BinPack, InfeasibleItemFlagged) {
  std::vector<PackItem> items = {PackItem{{2.0}, 0}};
  const std::vector<BinType> types = {BinType{{1.0}, 1.0, 0}};
  EXPECT_FALSE(first_fit_decreasing(items, types).feasible);
}

TEST(BinPack, BestFitNoWorseBinCountThanFirstFitHere) {
  std::vector<PackItem> items;
  const double sizes[] = {0.5, 0.7, 0.5, 0.2, 0.4, 0.2, 0.5, 0.1};
  for (const double s : sizes) items.push_back(PackItem{{s}, items.size()});
  const std::vector<BinType> types = {BinType{{1.0}, 1.0, 0}};
  const PackResult ffd = first_fit_decreasing(items, types);
  const PackResult bfd = best_fit_decreasing(items, types);
  EXPECT_TRUE(ffd.feasible);
  EXPECT_TRUE(bfd.feasible);
  EXPECT_LE(bfd.bins.size(), ffd.bins.size() + 1);
  // All items placed exactly once in both.
  std::size_t placed = 0;
  for (const PackedBin& b : bfd.bins) placed += b.item_keys.size();
  EXPECT_EQ(placed, items.size());
}

TEST(BinPack, DimensionMismatchRejected) {
  std::vector<PackItem> items = {PackItem{{0.5, 0.5}, 0}};
  const std::vector<BinType> types = {BinType{{1.0}, 1.0, 0}};
  EXPECT_THROW(first_fit_decreasing(items, types), PreconditionError);
}

TEST(Knapsack, SolvesClassicInstanceExactly) {
  // Items (w,v): (2,3),(3,4),(4,5),(5,6); capacity 5 -> best = 7 (2+3).
  std::vector<KnapsackItem> items = {
      {2, 3, 0}, {3, 4, 1}, {4, 5, 2}, {5, 6, 3}};
  const KnapsackResult r = solve_knapsack(items, 5.0);
  EXPECT_DOUBLE_EQ(r.total_value, 7.0);
  EXPECT_LE(r.total_weight, 5.0);
  EXPECT_EQ(r.chosen_keys.size(), 2u);
}

TEST(Knapsack, NeverOverpacks) {
  std::vector<KnapsackItem> items;
  Rng rng(4);
  for (std::size_t i = 0; i < 24; ++i) {
    items.push_back(KnapsackItem{rng.uniform(0.1, 5.0),
                                 rng.uniform(0.1, 10.0), i});
  }
  for (const double cap : {1.0, 3.7, 9.9, 25.0}) {
    const KnapsackResult r = solve_knapsack(items, cap);
    EXPECT_LE(r.total_weight, cap + 1e-9) << "capacity " << cap;
  }
}

TEST(Knapsack, ValueMonotoneInCapacity) {
  std::vector<KnapsackItem> items = {
      {2, 3, 0}, {3, 4, 1}, {4, 5, 2}, {5, 6, 3}};
  double prev = -1.0;
  for (const double cap : {1.0, 3.0, 5.0, 9.0, 14.0}) {
    const double v = solve_knapsack(items, cap).total_value;
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Knapsack, EmptyAndZeroCapacity) {
  EXPECT_TRUE(solve_knapsack({}, 10.0).chosen_keys.empty());
  std::vector<KnapsackItem> items = {{1, 1, 0}};
  EXPECT_TRUE(solve_knapsack(items, 0.0).chosen_keys.empty());
}

TEST(Pareto, DominanceAndFront) {
  const DesignPoint a{1.0, 5.0, 0};
  const DesignPoint b{2.0, 4.0, 1};
  const DesignPoint c{2.0, 6.0, 2};  // dominated by a? no (obj1). by b: yes
  EXPECT_TRUE(dominates(b, c));
  EXPECT_FALSE(dominates(a, b));
  const auto front = pareto_front({a, b, c});
  ASSERT_EQ(front.size(), 2u);
  EXPECT_EQ(front[0].key, 0u);
  EXPECT_EQ(front[1].key, 1u);
}

TEST(Pareto, HypervolumeGrowsWithRicherFront) {
  const std::vector<DesignPoint> sparse = {{1.0, 9.0, 0}, {9.0, 1.0, 1}};
  std::vector<DesignPoint> rich = sparse;
  rich.push_back({3.0, 3.0, 2});  // fills the middle
  const double hv_sparse = hypervolume(sparse, 10.0, 10.0);
  const double hv_rich = hypervolume(rich, 10.0, 10.0);
  EXPECT_GT(hv_rich, hv_sparse);
}

TEST(Pareto, HypervolumeRequiresBoundingReference) {
  const std::vector<DesignPoint> front = {{5.0, 5.0, 0}};
  EXPECT_THROW(hypervolume(front, 1.0, 1.0), PreconditionError);
}

}  // namespace
}  // namespace mhs::opt
