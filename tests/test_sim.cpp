// Unit tests for mhs::sim — event kernel, signals, bus model, peripheral,
// driver generation, the co-simulation backplane at all four levels, and
// the message-level process-network co-simulator.
#include <gtest/gtest.h>

#include "apps/kernels.h"
#include "apps/workloads.h"
#include "base/rng.h"
#include "base/stats.h"
#include "sim/bus.h"
#include "sim/cosim.h"
#include "sim/run.h"
#include "sim/driver.h"
#include "sim/kernel.h"
#include "sim/os_cosim.h"
#include "sim/peripheral.h"
#include "sim/signal.h"

namespace mhs::sim {
namespace {
/// Drives the accelerator co-simulation through the sim::run seam.
CosimReport accel_cosim(
    const hw::HlsResult& impl, const CosimConfig& config,
    const std::vector<std::vector<std::int64_t>>& samples) {
  SimRequest sreq;
  sreq.impl = &impl;
  sreq.samples = &samples;
  sreq.cosim = config;
  return run(sreq).cosim.value();
}

/// Drives the message-level co-simulation through the sim::run seam.
OsCosimResult process_cosim(const ir::ProcessNetwork& net,
                    const std::vector<bool>& in_hw,
                    const OsCosimConfig& config) {
  SimRequest sreq;
  sreq.level = Level::kProcess;
  sreq.network = &net;
  sreq.in_hw = &in_hw;
  sreq.os = config;
  return run(sreq).os.value();
}


TEST(Kernel, EventsRunInTimeThenInsertionOrder) {
  Simulator sim;
  std::vector<int> log;
  sim.schedule(10, [&] { log.push_back(2); });
  sim.schedule(5, [&] { log.push_back(1); });
  sim.schedule(10, [&] { log.push_back(3); });  // same time, later insert
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 10u);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Kernel, NestedSchedulingAndDeltaEvents) {
  Simulator sim;
  std::vector<int> log;
  sim.schedule(1, [&] {
    log.push_back(1);
    sim.schedule(0, [&] { log.push_back(2); });  // same-time delta
    sim.schedule(4, [&] { log.push_back(3); });
  });
  sim.run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 5u);
}

TEST(Kernel, AdvanceToFiresDueEventsOnly) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(20, [&] { ++fired; });
  sim.advance_to(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 15u);
  EXPECT_THROW(sim.advance_to(5), PreconditionError);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Kernel, RunUntilBoundsTime) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(100, [&] { ++fired; });
  sim.run(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Signal, EdgeSemanticsAndObservers) {
  Simulator sim;
  Wire w(sim, "w");
  int edges = 0;
  w.on_change([&](const bool&) { ++edges; });
  w.write(true);
  w.write(true);  // no change, no edge
  w.write(false);
  EXPECT_EQ(edges, 2);
  EXPECT_EQ(w.transitions(), 2u);
}

TEST(Signal, ScheduledWrite) {
  Simulator sim;
  Bus64 sig(sim, "data", 0);
  sig.write_after(7, 42);
  EXPECT_EQ(sig.read(), 0u);
  sim.run();
  EXPECT_EQ(sig.read(), 42u);
  EXPECT_EQ(sim.now(), 7u);
}

TEST(Bus, WordCostConsistentAcrossLevels) {
  Simulator sim;
  const BusConfig cfg;
  BusModel pin(sim, cfg, InterfaceLevel::kPin);
  // arbitration(1) + address(1) + wait(1) + data(1).
  EXPECT_EQ(pin.word_cost(), 4u);
}

TEST(Bus, BlockCostLadderIsMonotoneOptimistic) {
  Simulator sim;
  const BusConfig cfg;
  const std::size_t bytes = 64;
  BusModel pin(sim, cfg, InterfaceLevel::kPin);
  BusModel reg(sim, cfg, InterfaceLevel::kRegister);
  BusModel drv(sim, cfg, InterfaceLevel::kDriver);
  // Pin is the ground truth; register omits per-word re-arbitration;
  // driver omits wait states and address phases too.
  EXPECT_GT(pin.block_cost(bytes), reg.block_cost(bytes));
  EXPECT_GT(reg.block_cost(bytes), drv.block_cost(bytes));
}

TEST(Bus, PinAccessGeneratesHandshakeEventsAndToggles) {
  Simulator sim;
  BusModel bus(sim, BusConfig{}, InterfaceLevel::kPin);
  const Time cost = bus.access(0x1000, /*is_write=*/true);
  EXPECT_EQ(cost, bus.word_cost());
  EXPECT_GE(sim.events_processed(), 4u);  // one per bus cycle
  EXPECT_GE(bus.strobe_pin().transitions(), 2u);  // up and down
  EXPECT_EQ(bus.total_accesses(), 1u);
}

TEST(Bus, RegisterAccessIsOneEvent) {
  Simulator sim;
  BusModel bus(sim, BusConfig{}, InterfaceLevel::kRegister);
  bus.access(0x1000, false);
  EXPECT_EQ(sim.events_processed(), 1u);
  EXPECT_EQ(bus.strobe_pin().transitions(), 0u);  // no pin activity
}

hw::HlsResult make_impl(const ir::Cdfg& kernel) {
  static hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  return hw::synthesize(kernel, lib, constraints);
}

TEST(Peripheral, RegisterProtocolRoundTrip) {
  const ir::Cdfg kernel = apps::median5_kernel();
  Simulator sim;
  const hw::HlsResult impl = make_impl(kernel);
  StreamPeripheral periph(sim, impl, InterfaceLevel::kRegister);
  ASSERT_EQ(periph.num_inputs(), 5u);
  ASSERT_EQ(periph.num_outputs(), 1u);

  const std::int64_t vals[5] = {9, 1, 7, 3, 5};
  for (std::size_t i = 0; i < 5; ++i) {
    periph.reg_write(PeripheralLayout::kInputBase + 8 * i, vals[i]);
  }
  periph.reg_write(PeripheralLayout::kCtrl, 1);  // GO
  EXPECT_TRUE(periph.busy());
  EXPECT_EQ(periph.reg_read(PeripheralLayout::kStatus) & 1, 0);
  sim.run();
  EXPECT_FALSE(periph.busy());
  EXPECT_EQ(periph.reg_read(PeripheralLayout::kStatus) & 1, 1);
  EXPECT_EQ(periph.reg_read(PeripheralLayout::kOutputBase), 5);  // median
  periph.reg_write(PeripheralLayout::kStatus, 0);  // ack
  EXPECT_EQ(periph.reg_read(PeripheralLayout::kStatus) & 1, 0);
  EXPECT_EQ(periph.activations(), 1u);
}

TEST(Peripheral, CompletionTakesSynthesizedLatency) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  Simulator sim;
  const hw::HlsResult impl = make_impl(kernel);
  StreamPeripheral periph(sim, impl, InterfaceLevel::kRegister);
  for (std::size_t i = 0; i < periph.num_inputs(); ++i) {
    periph.reg_write(PeripheralLayout::kInputBase + 8 * i, 1 << 16);
  }
  periph.reg_write(PeripheralLayout::kCtrl, 1);
  sim.run();
  EXPECT_EQ(sim.now(), impl.latency);
}

TEST(Peripheral, IrqFiresWhenEnabled) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  Simulator sim;
  const hw::HlsResult impl = make_impl(kernel);
  StreamPeripheral periph(sim, impl, InterfaceLevel::kRegister);
  int irqs = 0;
  periph.set_irq_callback([&] { ++irqs; });
  for (std::size_t i = 0; i < periph.num_inputs(); ++i) {
    periph.reg_write(PeripheralLayout::kInputBase + 8 * i, 0);
  }
  periph.reg_write(PeripheralLayout::kCtrl, 3);  // GO | IRQ_EN
  sim.run();
  EXPECT_EQ(irqs, 1);
}

TEST(Peripheral, GuardsMisuse) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  Simulator sim;
  const hw::HlsResult impl = make_impl(kernel);
  StreamPeripheral periph(sim, impl, InterfaceLevel::kRegister);
  EXPECT_THROW(periph.reg_read(0x3F8), PreconditionError);
  periph.reg_write(PeripheralLayout::kCtrl, 1);
  EXPECT_THROW(periph.reg_write(PeripheralLayout::kCtrl, 1),
               PreconditionError);  // start while busy
  EXPECT_THROW(periph.reg_write(PeripheralLayout::kInputBase, 1),
               PreconditionError);  // write input while busy
}

TEST(Driver, PollingDriverShape) {
  DriverSpec spec;
  spec.num_inputs = 2;
  spec.num_outputs = 1;
  spec.samples = 4;
  const Driver d = generate_driver(spec);
  EXPECT_FALSE(d.isr_entry.has_value());
  EXPECT_GT(d.code.size(), 10u);
  EXPECT_EQ(d.code.back().op, sw::Opcode::kHalt);
}

TEST(Driver, IrqDriverHasIsr) {
  DriverSpec spec;
  spec.use_irq = true;
  const Driver d = generate_driver(spec);
  ASSERT_TRUE(d.isr_entry.has_value());
  EXPECT_EQ(d.code.back().op, sw::Opcode::kIret);
}

std::vector<std::vector<std::int64_t>> random_samples(
    const ir::Cdfg& kernel, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::int64_t>> samples;
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<std::int64_t> in;
    for (std::size_t k = 0; k < kernel.inputs().size(); ++k) {
      in.push_back(rng.uniform_int(-1000, 1000));
    }
    samples.push_back(std::move(in));
  }
  return samples;
}

std::int64_t reference_checksum(const ir::Cdfg& kernel,
                                const std::vector<std::vector<std::int64_t>>&
                                    samples) {
  std::int64_t sum = 0;
  for (const auto& s : samples) {
    std::map<std::string, std::int64_t> in;
    std::size_t k = 0;
    for (const ir::OpId id : kernel.inputs()) {
      in[kernel.op(id).name] = s[k++];
    }
    for (const auto& [name, value] : kernel.evaluate(in)) sum += value;
  }
  return sum;
}

class CosimLevels : public ::testing::TestWithParam<InterfaceLevel> {};

TEST_P(CosimLevels, FunctionalChecksumMatchesReference) {
  const ir::Cdfg kernel = apps::fir_kernel(6);
  const hw::HlsResult impl = make_impl(kernel);
  const auto samples = random_samples(kernel, 8, 21);
  CosimConfig cfg;
  cfg.level = GetParam();
  const CosimReport report = accel_cosim(impl, cfg, samples);
  EXPECT_EQ(report.checksum, reference_checksum(kernel, samples))
      << interface_level_name(GetParam());
  EXPECT_GT(report.total_cycles, 0.0);
  EXPECT_EQ(report.hw_activations, samples.size());
}

INSTANTIATE_TEST_SUITE_P(AllLevels, CosimLevels,
                         ::testing::Values(InterfaceLevel::kPin,
                                           InterfaceLevel::kRegister,
                                           InterfaceLevel::kDriver,
                                           InterfaceLevel::kMessage));

TEST(Cosim, AbstractionLadderEventsDecreaseAccuracyDegrades) {
  const ir::Cdfg kernel = apps::fir_kernel(6);
  const hw::HlsResult impl = make_impl(kernel);
  const auto samples = random_samples(kernel, 12, 33);

  std::map<InterfaceLevel, CosimReport> reports;
  for (const InterfaceLevel level : kAllInterfaceLevels) {
    CosimConfig cfg;
    cfg.level = level;
    reports[level] = accel_cosim(impl, cfg, samples);
  }

  // Simulation cost: strictly decreasing event counts down the ladder.
  EXPECT_GT(reports[InterfaceLevel::kPin].sim_events,
            reports[InterfaceLevel::kRegister].sim_events);
  EXPECT_GT(reports[InterfaceLevel::kRegister].sim_events,
            reports[InterfaceLevel::kDriver].sim_events);
  EXPECT_GE(reports[InterfaceLevel::kDriver].sim_events,
            reports[InterfaceLevel::kMessage].sim_events);

  // Timing accuracy: pin is ground truth; error grows up the ladder.
  const double truth = reports[InterfaceLevel::kPin].total_cycles;
  const double err_reg =
      relative_error(reports[InterfaceLevel::kRegister].total_cycles, truth);
  const double err_drv =
      relative_error(reports[InterfaceLevel::kDriver].total_cycles, truth);
  const double err_msg =
      relative_error(reports[InterfaceLevel::kMessage].total_cycles, truth);
  EXPECT_LT(err_reg, err_drv);
  EXPECT_LT(err_drv, err_msg);

  // Pin level observes real signal activity; others do not.
  EXPECT_GT(reports[InterfaceLevel::kPin].signal_transitions, 0u);
  EXPECT_EQ(reports[InterfaceLevel::kRegister].signal_transitions, 0u);
}

TEST(Cosim, IrqDriverEnablesBackgroundWork) {
  const ir::Cdfg kernel = apps::dct8_kernel();
  const hw::HlsResult impl = make_impl(kernel);
  const auto samples = random_samples(kernel, 6, 55);

  CosimConfig polling;
  polling.level = InterfaceLevel::kRegister;
  polling.use_irq = false;
  const CosimReport poll_report = accel_cosim(impl, polling, samples);

  CosimConfig irq;
  irq.level = InterfaceLevel::kRegister;
  irq.use_irq = true;
  irq.background_unroll = 4;
  const CosimReport irq_report = accel_cosim(impl, irq, samples);

  // Functionality identical.
  EXPECT_EQ(poll_report.checksum, irq_report.checksum);
  // Polling does no background work; interrupts free the CPU for it.
  EXPECT_EQ(poll_report.background_units, 0);
  EXPECT_GT(irq_report.background_units, 0);
  // Polling hammers the bus while waiting.
  EXPECT_GT(poll_report.bus_accesses, irq_report.bus_accesses);
}

TEST(OsCosim, ProducerConsumerCompletesAndCountsMessages) {
  const ir::ProcessNetwork net = apps::worker_farm_network(2, 1000, 64);
  OsCosimConfig cfg;
  cfg.iterations = 10;
  const std::vector<bool> all_sw(net.num_processes(), false);
  const OsCosimResult r = process_cosim(net, all_sw, cfg);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_GT(r.makespan, 0.0);
  for (const std::uint64_t m : r.channel_messages) {
    EXPECT_EQ(m, 10u);
  }
  EXPECT_GT(r.cpu_busy_cycles, 0.0);
  EXPECT_DOUBLE_EQ(r.hw_busy_cycles, 0.0);
}

TEST(OsCosim, HardwareMappingExploitsConcurrency) {
  const ir::ProcessNetwork net = apps::worker_farm_network(4, 4000, 32);
  OsCosimConfig cfg;
  cfg.iterations = 12;
  const std::vector<bool> all_sw(net.num_processes(), false);
  std::vector<bool> workers_hw(net.num_processes(), false);
  for (const ir::ProcessId p : net.process_ids()) {
    if (net.process(p).name.rfind("worker", 0) == 0) {
      workers_hw[p.index()] = true;
    }
  }
  const OsCosimResult sw = process_cosim(net, all_sw, cfg);
  const OsCosimResult hw = process_cosim(net, workers_hw, cfg);
  EXPECT_FALSE(sw.deadlocked);
  EXPECT_FALSE(hw.deadlocked);
  // Hardware workers run concurrently and each is 10x faster.
  EXPECT_LT(hw.makespan, sw.makespan / 2.0);
  EXPECT_GT(hw.hw_busy_cycles, 0.0);
  EXPECT_GT(hw.cross_comm_cycles, 0.0);
}

TEST(OsCosim, CrossBoundaryTrafficIsPricier) {
  const ir::ProcessNetwork net = apps::packet_pipeline_network();
  OsCosimConfig cfg;
  cfg.iterations = 8;
  // Mapping that splits the heavy rx->checksum edge across the boundary.
  std::vector<bool> split(net.num_processes(), false);
  split[1] = true;  // checksum in HW
  const OsCosimResult r = process_cosim(net, split, cfg);
  EXPECT_GT(r.cross_comm_cycles, 0.0);
  EXPECT_LE(r.cross_comm_cycles, r.comm_cycles);
}

TEST(OsCosim, MappingSizeValidated) {
  const ir::ProcessNetwork net = apps::ekg_monitor_network();
  OsCosimConfig cfg;
  EXPECT_THROW(process_cosim(net, std::vector<bool>(2, false), cfg),
               PreconditionError);
}

}  // namespace
}  // namespace mhs::sim
