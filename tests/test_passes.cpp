// Tests for the CDFG optimizer (ir/optimize) and the Verilog RTL emitter
// (hw/rtl_emit).
#include <gtest/gtest.h>

#include "apps/kernels.h"
#include "base/rng.h"
#include "hw/rtl_emit.h"
#include "ir/optimize.h"
#include "sw/estimate.h"
#include "sw/iss.h"

namespace mhs {
namespace {

// ---------------------------------------------------------------- optimizer

TEST(Optimize, FoldsConstantExpressions) {
  ir::Cdfg c("fold");
  const ir::OpId k = c.add(c.constant(20), c.constant(22));
  c.output("y", c.mul(k, c.constant(1)));
  ir::OptimizeStats stats;
  const ir::Cdfg opt = optimize(c, &stats);
  EXPECT_GE(stats.constants_folded + stats.identities_applied, 1u);
  // Result collapses to const + output.
  EXPECT_LE(opt.num_ops(), 2u);
  EXPECT_EQ(opt.evaluate({}).at("y"), 42);
}

TEST(Optimize, AppliesIdentities) {
  ir::Cdfg c("ident");
  const ir::OpId x = c.input("x");
  const ir::OpId zero = c.constant(0);
  const ir::OpId one = c.constant(1);
  c.output("a", c.add(x, zero));                       // x + 0 -> x
  c.output("b", c.mul(x, one));                        // x * 1 -> x
  c.output("c", c.mul(x, zero));                       // x * 0 -> 0
  c.output("d", c.sub(x, x));                          // x - x -> 0
  c.output("e", c.bxor(x, x));                         // x ^ x -> 0
  c.output("f", c.binary(ir::OpKind::kMin, x, x));     // min(x,x) -> x
  ir::OptimizeStats stats;
  const ir::Cdfg opt = optimize(c, &stats);
  EXPECT_GE(stats.identities_applied, 5u);
  // Only input, const 0, and the six outputs should remain.
  EXPECT_LE(opt.num_ops(), 8u);
  const auto out = opt.evaluate({{"x", 123}});
  EXPECT_EQ(out.at("a"), 123);
  EXPECT_EQ(out.at("b"), 123);
  EXPECT_EQ(out.at("c"), 0);
  EXPECT_EQ(out.at("d"), 0);
  EXPECT_EQ(out.at("e"), 0);
  EXPECT_EQ(out.at("f"), 123);
}

TEST(Optimize, MergesCommonSubexpressions) {
  ir::Cdfg c("cse");
  const ir::OpId a = c.input("a");
  const ir::OpId b = c.input("b");
  const ir::OpId s1 = c.add(a, b);
  const ir::OpId s2 = c.add(a, b);  // identical
  c.output("y", c.mul(s1, s2));
  ir::OptimizeStats stats;
  const ir::Cdfg opt = optimize(c, &stats);
  EXPECT_EQ(stats.subexpressions_merged, 1u);
  EXPECT_EQ(opt.evaluate({{"a", 3}, {"b", 4}}).at("y"), 49);
}

TEST(Optimize, RemovesDeadCode) {
  ir::Cdfg c("dce");
  const ir::OpId a = c.input("a");
  c.mul(a, a);  // dead: no path to an output
  c.add(a, c.constant(5));  // dead
  c.output("y", a);
  ir::OptimizeStats stats;
  const ir::Cdfg opt = optimize(c, &stats);
  EXPECT_GE(stats.dead_ops_removed, 2u);
  EXPECT_EQ(opt.num_ops(), 2u);  // input + output
}

TEST(Optimize, CascadesToFixpoint) {
  // (x * 0) feeds an add; after folding the mul, the add folds too, and
  // the stranded operands disappear.
  ir::Cdfg c("cascade");
  const ir::OpId x = c.input("x");
  const ir::OpId m = c.mul(x, c.constant(0));
  const ir::OpId s = c.add(m, c.constant(7));
  c.output("y", s);
  const ir::Cdfg opt = optimize(c);
  EXPECT_EQ(opt.evaluate({{"x", 999}}).at("y"), 7);
  EXPECT_LE(opt.num_ops(), 2u);  // const 7 + output (input dead)
}

TEST(Optimize, KeepsConstantDivisionByZero) {
  ir::Cdfg c("trap");
  c.output("y", c.binary(ir::OpKind::kDiv, c.constant(5), c.constant(0)));
  const ir::Cdfg opt = optimize(c);
  EXPECT_THROW(opt.evaluate({}), PreconditionError);
}

TEST(Optimize, SelectWithConstantCondition) {
  ir::Cdfg c("sel");
  const ir::OpId a = c.input("a");
  const ir::OpId b = c.input("b");
  c.output("t", c.select(c.constant(1), a, b));
  c.output("f", c.select(c.constant(0), a, b));
  const ir::Cdfg opt = optimize(c);
  const auto out = opt.evaluate({{"a", 10}, {"b", 20}});
  EXPECT_EQ(out.at("t"), 10);
  EXPECT_EQ(out.at("f"), 20);
}

TEST(Optimize, ShrinksRealKernelsWithoutChangingSemantics) {
  Rng rng(3);
  const ir::Cdfg kernels[] = {apps::fir_kernel(12), apps::dct8_kernel(),
                              apps::xtea_kernel(6),
                              apps::checksum_kernel(8)};
  for (const ir::Cdfg& kernel : kernels) {
    ir::OptimizeStats stats;
    const ir::Cdfg opt = optimize(kernel, &stats);
    EXPECT_LE(opt.num_ops(), kernel.num_ops()) << kernel.name();
    for (int trial = 0; trial < 4; ++trial) {
      std::map<std::string, std::int64_t> in;
      for (const ir::OpId id : kernel.inputs()) {
        in[kernel.op(id).name] = rng.uniform_int(-10000, 10000);
      }
      EXPECT_EQ(opt.evaluate(in), kernel.evaluate(in)) << kernel.name();
    }
  }
}

TEST(Optimize, ReducesBothSwCyclesAndHwArea) {
  // The DCT has shared coefficient constants and shift chains the
  // optimizer can merge — one optimization, two implementation savings.
  const ir::Cdfg kernel = apps::dct8_kernel();
  const ir::Cdfg opt = optimize(kernel);
  const sw::CpuModel cpu = sw::reference_cpu();
  EXPECT_LE(sw::estimate_compiled(opt, cpu).cycles_per_iteration,
            sw::estimate_compiled(kernel, cpu).cycles_per_iteration);
  const hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinLatency;
  EXPECT_LE(hw::synthesize(opt, lib, constraints).area.total(),
            hw::synthesize(kernel, lib, constraints).area.total() * 1.05);
}

class OptimizeSeeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizeSeeded, RandomKernelEquivalence) {
  Rng rng(GetParam());
  ir::Cdfg c("rand");
  std::vector<ir::OpId> vals;
  for (int i = 0; i < 3; ++i) {
    vals.push_back(c.input("x" + std::to_string(i)));
  }
  for (int i = 0; i < 3; ++i) {
    vals.push_back(c.constant(rng.uniform_int(-2, 2)));
  }
  // No shifts: a random operand is not a legal shift amount.
  const ir::OpKind kinds[] = {ir::OpKind::kAdd, ir::OpKind::kSub,
                              ir::OpKind::kMul, ir::OpKind::kAnd,
                              ir::OpKind::kOr,  ir::OpKind::kXor,
                              ir::OpKind::kMin, ir::OpKind::kMax,
                              ir::OpKind::kCmpLt};
  for (int i = 0; i < 30; ++i) {
    vals.push_back(c.binary(kinds[rng.uniform_int(0, 8)], rng.pick(vals),
                            rng.pick(vals)));
  }
  c.output("y", vals.back());
  c.output("z", vals[vals.size() / 2]);

  const ir::Cdfg opt = optimize(c);
  EXPECT_LE(opt.num_ops(), c.num_ops());
  for (int trial = 0; trial < 6; ++trial) {
    std::map<std::string, std::int64_t> in;
    for (const ir::OpId id : c.inputs()) {
      in[c.op(id).name] = rng.uniform_int(-10000, 10000);
    }
    EXPECT_EQ(opt.evaluate(in), c.evaluate(in)) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimizeSeeded,
    ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------- RTL emit

hw::HlsResult synth(const ir::Cdfg& kernel, hw::HlsGoal goal) {
  static hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = goal;
  return hw::synthesize(kernel, lib, constraints);
}

TEST(RtlEmit, SanitizesIdentifiers) {
  EXPECT_EQ(hw::sanitize_identifier("fir-8.q"), "fir_8_q");
  EXPECT_EQ(hw::sanitize_identifier("8tap"), "m8tap");
  EXPECT_EQ(hw::sanitize_identifier(""), "m");
}

TEST(RtlEmit, ModuleStructure) {
  ir::Cdfg c("two_mul");
  const ir::OpId a = c.input("a");
  const ir::OpId b = c.input("b");
  c.output("y", c.mul(c.add(a, b), a));
  const hw::HlsResult impl = synth(c, hw::HlsGoal::kMinLatency);
  const std::string rtl = hw::emit_verilog(impl);

  EXPECT_NE(rtl.find("module two_mul ("), std::string::npos);
  EXPECT_NE(rtl.find("input  wire clk"), std::string::npos);
  EXPECT_NE(rtl.find("input  wire signed [63:0] in_a"), std::string::npos);
  EXPECT_NE(rtl.find("output reg  signed [63:0] out_y"), std::string::npos);
  EXPECT_NE(rtl.find("in_a + in_b"), std::string::npos);
  EXPECT_NE(rtl.find("done  <= 1'b1;"), std::string::npos);
  EXPECT_NE(rtl.find("endmodule"), std::string::npos);
  // One case arm per control step plus idle.
  for (std::size_t s = 1; s <= impl.schedule.num_steps(); ++s) {
    EXPECT_NE(rtl.find("        " + std::to_string(s) + ": begin"),
              std::string::npos)
        << "missing state " << s;
  }
}

TEST(RtlEmit, DeterministicOutput) {
  const ir::Cdfg c = apps::fir_kernel(4);
  const hw::HlsResult impl = synth(c, hw::HlsGoal::kMinArea);
  EXPECT_EQ(hw::emit_verilog(impl), hw::emit_verilog(impl));
}

TEST(RtlEmit, NegativeConstantsParenthesized) {
  ir::Cdfg c("neg");
  const ir::OpId a = c.input("a");
  c.output("y", c.unary(ir::OpKind::kNeg,
                        c.add(a, c.constant(-5))));
  const hw::HlsResult impl = synth(c, hw::HlsGoal::kMinLatency);
  const std::string rtl = hw::emit_verilog(impl);
  EXPECT_NE(rtl.find("-64'sd5"), std::string::npos);
  // Unary minus always wraps its operand.
  EXPECT_EQ(rtl.find("--"), std::string::npos);
}

TEST(RtlEmit, CoversEveryOpKindUsedByTheKernels) {
  const ir::Cdfg kernels[] = {apps::dct8_kernel(), apps::median5_kernel(),
                              apps::xtea_kernel(2), apps::sad_kernel(3)};
  for (const ir::Cdfg& kernel : kernels) {
    const hw::HlsResult impl = synth(kernel, hw::HlsGoal::kMinArea);
    const std::string rtl = hw::emit_verilog(impl);
    EXPECT_NE(rtl.find("endmodule"), std::string::npos) << kernel.name();
    // Every output port materializes.
    for (const ir::OpId id : kernel.outputs()) {
      EXPECT_NE(rtl.find("out_" +
                         hw::sanitize_identifier(kernel.op(id).name)),
                std::string::npos)
          << kernel.name();
    }
  }
}

TEST(RtlEmit, WidthOptionRespected) {
  ir::Cdfg c("w32");
  c.output("y", c.add(c.input("a"), c.input("b")));
  const hw::HlsResult impl = synth(c, hw::HlsGoal::kMinLatency);
  hw::RtlOptions options;
  options.width = 32;
  const std::string rtl = hw::emit_verilog(impl, options);
  EXPECT_NE(rtl.find("[31:0]"), std::string::npos);
  EXPECT_EQ(rtl.find("[63:0]"), std::string::npos);
  hw::RtlOptions bad;
  bad.width = 128;
  EXPECT_THROW(hw::emit_verilog(impl, bad), PreconditionError);
}

}  // namespace
}  // namespace mhs
