// Unit tests for mhs::ir — task graphs, algorithms, generator, CDFG,
// process networks, DOT export.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "ir/cdfg.h"
#include "ir/dot.h"
#include "ir/process_network.h"
#include "ir/task_graph.h"
#include "ir/task_graph_algos.h"
#include "ir/task_graph_gen.h"

namespace mhs::ir {
namespace {

TaskGraph diamond() {
  // a -> b, a -> c, b -> d, c -> d
  TaskGraph g("diamond");
  const TaskId a = g.add_task("a", TaskCosts{10, 2, 100, 4, 0, 0});
  const TaskId b = g.add_task("b", TaskCosts{20, 4, 200, 8, 0, 0});
  const TaskId c = g.add_task("c", TaskCosts{30, 5, 300, 12, 0, 0});
  const TaskId d = g.add_task("d", TaskCosts{40, 8, 400, 16, 0, 0});
  g.add_edge(a, b, 8);
  g.add_edge(a, c, 8);
  g.add_edge(b, d, 8);
  g.add_edge(c, d, 8);
  return g;
}

TEST(TaskGraph, BuildAndQuery) {
  TaskGraph g = diamond();
  EXPECT_EQ(g.num_tasks(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.task(TaskId(0)).name, "a");
  EXPECT_EQ(g.successors(TaskId(0)).size(), 2u);
  EXPECT_EQ(g.predecessors(TaskId(3)).size(), 2u);
  EXPECT_TRUE(g.in_edges(TaskId(0)).empty());
  EXPECT_TRUE(g.out_edges(TaskId(3)).empty());
  EXPECT_DOUBLE_EQ(g.total_traffic_bytes(), 32.0);
  EXPECT_DOUBLE_EQ(g.total_sw_cycles(), 100.0);
}

TEST(TaskGraph, RejectsBadEdges) {
  TaskGraph g;
  const TaskId a = g.add_task("a", {});
  EXPECT_THROW(g.add_edge(a, a, 1.0), PreconditionError);       // self loop
  EXPECT_THROW(g.add_edge(a, TaskId(9), 1.0), PreconditionError);
  EXPECT_THROW(g.add_edge(a, TaskId::invalid(), 1.0), PreconditionError);
}

TEST(TaskGraph, DetectsCycles) {
  TaskGraph g;
  const TaskId a = g.add_task("a", {});
  const TaskId b = g.add_task("b", {});
  g.add_edge(a, b, 1.0);
  g.add_edge(b, a, 1.0);
  EXPECT_FALSE(g.is_dag());
  EXPECT_THROW(g.validate(), PreconditionError);
}

TEST(TaskGraphAlgos, TopologicalOrderRespectsEdges) {
  TaskGraph g = diamond();
  const auto order = topological_order(g);
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i].index()] = i;
  for (const EdgeId e : g.edge_ids()) {
    EXPECT_LT(pos[g.edge(e).src.index()], pos[g.edge(e).dst.index()]);
  }
}

TEST(TaskGraphAlgos, CriticalPathSwDelays) {
  TaskGraph g = diamond();
  // a(10) -> c(30) -> d(40) = 80 with zero edge cost.
  EXPECT_DOUBLE_EQ(
      critical_path_length(g, sw_delay(g), zero_edge_delay()), 80.0);
  const auto path = critical_path(g, sw_delay(g), zero_edge_delay());
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(g.task(path[0]).name, "a");
  EXPECT_EQ(g.task(path[1]).name, "c");
  EXPECT_EQ(g.task(path[2]).name, "d");
}

TEST(TaskGraphAlgos, CriticalPathWithEdgeDelays) {
  TaskGraph g = diamond();
  // bus delay of 8 bytes at 1 byte/cycle adds 8 per hop: 10+8+30+8+40 = 96.
  EXPECT_DOUBLE_EQ(
      critical_path_length(g, sw_delay(g), bus_edge_delay(g, 1.0)), 96.0);
}

TEST(TaskGraphAlgos, TLevelsAndBLevelsAgreeOnCriticalPath) {
  TaskGraph g = diamond();
  const auto tl = t_levels(g, sw_delay(g), zero_edge_delay());
  const auto bl = b_levels(g, sw_delay(g), zero_edge_delay());
  double best = 0.0;
  for (const TaskId t : g.task_ids()) {
    best = std::max(best, tl[t.index()] + bl[t.index()]);
  }
  EXPECT_DOUBLE_EQ(best,
                   critical_path_length(g, sw_delay(g), zero_edge_delay()));
}

TEST(TaskGraphAlgos, SourcesSinksComponentsWidth) {
  TaskGraph g = diamond();
  EXPECT_EQ(sources(g).size(), 1u);
  EXPECT_EQ(sinks(g).size(), 1u);
  EXPECT_EQ(num_weak_components(g), 1u);
  EXPECT_EQ(width_estimate(g), 2u);  // b and c in parallel

  TaskGraph two;
  two.add_task("x", {});
  two.add_task("y", {});
  EXPECT_EQ(num_weak_components(two), 2u);
}

class GeneratorShapes : public ::testing::TestWithParam<GraphShape> {};

TEST_P(GeneratorShapes, ProducesValidAnnotatedDag) {
  Rng rng(42);
  TaskGraphGenConfig cfg;
  cfg.shape = GetParam();
  cfg.num_tasks = 12;
  const TaskGraph g = generate_task_graph(cfg, rng);
  EXPECT_TRUE(g.is_dag());
  EXPECT_GE(g.num_tasks(), 10u);  // trees may round up
  for (const TaskId t : g.task_ids()) {
    const TaskCosts& c = g.task(t).costs;
    EXPECT_GT(c.sw_cycles, 0.0);
    EXPECT_GT(c.hw_cycles, 0.0);
    EXPECT_LT(c.hw_cycles, c.sw_cycles);  // speedup >= 2 configured
    EXPECT_GT(c.hw_area, 0.0);
    EXPECT_GE(c.parallelism, 0.0);
    EXPECT_LE(c.parallelism, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllShapes, GeneratorShapes,
                         ::testing::Values(GraphShape::kLayered,
                                           GraphShape::kPipeline,
                                           GraphShape::kForkJoin,
                                           GraphShape::kTree));

TEST(Generator, DeterministicForSeed) {
  TaskGraphGenConfig cfg;
  cfg.num_tasks = 15;
  Rng r1(5), r2(5);
  const TaskGraph a = generate_task_graph(cfg, r1);
  const TaskGraph b = generate_task_graph(cfg, r2);
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (const TaskId t : a.task_ids()) {
    EXPECT_DOUBLE_EQ(a.task(t).costs.sw_cycles, b.task(t).costs.sw_cycles);
  }
}

TEST(Generator, PipelineIsAChain) {
  Rng rng(1);
  TaskGraphGenConfig cfg;
  cfg.shape = GraphShape::kPipeline;
  cfg.num_tasks = 6;
  const TaskGraph g = generate_task_graph(cfg, rng);
  EXPECT_EQ(g.num_tasks(), 6u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(width_estimate(g), 1u);
}

TEST(Cdfg, EvaluateArithmetic) {
  Cdfg c("t");
  const OpId a = c.input("a");
  const OpId b = c.input("b");
  c.output("sum", c.add(a, b));
  c.output("prod", c.mul(a, b));
  c.output("min", c.binary(OpKind::kMin, a, b));
  const auto out = c.evaluate({{"a", 6}, {"b", -7}});
  EXPECT_EQ(out.at("sum"), -1);
  EXPECT_EQ(out.at("prod"), -42);
  EXPECT_EQ(out.at("min"), -7);
}

TEST(Cdfg, SelectAndCompare) {
  Cdfg c("sel");
  const OpId a = c.input("a");
  const OpId b = c.input("b");
  const OpId lt = c.binary(OpKind::kCmpLt, a, b);
  c.output("smaller", c.select(lt, a, b));
  EXPECT_EQ(c.evaluate({{"a", 3}, {"b", 9}}).at("smaller"), 3);
  EXPECT_EQ(c.evaluate({{"a", 9}, {"b", 3}}).at("smaller"), 3);
}

TEST(Cdfg, AbsNegShift) {
  Cdfg c("u");
  const OpId a = c.input("a");
  c.output("abs", c.unary(OpKind::kAbs, a));
  c.output("neg", c.unary(OpKind::kNeg, a));
  c.output("shl", c.shl(a, c.constant(4)));
  const auto out = c.evaluate({{"a", -3}});
  EXPECT_EQ(out.at("abs"), 3);
  EXPECT_EQ(out.at("neg"), 3);
  EXPECT_EQ(out.at("shl"), -48);
}

TEST(Cdfg, DivByZeroThrows) {
  Cdfg c("d");
  c.output("q", c.binary(OpKind::kDiv, c.input("a"), c.input("b")));
  EXPECT_THROW(c.evaluate({{"a", 1}, {"b", 0}}), PreconditionError);
}

TEST(Cdfg, MissingInputThrows) {
  Cdfg c("m");
  c.output("y", c.input("x"));
  EXPECT_THROW(c.evaluate({}), PreconditionError);
}

TEST(Cdfg, UsersAndDepth) {
  Cdfg c("g");
  const OpId a = c.input("a");
  const OpId s = c.add(a, a);
  const OpId t = c.mul(s, s);
  c.output("y", t);
  EXPECT_EQ(c.users(a).size(), 1u);  // the add (uses it twice, one user op)
  EXPECT_EQ(c.users(s).size(), 1u);
  EXPECT_EQ(c.depth(), 2u);
}

TEST(Cdfg, ArityEnforced) {
  Cdfg c("bad");
  const OpId a = c.input("a");
  EXPECT_THROW(c.unary(OpKind::kAdd, a), PreconditionError);
  EXPECT_THROW(c.binary(OpKind::kNeg, a, a), PreconditionError);
}

TEST(Cdfg, InsertionOrderIsTopological) {
  Cdfg c("topo");
  const OpId a = c.input("a");
  const OpId b = c.add(a, c.constant(1));
  c.output("y", b);
  // Operands always precede users by construction.
  for (const OpId id : c.op_ids()) {
    for (const OpId operand : c.op(id).operands) {
      EXPECT_LT(operand, id);
    }
  }
}

TEST(ProcessNetwork, BuildValidateAndQuery) {
  ProcessNetwork net("pn");
  Process p1;
  p1.name = "prod";
  p1.sw_cycles = 100;
  Process p2;
  p2.name = "cons";
  p2.sw_cycles = 50;
  const ProcessId a = net.add_process(p1);
  const ProcessId b = net.add_process(p2);
  const ChannelId ch = net.add_channel("data", a, b, 2);
  net.add_transfer(ch, 32);
  net.validate();
  EXPECT_EQ(net.num_processes(), 2u);
  EXPECT_EQ(net.num_channels(), 1u);
  EXPECT_DOUBLE_EQ(net.channel_bytes_per_iteration(ch), 32.0);
  EXPECT_EQ(net.process(a).ops.size(), 1u);
  EXPECT_EQ(net.process(b).ops.size(), 1u);
  EXPECT_EQ(net.process(a).ops[0].kind, ChannelOp::Kind::kSend);
  EXPECT_EQ(net.process(b).ops[0].kind, ChannelOp::Kind::kReceive);
}

TEST(ProcessNetwork, RejectsMismatchedOps) {
  ProcessNetwork net("bad");
  Process p;
  p.name = "x";
  const ProcessId a = net.add_process(p);
  const ProcessId b = net.add_process(p);
  const ChannelId ch = net.add_channel("c", a, b, 1);
  // Hand-craft an illegal op: b sends on a channel it only consumes.
  net.process(b).ops.push_back(
      ChannelOp{ChannelOp::Kind::kSend, ch, 8.0});
  EXPECT_THROW(net.validate(), PreconditionError);
}

TEST(ProcessNetwork, RejectsSelfChannel) {
  ProcessNetwork net("self");
  Process p;
  p.name = "x";
  const ProcessId a = net.add_process(p);
  EXPECT_THROW(net.add_channel("c", a, a, 1), PreconditionError);
}

TEST(Dot, ExportsAllThreeIrs) {
  const TaskGraph g = diamond();
  const std::string gd = to_dot(g);
  EXPECT_NE(gd.find("digraph"), std::string::npos);
  EXPECT_NE(gd.find("\"a\\nsw=10"), std::string::npos);

  Cdfg c("k");
  c.output("y", c.add(c.input("a"), c.constant(2)));
  const std::string cd = to_dot(c);
  EXPECT_NE(cd.find("input a"), std::string::npos);
  EXPECT_NE(cd.find("const 2"), std::string::npos);

  ProcessNetwork net("pn");
  Process p;
  p.name = "prod";
  const ProcessId a = net.add_process(p);
  p.name = "cons";
  const ProcessId b = net.add_process(p);
  net.add_channel("ch", a, b, 1);
  const std::string nd = to_dot(net);
  EXPECT_NE(nd.find("prod"), std::string::npos);
  EXPECT_NE(nd.find("ch"), std::string::npos);
}

}  // namespace
}  // namespace mhs::ir
