// Unit tests for mhs::sw — ISA, CPU models, code generation, register
// allocation/spilling, the ISS, MMIO, interrupts, and estimation.
#include <gtest/gtest.h>

#include "apps/kernels.h"
#include "base/rng.h"
#include "base/stats.h"
#include "sw/codegen.h"
#include "sw/cpu_model.h"
#include "sw/estimate.h"
#include "sw/isa.h"
#include "sw/iss.h"

namespace mhs::sw {
namespace {

TEST(Isa, DisassemblyIsReadable) {
  EXPECT_EQ(disassemble(Instr{Opcode::kAdd, 3, 1, 2, 0}), "add x3, x1, x2");
  EXPECT_EQ(disassemble(Instr{Opcode::kLi, 5, 0, 0, -7}), "li x5, -7");
  EXPECT_EQ(disassemble(Instr{Opcode::kLd, 4, 2, 0, 16}), "ld x4, 16(x2)");
  EXPECT_EQ(disassemble(Instr{Opcode::kSt, 0, 2, 9, 8}), "st x9, 8(x2)");
  EXPECT_EQ(disassemble(Instr{Opcode::kBne, 0, 1, 0, 12}),
            "bne x1, x0, @12");
  EXPECT_EQ(disassemble(Instr{Opcode::kHalt, 0, 0, 0, 0}), "halt");
}

TEST(Isa, EncodedSizeModelsWideImmediates) {
  EXPECT_EQ(encoded_size(Instr{Opcode::kAdd, 1, 2, 3, 0}), 4u);
  EXPECT_EQ(encoded_size(Instr{Opcode::kLi, 1, 0, 0, 100}), 4u);
  EXPECT_EQ(encoded_size(Instr{Opcode::kLi, 1, 0, 0, 1 << 20}), 12u);
}

TEST(CpuModel, CatalogSpansSpeedAndCost) {
  const auto cpus = processor_catalog();
  ASSERT_GE(cpus.size(), 4u);
  double min_cost = 1e18, max_cost = 0;
  for (const CpuModel& cpu : cpus) {
    min_cost = std::min(min_cost, cpu.cost);
    max_cost = std::max(max_cost, cpu.cost);
  }
  EXPECT_GE(max_cost / min_cost, 8.0);
}

TEST(Iss, BasicArithmeticAndHalt) {
  Iss iss;
  iss.load_program({
      Instr{Opcode::kLi, 1, 0, 0, 21},
      Instr{Opcode::kLi, 2, 0, 0, 2},
      Instr{Opcode::kMul, 3, 1, 2, 0},
      Instr{Opcode::kHalt, 0, 0, 0, 0},
  });
  const RunResult r = iss.run();
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.instructions, 4u);
  EXPECT_EQ(iss.reg(3), 42);
  // li(1) + li(1) + mul(4) + halt(1) = 7 cycles on the reference CPU.
  EXPECT_EQ(iss.total_cycles(), 7u);
}

TEST(Iss, ZeroRegisterIsImmutable) {
  Iss iss;
  iss.load_program({
      Instr{Opcode::kLi, 0, 0, 0, 99},
      Instr{Opcode::kAddi, 1, 0, 0, 5},
      Instr{Opcode::kHalt, 0, 0, 0, 0},
  });
  iss.run();
  EXPECT_EQ(iss.reg(0), 0);
  EXPECT_EQ(iss.reg(1), 5);
}

TEST(Iss, BranchesAndLoops) {
  // Sum 1..10 with a countdown loop.
  Iss iss;
  iss.load_program({
      Instr{Opcode::kLi, 1, 0, 0, 10},   // i = 10
      Instr{Opcode::kLi, 2, 0, 0, 0},    // acc = 0
      Instr{Opcode::kAdd, 2, 2, 1, 0},   // 2: acc += i
      Instr{Opcode::kAddi, 1, 1, 0, -1}, // i -= 1
      Instr{Opcode::kBne, 0, 1, 0, 2},   // while i != 0
      Instr{Opcode::kHalt, 0, 0, 0, 0},
  });
  const RunResult r = iss.run();
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(iss.reg(2), 55);
}

TEST(Iss, MemoryReadWriteAndAlignment) {
  Iss iss;
  iss.write_word(0x1000, -12345);
  EXPECT_EQ(iss.read_word(0x1000), -12345);
  EXPECT_EQ(iss.read_word(0x2000), 0);  // untouched memory reads zero
  EXPECT_THROW(iss.read_word(0x1001), PreconditionError);
  EXPECT_THROW(iss.write_word(0x1004, 1), PreconditionError);
}

TEST(Iss, MmioHooksInterceptAccesses) {
  Iss iss;
  std::int64_t device_reg = 7;
  std::uint64_t last_write_addr = 0;
  iss.add_mmio(
      0x8000, 0x80FF,
      [&](std::uint64_t) { return device_reg; },
      [&](std::uint64_t addr, std::int64_t v) {
        last_write_addr = addr;
        device_reg = v;
      });
  iss.load_program({
      Instr{Opcode::kLd, 1, 0, 0, 0x8008},  // read device
      Instr{Opcode::kAddi, 1, 1, 0, 1},
      Instr{Opcode::kSt, 0, 0, 1, 0x8010},  // write device
      Instr{Opcode::kHalt, 0, 0, 0, 0},
  });
  iss.run();
  EXPECT_EQ(device_reg, 8);
  EXPECT_EQ(last_write_addr, 0x8010u);
}

TEST(Iss, OverlappingMmioRejected) {
  Iss iss;
  auto r = [](std::uint64_t) { return std::int64_t{0}; };
  auto w = [](std::uint64_t, std::int64_t) {};
  iss.add_mmio(0x100, 0x1FF, r, w);
  EXPECT_THROW(iss.add_mmio(0x180, 0x280, r, w), PreconditionError);
}

TEST(Iss, InterruptVectorsAndReturns) {
  // Main increments x1 forever; ISR sets x2 and returns; we stop after the
  // interrupt has been serviced.
  Iss iss;
  iss.load_program({
      Instr{Opcode::kAddi, 1, 1, 0, 1},   // 0: main loop
      Instr{Opcode::kBne, 0, 2, 0, 3},    // 1: exit when x2 set
      Instr{Opcode::kJmp, 0, 0, 0, 0},    // 2: loop
      Instr{Opcode::kHalt, 0, 0, 0, 0},   // 3:
      Instr{Opcode::kLi, 2, 0, 0, 1},     // 4: ISR
      Instr{Opcode::kIret, 0, 0, 0, 0},   // 5:
  });
  iss.set_isr(4);
  iss.run(50);  // let the main loop spin a little
  EXPECT_FALSE(iss.halted());
  iss.raise_irq();
  const RunResult r = iss.run();
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(iss.reg(2), 1);
  EXPECT_FALSE(iss.in_isr());
}

TEST(Iss, IretOutsideHandlerThrows) {
  Iss iss;
  iss.load_program({Instr{Opcode::kIret, 0, 0, 0, 0}});
  EXPECT_THROW(iss.step(), PreconditionError);
}

TEST(Iss, DivideByZeroTraps) {
  Iss iss;
  iss.load_program({
      Instr{Opcode::kLi, 1, 0, 0, 5},
      Instr{Opcode::kDiv, 2, 1, 3, 0},
      Instr{Opcode::kHalt, 0, 0, 0, 0},
  });
  EXPECT_THROW(iss.run(), PreconditionError);
}

TEST(Codegen, StraightLineKernelMatchesEvaluator) {
  const ir::Cdfg kernels[] = {
      apps::fir_kernel(8),    apps::iir_biquad_kernel(),
      apps::dct8_kernel(),    apps::xtea_kernel(4),
      apps::median5_kernel(), apps::checksum_kernel(6),
      apps::sad_kernel(8),
  };
  Rng rng(5);
  for (const ir::Cdfg& c : kernels) {
    const Program p = compile(c);
    std::map<std::string, std::int64_t> in;
    for (const ir::OpId id : c.inputs()) {
      in[c.op(id).name] = rng.uniform_int(-5000, 5000);
    }
    Iss iss;
    const auto out = run_program(iss, p, in);
    EXPECT_EQ(out, c.evaluate(in)) << c.name();
  }
}

TEST(Codegen, SpillingPreservesSemantics) {
  // Compile the register-hungry DCT with progressively fewer registers;
  // results must not change while spills increase.
  const ir::Cdfg c = apps::dct8_kernel();
  std::map<std::string, std::int64_t> in;
  Rng rng(11);
  for (const ir::OpId id : c.inputs()) {
    in[c.op(id).name] = rng.uniform_int(-100, 100) << 16;
  }
  const auto reference = c.evaluate(in);

  std::size_t prev_spills = 0;
  bool spills_grew = false;
  for (const std::size_t regs : {26u, 12u, 6u, 3u}) {
    CodegenOptions opts;
    opts.allocatable_regs = regs;
    const Program p = compile(c, opts);
    Iss iss;
    EXPECT_EQ(run_program(iss, p, in), reference) << regs << " registers";
    if (p.num_spills > prev_spills) spills_grew = true;
    prev_spills = p.num_spills;
  }
  EXPECT_TRUE(spills_grew);
}

TEST(Codegen, FewerRegistersNeverFasterCode) {
  const ir::Cdfg c = apps::dct8_kernel();
  CodegenOptions many;
  many.allocatable_regs = 26;
  CodegenOptions few;
  few.allocatable_regs = 4;
  EXPECT_LE(compile(c, many).code.size(), compile(c, few).code.size());
}

TEST(Codegen, LoopWrapperRepeatsBody) {
  ir::Cdfg c("inc");
  c.output("y", c.add(c.input("x"), c.constant(1)));
  CodegenOptions opts;
  opts.iterations = 10;
  const Program p = compile(c, opts);
  Iss iss;
  const auto out = run_program(iss, p, {{"x", 41}});
  EXPECT_EQ(out.at("y"), 42);
  // The loop executed 10 times: at least 10 body loads retired.
  EXPECT_GE(iss.opcode_histogram()[static_cast<std::size_t>(Opcode::kLd)],
            10u);
}

TEST(Codegen, RejectsBadOptions) {
  ir::Cdfg c("k");
  c.output("y", c.input("x"));
  CodegenOptions zero_regs;
  zero_regs.allocatable_regs = 0;
  EXPECT_THROW(compile(c, zero_regs), PreconditionError);
  CodegenOptions zero_iters;
  zero_iters.iterations = 0;
  EXPECT_THROW(compile(c, zero_iters), PreconditionError);
}

TEST(Estimate, CompiledEstimateMatchesIssExactly) {
  // Branch-free code: the static sum must equal measured cycles.
  const ir::Cdfg kernels[] = {apps::fir_kernel(8), apps::median5_kernel()};
  for (const ir::Cdfg& c : kernels) {
    const CpuModel cpu = reference_cpu();
    const SwEstimate est = estimate_compiled(c, cpu);

    const Program p = compile(c);
    std::map<std::string, std::int64_t> in;
    for (const ir::OpId id : c.inputs()) in[c.op(id).name] = 1;
    Iss iss(cpu);
    double measured = 0.0;
    run_program(iss, p, in, 10'000'000, &measured);
    // The program includes the final halt (1 cycle) the estimate excludes.
    EXPECT_NEAR(est.cycles_per_iteration, measured - 1.0, 1e-9) << c.name();
  }
}

TEST(Estimate, QuickEstimateWithinTolerance) {
  const ir::Cdfg kernels[] = {apps::fir_kernel(16), apps::dct8_kernel(),
                              apps::xtea_kernel(8)};
  for (const ir::Cdfg& c : kernels) {
    const CpuModel cpu = reference_cpu();
    const double quick = estimate_quick(c, cpu).cycles_per_iteration;
    const double exact = estimate_compiled(c, cpu).cycles_per_iteration;
    EXPECT_LT(relative_error(quick, exact), 0.35) << c.name();
  }
}

TEST(Estimate, FasterCpuGivesFewerCycles) {
  const ir::Cdfg c = apps::dct8_kernel();
  const auto cpus = processor_catalog();
  // dsp64 has a 1-cycle multiplier: must beat the reference on DCT.
  const CpuModel& ref = cpus[2];
  const CpuModel& dsp = cpus[4];
  ASSERT_EQ(dsp.name, "dsp64");
  EXPECT_LT(estimate_compiled(c, dsp).cycles_per_iteration,
            estimate_compiled(c, ref).cycles_per_iteration);
}

class CodegenRandomKernels : public ::testing::TestWithParam<int> {};

TEST_P(CodegenRandomKernels, RandomDataAgreesWithEvaluator) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  // Random dataflow kernel over safe ops (no div to avoid trap tuning).
  ir::Cdfg c("rand" + std::to_string(GetParam()));
  std::vector<ir::OpId> vals;
  for (int i = 0; i < 3; ++i) {
    vals.push_back(c.input("x" + std::to_string(i)));
  }
  const ir::OpKind kinds[] = {ir::OpKind::kAdd, ir::OpKind::kSub,
                              ir::OpKind::kMul, ir::OpKind::kAnd,
                              ir::OpKind::kOr,  ir::OpKind::kXor,
                              ir::OpKind::kMin, ir::OpKind::kMax,
                              ir::OpKind::kCmpLt};
  for (int i = 0; i < 20; ++i) {
    const ir::OpId a = rng.pick(vals);
    const ir::OpId b = rng.pick(vals);
    vals.push_back(c.binary(kinds[rng.uniform_int(0, 8)], a, b));
  }
  c.output("y", vals.back());
  c.output("z", vals[vals.size() / 2]);

  CodegenOptions opts;
  opts.allocatable_regs =
      static_cast<std::size_t>(rng.uniform_int(3, 26));
  const Program p = compile(c, opts);
  for (int trial = 0; trial < 5; ++trial) {
    std::map<std::string, std::int64_t> in;
    for (const ir::OpId id : c.inputs()) {
      in[c.op(id).name] = rng.uniform_int(-1'000'000, 1'000'000);
    }
    Iss iss;
    EXPECT_EQ(run_program(iss, p, in), c.evaluate(in));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodegenRandomKernels,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace mhs::sw
