// Tier-2 fuzz harness for the fault-injection subsystem (built with the
// tree's sanitizer presets in the sanitize gate; see
// cmake/run_sanitized.cmake).
//
// Two surfaces take adversarial input here:
//
//   1. run_cosim under randomly generated FaultPlans — every fault kind
//      at random rates/params, all four interface levels, polling and
//      IRQ drivers. Whatever the plan does, a run must terminate, keep
//      the resilience invariants (injected >= detected >= recovered,
//      per-kind counts summing to injected), keep the cycle-attribution
//      profile consistent (buckets sum to total), and reproduce
//      bit-exactly from the same (seed, plan).
//
//   2. mhs_lint over mutated IR text — random corruptions of valid
//      artifacts must map to a clean exit code (0 valid, 1 findings,
//      2 usage/IO), never a crash or hang.
//
// Iteration counts honor MHS_FUZZ_ITERS so the sanitize gate can dial
// the budget; the default is 500 plans. The plan-seed base is
// overridable via MHS_FAULT_SEED (see tests/fuzz_env.h).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/kernels.h"
#include "apps/mhs_lint/lint_lib.h"
#include "fault/fault.h"
#include "fuzz_env.h"
#include "hw/hls.h"
#include "sim/cosim.h"
#include "sim/run.h"

namespace mhs {
namespace {

constexpr std::uint64_t kPlanSeedBase = 0x5eed0000ull;
constexpr std::uint64_t kMutateSeedBase = 0xc0de0000ull;

/// Drives the accelerator co-simulation through the sim::run seam.
sim::CosimReport accel_cosim(
    const hw::HlsResult& impl, const sim::CosimConfig& config,
    const std::vector<std::vector<std::int64_t>>& samples) {
  sim::SimRequest sreq;
  sreq.impl = &impl;
  sreq.samples = &samples;
  sreq.cosim = config;
  return sim::run(sreq).cosim.value();
}


hw::HlsResult make_impl(const ir::Cdfg& kernel) {
  static hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  return hw::synthesize(kernel, lib, constraints);
}

/// One random fault plan: a random subset of every kind the injector
/// knows, with rates spanning "almost never" to "every opportunity".
fault::FaultPlan random_plan(fault::SplitMix64& rng) {
  fault::FaultPlan plan;
  const auto rate = [&] {
    const double u = rng.uniform();
    return u < 0.25 ? 0.0 : u;  // zero-rate specs must also be harmless
  };
  if (rng.next() & 1) {
    plan.add(fault::FaultSpec::bus_bit_flip(
        rate(), rng.next() % 2 == 0 ? fault::FaultSpec::kRandomBit
                                    : rng.next() % 64));
  }
  if (rng.next() & 1) {
    plan.add(fault::FaultSpec::bus_grant_starvation(rate(), 1 + rng.next() % 32));
  }
  if (rng.next() & 1) {
    plan.add(fault::FaultSpec::dma_drop(rate()));
  }
  if (rng.next() & 1) {
    plan.add(fault::FaultSpec::dma_duplicate(rate()));
  }
  if (rng.next() & 1) {
    // Finite stalls mostly; occasional outright hangs exercise the
    // watchdog + reset + fallback path.
    if (rng.next() % 4 == 0) {
      plan.add(fault::FaultSpec::peripheral_hang(rate() * 0.5));
    } else {
      plan.add(fault::FaultSpec::peripheral_stall(rate(), 1 + rng.next() % 200));
    }
  }
  if (rng.next() & 1) {
    plan.add(fault::FaultSpec::stuck_at(rate() * 0.1, rng.next() % 64,
                                        rng.next() % 2 == 0));
  }
  if (rng.next() & 1) {
    plan.add(fault::FaultSpec::kernel_result_corruption(rate()));
  }
  return plan;
}

sim::CosimConfig random_config(fault::SplitMix64& rng, std::uint64_t seed) {
  sim::CosimConfig cfg;
  cfg.level = sim::kAllInterfaceLevels[rng.next() % 4];
  cfg.use_irq = (rng.next() & 1) != 0;
  cfg.background_unroll = cfg.use_irq ? rng.next() % 4 : 0;
  cfg.fault_plan = random_plan(rng);
  cfg.fault_seed = seed;
  // A plan of nothing but hangs degrades every sample; the budget only
  // needs to cover the watchdog windows, so a tight cap doubles as the
  // harness's own hang detector.
  cfg.max_sw_cycles = 5'000'000;
  cfg.resilience.max_retries = rng.next() % 4;
  cfg.resilience.degrade_after = rng.next() % 5;
  cfg.resilience.backoff_cap = 1 + rng.next() % 8;
  cfg.resilience.verify_writes = (rng.next() & 1) != 0;
  return cfg;
}

void check_report(const sim::CosimReport& report, std::uint64_t iter) {
  EXPECT_TRUE(report.resilience.invariants_hold())
      << "iter " << iter << ": injected=" << report.resilience.injected
      << " detected=" << report.resilience.detected
      << " recovered=" << report.resilience.recovered;
  std::uint64_t sum = 0;
  for (std::size_t c = 0; c < obs::Profile::kNumCategories; ++c) {
    sum += report.profile.cycles(static_cast<obs::Profile::Category>(c));
  }
  EXPECT_EQ(sum, report.profile.total()) << "iter " << iter;
  EXPECT_EQ(static_cast<double>(report.profile.total()), report.total_cycles)
      << "iter " << iter;
}

TEST(FaultFuzz, RandomPlansNeverCrashAndKeepInvariants) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::HlsResult impl = make_impl(kernel);
  const std::size_t iters = fuzz::fuzz_iters(500);
  std::size_t faulty_runs = 0;
  for (std::size_t iter = 0; iter < iters; ++iter) {
    fault::SplitMix64 rng(fuzz::fuzz_seed_base("MHS_FAULT_SEED",
                                              kPlanSeedBase) +
                           iter);
    const sim::CosimConfig cfg = random_config(rng, 1000 + iter);
    std::vector<std::vector<std::int64_t>> samples;
    const std::size_t n = 1 + rng.next() % 3;
    for (std::size_t s = 0; s < n; ++s) {
      std::vector<std::int64_t> in;
      for (std::size_t k = 0; k < kernel.inputs().size(); ++k) {
        in.push_back(static_cast<std::int64_t>(rng.next() % 2001) - 1000);
      }
      samples.push_back(std::move(in));
    }
    const sim::CosimReport report = accel_cosim(impl, cfg, samples);
    check_report(report, iter);
    faulty_runs += report.resilience.injected > 0 ? 1 : 0;
    if (iter % 10 == 0) {
      // Determinism probe: the same (seed, plan, workload) must
      // reproduce the run bit-exactly.
      const sim::CosimReport again = accel_cosim(impl, cfg, samples);
      EXPECT_EQ(again.resilience, report.resilience) << "iter " << iter;
      EXPECT_EQ(again.checksum, report.checksum) << "iter " << iter;
      EXPECT_EQ(again.total_cycles, report.total_cycles) << "iter " << iter;
      EXPECT_EQ(again.sim_events, report.sim_events) << "iter " << iter;
    }
  }
  // The campaign must actually exercise injection, not fuzz the
  // fault-free fast path 500 times.
  EXPECT_GT(faulty_runs, iters / 10);
}

// --------------------------------------------------------------- mhs_lint

/// Valid artifacts the mutator starts from (one per artifact kind).
const char* const kSeedArtifacts[] = {
    "cdfg small\n"
    "op input a\n"
    "op input b\n"
    "op const 1\n"
    "op add 0 1\n"
    "op shl 3 2\n"
    "op output y 4\n"
    "end\n",
    "taskgraph g\n"
    "task t0 100\n"
    "task t1 200\n"
    "edge t0 t1 8\n"
    "end\n",
    "network n\n"
    "process p0\n"
    "process p1\n"
    "channel p0 p1 4\n"
    "end\n",
};

std::string mutate(const std::string& seed_text, fault::SplitMix64& rng) {
  std::string text = seed_text;
  const std::size_t edits = 1 + rng.next() % 8;
  for (std::size_t e = 0; e < edits && !text.empty(); ++e) {
    const std::size_t pos = rng.next() % text.size();
    switch (rng.next() % 5) {
      case 0:  // flip a byte (printable range keeps the tokenizer busy)
        text[pos] = static_cast<char>(' ' + rng.next() % 95);
        break;
      case 1:  // truncate
        text.resize(pos);
        break;
      case 2:  // duplicate a span
        text.insert(pos, text.substr(pos, rng.next() % 16));
        break;
      case 3:  // delete a span
        text.erase(pos, rng.next() % 8);
        break;
      case 4:  // splice a hostile token
        text.insert(pos, rng.next() % 2 == 0 ? " 99999999999999999999 "
                                             : "\nop add 7 7\n");
        break;
    }
  }
  return text;
}

TEST(FaultFuzz, LintSurvivesMutatedArtifacts) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "mhs_fault_fuzz";
  fs::create_directories(dir);
  const fs::path file = dir / "mutant.txt";
  const std::size_t iters = fuzz::fuzz_iters(500);
  for (std::size_t iter = 0; iter < iters; ++iter) {
    fault::SplitMix64 rng(fuzz::fuzz_seed_base("MHS_FAULT_SEED",
                                              kMutateSeedBase) +
                           iter);
    const std::string text =
        mutate(kSeedArtifacts[iter % 3], rng);
    {
      std::ofstream out(file);
      ASSERT_TRUE(out) << file;
      out << text;
    }
    std::ostringstream out_stream;
    std::ostringstream err_stream;
    const int rc =
        apps::run_lint({file.string()}, out_stream, err_stream);
    EXPECT_TRUE(rc == 0 || rc == 1 || rc == 2)
        << "iter " << iter << " rc=" << rc << "\ninput:\n"
        << text;
  }
  std::error_code ec;
  fs::remove_all(dir, ec);  // best-effort cleanup
}

}  // namespace
}  // namespace mhs
