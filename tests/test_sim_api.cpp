// Old-vs-new API parity for the sim::run seam.
//
// This is the designated legacy-parity suite: the deprecated entry
// points (run_cosim, run_message_cosim, run_system_cosim) are called
// directly — under a scoped deprecation suppression — and their results
// compared bit-for-bit against sim::run with the same inputs, across
// every interface level, with and without a seeded fault plan, and under
// 1/2/4/8-thread batches. Everything else in the tree must go through
// sim::run; this file is where the old and new APIs are pinned equal.
#include <gtest/gtest.h>

#include <vector>

#include "apps/kernels.h"
#include "apps/workloads.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "ir/process_network.h"
#include "sim/run.h"

namespace mhs::sim {
namespace {

hw::HlsResult make_impl(const ir::Cdfg& kernel) {
  static hw::ComponentLibrary lib = hw::default_library();
  hw::HlsConstraints constraints;
  constraints.goal = hw::HlsGoal::kMinArea;
  return hw::synthesize(kernel, lib, constraints);
}

std::vector<std::vector<std::int64_t>> random_samples(
    const ir::Cdfg& kernel, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::int64_t>> samples;
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<std::int64_t> in;
    for (std::size_t k = 0; k < kernel.inputs().size(); ++k) {
      in.push_back(rng.uniform_int(-1000, 1000));
    }
    samples.push_back(std::move(in));
  }
  return samples;
}

/// Every field of two CosimReports, bit for bit — including the Profile
/// bucket per category and the fault scoreboard.
void expect_identical(const CosimReport& a, const CosimReport& b) {
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.sw_instructions, b.sw_instructions);
  EXPECT_EQ(a.bus_accesses, b.bus_accesses);
  EXPECT_EQ(a.bus_busy_cycles, b.bus_busy_cycles);
  EXPECT_EQ(a.signal_transitions, b.signal_transitions);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.background_units, b.background_units);
  EXPECT_EQ(a.hw_activations, b.hw_activations);
  EXPECT_EQ(a.profile.total(), b.profile.total());
  for (std::size_t c = 0; c < obs::Profile::kNumCategories; ++c) {
    const auto cat = static_cast<obs::Profile::Category>(c);
    EXPECT_EQ(a.profile.cycles(cat), b.profile.cycles(cat))
        << "profile category " << obs::Profile::category_name(cat);
  }
  EXPECT_EQ(a.resilience, b.resilience);
}

// This suite is the sanctioned direct consumer of the deprecated entry
// points: parity needs both sides of the seam. The suppression is scoped
// to this file on purpose.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(SimRunParity, AcceleratorMatchesLegacyAtEveryInterfaceLevel) {
  const ir::Cdfg kernel = apps::fir_kernel(6);
  const hw::HlsResult impl = make_impl(kernel);
  const auto samples = random_samples(kernel, 12, 7);
  for (const InterfaceLevel level : kAllInterfaceLevels) {
    for (const bool use_irq : {false, true}) {
      if (use_irq && level != InterfaceLevel::kPin &&
          level != InterfaceLevel::kRegister) {
        continue;  // irq drivers exist only at the ISS levels
      }
      CosimConfig cfg;
      cfg.level = level;
      cfg.use_irq = use_irq;
      cfg.background_unroll = use_irq ? 2 : 0;
      const CosimReport legacy = run_cosim(impl, cfg, samples);
      SimRequest req;
      req.impl = &impl;
      req.samples = &samples;
      req.cosim = cfg;
      const SimResult result = run(req);
      ASSERT_TRUE(result.cosim.has_value());
      EXPECT_FALSE(result.os.has_value());
      EXPECT_FALSE(result.system.has_value());
      expect_identical(*result.cosim, legacy);
      EXPECT_EQ(result.total_cycles(), legacy.total_cycles);
      EXPECT_EQ(result.sim_events(), legacy.sim_events);
      EXPECT_NE(result.summary().find(interface_level_name(level)),
                std::string::npos);
    }
  }
}

TEST(SimRunParity, AcceleratorMatchesLegacyUnderASeededFaultPlan) {
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::HlsResult impl = make_impl(kernel);
  const auto samples = random_samples(kernel, 8, 21);
  for (const InterfaceLevel level : kAllInterfaceLevels) {
    CosimConfig cfg;
    cfg.level = level;
    cfg.fault_plan.add(fault::FaultSpec::peripheral_stall(0.5, 80))
        .add(fault::FaultSpec::bus_bit_flip(0.05))
        .add(fault::FaultSpec::peripheral_hang(0.05));
    cfg.fault_seed = 77;
    const CosimReport legacy = run_cosim(impl, cfg, samples);
    EXPECT_GT(legacy.resilience.injected, 0u);
    SimRequest req;
    req.impl = &impl;
    req.samples = &samples;
    req.cosim = cfg;
    const SimResult result = run(req);
    ASSERT_TRUE(result.cosim.has_value());
    expect_identical(*result.cosim, legacy);
  }
}

TEST(SimRunParity, ProcessLevelMatchesLegacy) {
  const ir::ProcessNetwork net = apps::packet_pipeline_network();
  std::vector<bool> in_hw(net.num_processes(), false);
  in_hw[1] = true;
  OsCosimConfig cfg;
  cfg.iterations = 32;
  const OsCosimResult legacy = run_message_cosim(net, in_hw, cfg);
  SimRequest req;
  req.level = Level::kProcess;
  req.network = &net;
  req.in_hw = &in_hw;
  req.os = cfg;
  const SimResult result = run(req);
  ASSERT_TRUE(result.os.has_value());
  EXPECT_EQ(result.os->makespan, legacy.makespan);
  EXPECT_EQ(result.os->sim_events, legacy.sim_events);
  EXPECT_EQ(result.os->cpu_busy_cycles, legacy.cpu_busy_cycles);
  EXPECT_EQ(result.os->hw_busy_cycles, legacy.hw_busy_cycles);
  EXPECT_EQ(result.os->comm_cycles, legacy.comm_cycles);
  EXPECT_EQ(result.os->cross_comm_cycles, legacy.cross_comm_cycles);
  EXPECT_EQ(result.os->channel_messages, legacy.channel_messages);
  EXPECT_EQ(result.os->deadlocked, legacy.deadlocked);
  EXPECT_EQ(result.total_cycles(), legacy.makespan);
  EXPECT_EQ(result.sim_events(), legacy.sim_events);
}

TEST(SimRunParity, SystemLevelMatchesLegacy) {
  apps::KernelBackedWorkload w = apps::dsp_chain_workload();
  partition::Mapping mapping(w.graph.num_tasks(), false);
  for (std::size_t i = 0; i < mapping.size(); i += 2) mapping[i] = true;
  const SystemCosimConfig cfg;
  const SystemCosimResult legacy = run_system_cosim(w.graph, mapping, cfg);
  SimRequest req;
  req.level = Level::kSystem;
  req.graph = &w.graph;
  req.mapping = &mapping;
  req.system = cfg;
  const SimResult result = run(req);
  ASSERT_TRUE(result.system.has_value());
  EXPECT_EQ(result.system->makespan, legacy.makespan);
  EXPECT_EQ(result.system->start, legacy.start);
  EXPECT_EQ(result.system->finish, legacy.finish);
  EXPECT_EQ(result.system->cpu_busy, legacy.cpu_busy);
  EXPECT_EQ(result.system->bus_busy, legacy.bus_busy);
  EXPECT_EQ(result.system->bus_wait, legacy.bus_wait);
  EXPECT_EQ(result.system->sim_events, legacy.sim_events);
}

TEST(SimRunParity, ThreadCountDoesNotChangeResults) {
  // The seam must be as thread-agnostic as the engines under it: a batch
  // of runs spread over 1/2/4/8 worker threads produces bit-identical
  // reports in every slot, fault plan included.
  const ir::Cdfg kernel = apps::fir_kernel(4);
  const hw::HlsResult impl = make_impl(kernel);
  const auto samples = random_samples(kernel, 6, 33);
  constexpr std::size_t kRuns = 8;
  const auto run_batch = [&](std::size_t threads) {
    std::vector<CosimReport> out(kRuns);
    ThreadPool pool(threads);
    pool.parallel_for(kRuns, [&](std::size_t i) {
      CosimConfig cfg;
      cfg.level = kAllInterfaceLevels[i % 4];
      if (i >= 4) {
        cfg.fault_plan.add(fault::FaultSpec::peripheral_stall(0.4, 60));
        cfg.fault_seed = 100 + i;
      }
      SimRequest req;
      req.impl = &impl;
      req.samples = &samples;
      req.cosim = cfg;
      out[i] = run(req).cosim.value();
    });
    return out;
  };
  const std::vector<CosimReport> baseline = run_batch(1);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const std::vector<CosimReport> got = run_batch(threads);
    for (std::size_t i = 0; i < kRuns; ++i) {
      expect_identical(got[i], baseline[i]);
    }
  }
}

#pragma GCC diagnostic pop

TEST(SimRunApi, LevelNamesRoundTripAndRejectUnknown) {
  for (const Level level : kAllLevels) {
    const auto parsed = parse_level(level_name(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(parse_level("pin").has_value());
  EXPECT_FALSE(parse_level("").has_value());
  EXPECT_FALSE(parse_level("cosim").has_value());
}

TEST(SimRunApi, MissingRequiredPointersThrow) {
  SimRequest req;  // kAccelerator with no impl/samples
  EXPECT_THROW(run(req), Error);
  SimRequest proc;
  proc.level = Level::kProcess;
  EXPECT_THROW(run(proc), Error);
  SimRequest system;
  system.level = Level::kSystem;
  EXPECT_THROW(run(system), Error);
}

}  // namespace
}  // namespace mhs::sim
