file(REMOVE_RECURSE
  "CMakeFiles/dsp_coprocessor.dir/dsp_coprocessor.cpp.o"
  "CMakeFiles/dsp_coprocessor.dir/dsp_coprocessor.cpp.o.d"
  "dsp_coprocessor"
  "dsp_coprocessor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_coprocessor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
