# Empty compiler generated dependencies file for dsp_coprocessor.
# This may be replaced when dependencies are built.
