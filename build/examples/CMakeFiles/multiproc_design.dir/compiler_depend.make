# Empty compiler generated dependencies file for multiproc_design.
# This may be replaced when dependencies are built.
