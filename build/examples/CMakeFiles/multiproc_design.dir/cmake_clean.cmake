file(REMOVE_RECURSE
  "CMakeFiles/multiproc_design.dir/multiproc_design.cpp.o"
  "CMakeFiles/multiproc_design.dir/multiproc_design.cpp.o.d"
  "multiproc_design"
  "multiproc_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiproc_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
