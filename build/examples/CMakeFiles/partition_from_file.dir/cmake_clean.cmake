file(REMOVE_RECURSE
  "CMakeFiles/partition_from_file.dir/partition_from_file.cpp.o"
  "CMakeFiles/partition_from_file.dir/partition_from_file.cpp.o.d"
  "partition_from_file"
  "partition_from_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_from_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
