# Empty dependencies file for embedded_controller.
# This may be replaced when dependencies are built.
