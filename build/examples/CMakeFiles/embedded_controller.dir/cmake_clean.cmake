file(REMOVE_RECURSE
  "CMakeFiles/embedded_controller.dir/embedded_controller.cpp.o"
  "CMakeFiles/embedded_controller.dir/embedded_controller.cpp.o.d"
  "embedded_controller"
  "embedded_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
