# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;10;mhs_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_embedded_controller "/root/repo/build/examples/embedded_controller")
set_tests_properties(example_embedded_controller PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;11;mhs_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dsp_coprocessor "/root/repo/build/examples/dsp_coprocessor")
set_tests_properties(example_dsp_coprocessor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;12;mhs_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multiproc_design "/root/repo/build/examples/multiproc_design")
set_tests_properties(example_multiproc_design PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;13;mhs_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_design_advisor "/root/repo/build/examples/design_advisor")
set_tests_properties(example_design_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;14;mhs_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_partition_from_file "/root/repo/build/examples/partition_from_file")
set_tests_properties(example_partition_from_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;15;mhs_example;/root/repo/examples/CMakeLists.txt;0;")
