file(REMOVE_RECURSE
  "libmhs_core.a"
)
