# Empty compiler generated dependencies file for mhs_core.
# This may be replaced when dependencies are built.
