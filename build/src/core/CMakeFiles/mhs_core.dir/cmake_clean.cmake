file(REMOVE_RECURSE
  "CMakeFiles/mhs_core.dir/advisor.cpp.o"
  "CMakeFiles/mhs_core.dir/advisor.cpp.o.d"
  "CMakeFiles/mhs_core.dir/flow.cpp.o"
  "CMakeFiles/mhs_core.dir/flow.cpp.o.d"
  "CMakeFiles/mhs_core.dir/taxonomy.cpp.o"
  "CMakeFiles/mhs_core.dir/taxonomy.cpp.o.d"
  "libmhs_core.a"
  "libmhs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
