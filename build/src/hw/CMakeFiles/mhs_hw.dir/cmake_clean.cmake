file(REMOVE_RECURSE
  "CMakeFiles/mhs_hw.dir/binding.cpp.o"
  "CMakeFiles/mhs_hw.dir/binding.cpp.o.d"
  "CMakeFiles/mhs_hw.dir/component_library.cpp.o"
  "CMakeFiles/mhs_hw.dir/component_library.cpp.o.d"
  "CMakeFiles/mhs_hw.dir/estimate.cpp.o"
  "CMakeFiles/mhs_hw.dir/estimate.cpp.o.d"
  "CMakeFiles/mhs_hw.dir/fsm.cpp.o"
  "CMakeFiles/mhs_hw.dir/fsm.cpp.o.d"
  "CMakeFiles/mhs_hw.dir/hls.cpp.o"
  "CMakeFiles/mhs_hw.dir/hls.cpp.o.d"
  "CMakeFiles/mhs_hw.dir/pipeline.cpp.o"
  "CMakeFiles/mhs_hw.dir/pipeline.cpp.o.d"
  "CMakeFiles/mhs_hw.dir/rtl_emit.cpp.o"
  "CMakeFiles/mhs_hw.dir/rtl_emit.cpp.o.d"
  "CMakeFiles/mhs_hw.dir/schedule.cpp.o"
  "CMakeFiles/mhs_hw.dir/schedule.cpp.o.d"
  "libmhs_hw.a"
  "libmhs_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhs_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
