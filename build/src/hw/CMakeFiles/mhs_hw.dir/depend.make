# Empty dependencies file for mhs_hw.
# This may be replaced when dependencies are built.
