file(REMOVE_RECURSE
  "libmhs_hw.a"
)
