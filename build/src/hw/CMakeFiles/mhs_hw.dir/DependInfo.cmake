
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/binding.cpp" "src/hw/CMakeFiles/mhs_hw.dir/binding.cpp.o" "gcc" "src/hw/CMakeFiles/mhs_hw.dir/binding.cpp.o.d"
  "/root/repo/src/hw/component_library.cpp" "src/hw/CMakeFiles/mhs_hw.dir/component_library.cpp.o" "gcc" "src/hw/CMakeFiles/mhs_hw.dir/component_library.cpp.o.d"
  "/root/repo/src/hw/estimate.cpp" "src/hw/CMakeFiles/mhs_hw.dir/estimate.cpp.o" "gcc" "src/hw/CMakeFiles/mhs_hw.dir/estimate.cpp.o.d"
  "/root/repo/src/hw/fsm.cpp" "src/hw/CMakeFiles/mhs_hw.dir/fsm.cpp.o" "gcc" "src/hw/CMakeFiles/mhs_hw.dir/fsm.cpp.o.d"
  "/root/repo/src/hw/hls.cpp" "src/hw/CMakeFiles/mhs_hw.dir/hls.cpp.o" "gcc" "src/hw/CMakeFiles/mhs_hw.dir/hls.cpp.o.d"
  "/root/repo/src/hw/pipeline.cpp" "src/hw/CMakeFiles/mhs_hw.dir/pipeline.cpp.o" "gcc" "src/hw/CMakeFiles/mhs_hw.dir/pipeline.cpp.o.d"
  "/root/repo/src/hw/rtl_emit.cpp" "src/hw/CMakeFiles/mhs_hw.dir/rtl_emit.cpp.o" "gcc" "src/hw/CMakeFiles/mhs_hw.dir/rtl_emit.cpp.o.d"
  "/root/repo/src/hw/schedule.cpp" "src/hw/CMakeFiles/mhs_hw.dir/schedule.cpp.o" "gcc" "src/hw/CMakeFiles/mhs_hw.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/mhs_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mhs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
