file(REMOVE_RECURSE
  "libmhs_opt.a"
)
