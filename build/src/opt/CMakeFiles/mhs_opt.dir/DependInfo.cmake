
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/anneal.cpp" "src/opt/CMakeFiles/mhs_opt.dir/anneal.cpp.o" "gcc" "src/opt/CMakeFiles/mhs_opt.dir/anneal.cpp.o.d"
  "/root/repo/src/opt/binpack.cpp" "src/opt/CMakeFiles/mhs_opt.dir/binpack.cpp.o" "gcc" "src/opt/CMakeFiles/mhs_opt.dir/binpack.cpp.o.d"
  "/root/repo/src/opt/knapsack.cpp" "src/opt/CMakeFiles/mhs_opt.dir/knapsack.cpp.o" "gcc" "src/opt/CMakeFiles/mhs_opt.dir/knapsack.cpp.o.d"
  "/root/repo/src/opt/pareto.cpp" "src/opt/CMakeFiles/mhs_opt.dir/pareto.cpp.o" "gcc" "src/opt/CMakeFiles/mhs_opt.dir/pareto.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/mhs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
