# Empty compiler generated dependencies file for mhs_opt.
# This may be replaced when dependencies are built.
