file(REMOVE_RECURSE
  "CMakeFiles/mhs_opt.dir/anneal.cpp.o"
  "CMakeFiles/mhs_opt.dir/anneal.cpp.o.d"
  "CMakeFiles/mhs_opt.dir/binpack.cpp.o"
  "CMakeFiles/mhs_opt.dir/binpack.cpp.o.d"
  "CMakeFiles/mhs_opt.dir/knapsack.cpp.o"
  "CMakeFiles/mhs_opt.dir/knapsack.cpp.o.d"
  "CMakeFiles/mhs_opt.dir/pareto.cpp.o"
  "CMakeFiles/mhs_opt.dir/pareto.cpp.o.d"
  "libmhs_opt.a"
  "libmhs_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhs_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
