file(REMOVE_RECURSE
  "CMakeFiles/mhs_ir.dir/cdfg.cpp.o"
  "CMakeFiles/mhs_ir.dir/cdfg.cpp.o.d"
  "CMakeFiles/mhs_ir.dir/dot.cpp.o"
  "CMakeFiles/mhs_ir.dir/dot.cpp.o.d"
  "CMakeFiles/mhs_ir.dir/optimize.cpp.o"
  "CMakeFiles/mhs_ir.dir/optimize.cpp.o.d"
  "CMakeFiles/mhs_ir.dir/process_network.cpp.o"
  "CMakeFiles/mhs_ir.dir/process_network.cpp.o.d"
  "CMakeFiles/mhs_ir.dir/serialize.cpp.o"
  "CMakeFiles/mhs_ir.dir/serialize.cpp.o.d"
  "CMakeFiles/mhs_ir.dir/task_graph.cpp.o"
  "CMakeFiles/mhs_ir.dir/task_graph.cpp.o.d"
  "CMakeFiles/mhs_ir.dir/task_graph_algos.cpp.o"
  "CMakeFiles/mhs_ir.dir/task_graph_algos.cpp.o.d"
  "CMakeFiles/mhs_ir.dir/task_graph_gen.cpp.o"
  "CMakeFiles/mhs_ir.dir/task_graph_gen.cpp.o.d"
  "libmhs_ir.a"
  "libmhs_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhs_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
