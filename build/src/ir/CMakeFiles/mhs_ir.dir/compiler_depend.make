# Empty compiler generated dependencies file for mhs_ir.
# This may be replaced when dependencies are built.
