
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/cdfg.cpp" "src/ir/CMakeFiles/mhs_ir.dir/cdfg.cpp.o" "gcc" "src/ir/CMakeFiles/mhs_ir.dir/cdfg.cpp.o.d"
  "/root/repo/src/ir/dot.cpp" "src/ir/CMakeFiles/mhs_ir.dir/dot.cpp.o" "gcc" "src/ir/CMakeFiles/mhs_ir.dir/dot.cpp.o.d"
  "/root/repo/src/ir/optimize.cpp" "src/ir/CMakeFiles/mhs_ir.dir/optimize.cpp.o" "gcc" "src/ir/CMakeFiles/mhs_ir.dir/optimize.cpp.o.d"
  "/root/repo/src/ir/process_network.cpp" "src/ir/CMakeFiles/mhs_ir.dir/process_network.cpp.o" "gcc" "src/ir/CMakeFiles/mhs_ir.dir/process_network.cpp.o.d"
  "/root/repo/src/ir/serialize.cpp" "src/ir/CMakeFiles/mhs_ir.dir/serialize.cpp.o" "gcc" "src/ir/CMakeFiles/mhs_ir.dir/serialize.cpp.o.d"
  "/root/repo/src/ir/task_graph.cpp" "src/ir/CMakeFiles/mhs_ir.dir/task_graph.cpp.o" "gcc" "src/ir/CMakeFiles/mhs_ir.dir/task_graph.cpp.o.d"
  "/root/repo/src/ir/task_graph_algos.cpp" "src/ir/CMakeFiles/mhs_ir.dir/task_graph_algos.cpp.o" "gcc" "src/ir/CMakeFiles/mhs_ir.dir/task_graph_algos.cpp.o.d"
  "/root/repo/src/ir/task_graph_gen.cpp" "src/ir/CMakeFiles/mhs_ir.dir/task_graph_gen.cpp.o" "gcc" "src/ir/CMakeFiles/mhs_ir.dir/task_graph_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/mhs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
