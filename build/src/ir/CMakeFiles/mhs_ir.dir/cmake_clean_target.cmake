file(REMOVE_RECURSE
  "libmhs_ir.a"
)
