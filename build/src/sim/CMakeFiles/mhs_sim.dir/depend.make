# Empty dependencies file for mhs_sim.
# This may be replaced when dependencies are built.
