
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bus.cpp" "src/sim/CMakeFiles/mhs_sim.dir/bus.cpp.o" "gcc" "src/sim/CMakeFiles/mhs_sim.dir/bus.cpp.o.d"
  "/root/repo/src/sim/cosim.cpp" "src/sim/CMakeFiles/mhs_sim.dir/cosim.cpp.o" "gcc" "src/sim/CMakeFiles/mhs_sim.dir/cosim.cpp.o.d"
  "/root/repo/src/sim/dma.cpp" "src/sim/CMakeFiles/mhs_sim.dir/dma.cpp.o" "gcc" "src/sim/CMakeFiles/mhs_sim.dir/dma.cpp.o.d"
  "/root/repo/src/sim/driver.cpp" "src/sim/CMakeFiles/mhs_sim.dir/driver.cpp.o" "gcc" "src/sim/CMakeFiles/mhs_sim.dir/driver.cpp.o.d"
  "/root/repo/src/sim/kernel.cpp" "src/sim/CMakeFiles/mhs_sim.dir/kernel.cpp.o" "gcc" "src/sim/CMakeFiles/mhs_sim.dir/kernel.cpp.o.d"
  "/root/repo/src/sim/os_cosim.cpp" "src/sim/CMakeFiles/mhs_sim.dir/os_cosim.cpp.o" "gcc" "src/sim/CMakeFiles/mhs_sim.dir/os_cosim.cpp.o.d"
  "/root/repo/src/sim/peripheral.cpp" "src/sim/CMakeFiles/mhs_sim.dir/peripheral.cpp.o" "gcc" "src/sim/CMakeFiles/mhs_sim.dir/peripheral.cpp.o.d"
  "/root/repo/src/sim/system_cosim.cpp" "src/sim/CMakeFiles/mhs_sim.dir/system_cosim.cpp.o" "gcc" "src/sim/CMakeFiles/mhs_sim.dir/system_cosim.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/sim/CMakeFiles/mhs_sim.dir/vcd.cpp.o" "gcc" "src/sim/CMakeFiles/mhs_sim.dir/vcd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/mhs_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sw/CMakeFiles/mhs_sw.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/mhs_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/mhs_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mhs_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mhs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
