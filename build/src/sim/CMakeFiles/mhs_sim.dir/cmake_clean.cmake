file(REMOVE_RECURSE
  "CMakeFiles/mhs_sim.dir/bus.cpp.o"
  "CMakeFiles/mhs_sim.dir/bus.cpp.o.d"
  "CMakeFiles/mhs_sim.dir/cosim.cpp.o"
  "CMakeFiles/mhs_sim.dir/cosim.cpp.o.d"
  "CMakeFiles/mhs_sim.dir/dma.cpp.o"
  "CMakeFiles/mhs_sim.dir/dma.cpp.o.d"
  "CMakeFiles/mhs_sim.dir/driver.cpp.o"
  "CMakeFiles/mhs_sim.dir/driver.cpp.o.d"
  "CMakeFiles/mhs_sim.dir/kernel.cpp.o"
  "CMakeFiles/mhs_sim.dir/kernel.cpp.o.d"
  "CMakeFiles/mhs_sim.dir/os_cosim.cpp.o"
  "CMakeFiles/mhs_sim.dir/os_cosim.cpp.o.d"
  "CMakeFiles/mhs_sim.dir/peripheral.cpp.o"
  "CMakeFiles/mhs_sim.dir/peripheral.cpp.o.d"
  "CMakeFiles/mhs_sim.dir/system_cosim.cpp.o"
  "CMakeFiles/mhs_sim.dir/system_cosim.cpp.o.d"
  "CMakeFiles/mhs_sim.dir/vcd.cpp.o"
  "CMakeFiles/mhs_sim.dir/vcd.cpp.o.d"
  "libmhs_sim.a"
  "libmhs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
