file(REMOVE_RECURSE
  "libmhs_sim.a"
)
