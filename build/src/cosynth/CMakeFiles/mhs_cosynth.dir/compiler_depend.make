# Empty compiler generated dependencies file for mhs_cosynth.
# This may be replaced when dependencies are built.
