file(REMOVE_RECURSE
  "libmhs_cosynth.a"
)
