file(REMOVE_RECURSE
  "CMakeFiles/mhs_cosynth.dir/asip.cpp.o"
  "CMakeFiles/mhs_cosynth.dir/asip.cpp.o.d"
  "CMakeFiles/mhs_cosynth.dir/coproc.cpp.o"
  "CMakeFiles/mhs_cosynth.dir/coproc.cpp.o.d"
  "CMakeFiles/mhs_cosynth.dir/impl_select.cpp.o"
  "CMakeFiles/mhs_cosynth.dir/impl_select.cpp.o.d"
  "CMakeFiles/mhs_cosynth.dir/interface_synth.cpp.o"
  "CMakeFiles/mhs_cosynth.dir/interface_synth.cpp.o.d"
  "CMakeFiles/mhs_cosynth.dir/mixed.cpp.o"
  "CMakeFiles/mhs_cosynth.dir/mixed.cpp.o.d"
  "CMakeFiles/mhs_cosynth.dir/mtcoproc.cpp.o"
  "CMakeFiles/mhs_cosynth.dir/mtcoproc.cpp.o.d"
  "CMakeFiles/mhs_cosynth.dir/multiproc.cpp.o"
  "CMakeFiles/mhs_cosynth.dir/multiproc.cpp.o.d"
  "CMakeFiles/mhs_cosynth.dir/periodic.cpp.o"
  "CMakeFiles/mhs_cosynth.dir/periodic.cpp.o.d"
  "libmhs_cosynth.a"
  "libmhs_cosynth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhs_cosynth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
