
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cosynth/asip.cpp" "src/cosynth/CMakeFiles/mhs_cosynth.dir/asip.cpp.o" "gcc" "src/cosynth/CMakeFiles/mhs_cosynth.dir/asip.cpp.o.d"
  "/root/repo/src/cosynth/coproc.cpp" "src/cosynth/CMakeFiles/mhs_cosynth.dir/coproc.cpp.o" "gcc" "src/cosynth/CMakeFiles/mhs_cosynth.dir/coproc.cpp.o.d"
  "/root/repo/src/cosynth/impl_select.cpp" "src/cosynth/CMakeFiles/mhs_cosynth.dir/impl_select.cpp.o" "gcc" "src/cosynth/CMakeFiles/mhs_cosynth.dir/impl_select.cpp.o.d"
  "/root/repo/src/cosynth/interface_synth.cpp" "src/cosynth/CMakeFiles/mhs_cosynth.dir/interface_synth.cpp.o" "gcc" "src/cosynth/CMakeFiles/mhs_cosynth.dir/interface_synth.cpp.o.d"
  "/root/repo/src/cosynth/mixed.cpp" "src/cosynth/CMakeFiles/mhs_cosynth.dir/mixed.cpp.o" "gcc" "src/cosynth/CMakeFiles/mhs_cosynth.dir/mixed.cpp.o.d"
  "/root/repo/src/cosynth/mtcoproc.cpp" "src/cosynth/CMakeFiles/mhs_cosynth.dir/mtcoproc.cpp.o" "gcc" "src/cosynth/CMakeFiles/mhs_cosynth.dir/mtcoproc.cpp.o.d"
  "/root/repo/src/cosynth/multiproc.cpp" "src/cosynth/CMakeFiles/mhs_cosynth.dir/multiproc.cpp.o" "gcc" "src/cosynth/CMakeFiles/mhs_cosynth.dir/multiproc.cpp.o.d"
  "/root/repo/src/cosynth/periodic.cpp" "src/cosynth/CMakeFiles/mhs_cosynth.dir/periodic.cpp.o" "gcc" "src/cosynth/CMakeFiles/mhs_cosynth.dir/periodic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/partition/CMakeFiles/mhs_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mhs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mhs_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mhs_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sw/CMakeFiles/mhs_sw.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/mhs_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mhs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
