file(REMOVE_RECURSE
  "CMakeFiles/mhs_sw.dir/codegen.cpp.o"
  "CMakeFiles/mhs_sw.dir/codegen.cpp.o.d"
  "CMakeFiles/mhs_sw.dir/cpu_model.cpp.o"
  "CMakeFiles/mhs_sw.dir/cpu_model.cpp.o.d"
  "CMakeFiles/mhs_sw.dir/estimate.cpp.o"
  "CMakeFiles/mhs_sw.dir/estimate.cpp.o.d"
  "CMakeFiles/mhs_sw.dir/isa.cpp.o"
  "CMakeFiles/mhs_sw.dir/isa.cpp.o.d"
  "CMakeFiles/mhs_sw.dir/iss.cpp.o"
  "CMakeFiles/mhs_sw.dir/iss.cpp.o.d"
  "libmhs_sw.a"
  "libmhs_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhs_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
