
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sw/codegen.cpp" "src/sw/CMakeFiles/mhs_sw.dir/codegen.cpp.o" "gcc" "src/sw/CMakeFiles/mhs_sw.dir/codegen.cpp.o.d"
  "/root/repo/src/sw/cpu_model.cpp" "src/sw/CMakeFiles/mhs_sw.dir/cpu_model.cpp.o" "gcc" "src/sw/CMakeFiles/mhs_sw.dir/cpu_model.cpp.o.d"
  "/root/repo/src/sw/estimate.cpp" "src/sw/CMakeFiles/mhs_sw.dir/estimate.cpp.o" "gcc" "src/sw/CMakeFiles/mhs_sw.dir/estimate.cpp.o.d"
  "/root/repo/src/sw/isa.cpp" "src/sw/CMakeFiles/mhs_sw.dir/isa.cpp.o" "gcc" "src/sw/CMakeFiles/mhs_sw.dir/isa.cpp.o.d"
  "/root/repo/src/sw/iss.cpp" "src/sw/CMakeFiles/mhs_sw.dir/iss.cpp.o" "gcc" "src/sw/CMakeFiles/mhs_sw.dir/iss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/mhs_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mhs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
