file(REMOVE_RECURSE
  "libmhs_sw.a"
)
