# Empty dependencies file for mhs_sw.
# This may be replaced when dependencies are built.
