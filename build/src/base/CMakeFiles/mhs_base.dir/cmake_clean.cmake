file(REMOVE_RECURSE
  "CMakeFiles/mhs_base.dir/error.cpp.o"
  "CMakeFiles/mhs_base.dir/error.cpp.o.d"
  "CMakeFiles/mhs_base.dir/rng.cpp.o"
  "CMakeFiles/mhs_base.dir/rng.cpp.o.d"
  "CMakeFiles/mhs_base.dir/stats.cpp.o"
  "CMakeFiles/mhs_base.dir/stats.cpp.o.d"
  "CMakeFiles/mhs_base.dir/table.cpp.o"
  "CMakeFiles/mhs_base.dir/table.cpp.o.d"
  "libmhs_base.a"
  "libmhs_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhs_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
