file(REMOVE_RECURSE
  "libmhs_base.a"
)
