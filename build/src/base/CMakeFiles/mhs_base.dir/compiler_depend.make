# Empty compiler generated dependencies file for mhs_base.
# This may be replaced when dependencies are built.
