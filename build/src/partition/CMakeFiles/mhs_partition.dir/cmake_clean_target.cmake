file(REMOVE_RECURSE
  "libmhs_partition.a"
)
