file(REMOVE_RECURSE
  "CMakeFiles/mhs_partition.dir/algorithms.cpp.o"
  "CMakeFiles/mhs_partition.dir/algorithms.cpp.o.d"
  "CMakeFiles/mhs_partition.dir/cost_model.cpp.o"
  "CMakeFiles/mhs_partition.dir/cost_model.cpp.o.d"
  "libmhs_partition.a"
  "libmhs_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhs_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
