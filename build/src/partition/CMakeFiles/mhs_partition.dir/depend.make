# Empty dependencies file for mhs_partition.
# This may be replaced when dependencies are built.
