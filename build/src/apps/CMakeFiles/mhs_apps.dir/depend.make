# Empty dependencies file for mhs_apps.
# This may be replaced when dependencies are built.
