file(REMOVE_RECURSE
  "CMakeFiles/mhs_apps.dir/kernels.cpp.o"
  "CMakeFiles/mhs_apps.dir/kernels.cpp.o.d"
  "CMakeFiles/mhs_apps.dir/workloads.cpp.o"
  "CMakeFiles/mhs_apps.dir/workloads.cpp.o.d"
  "libmhs_apps.a"
  "libmhs_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhs_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
