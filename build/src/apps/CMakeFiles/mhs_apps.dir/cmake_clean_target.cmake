file(REMOVE_RECURSE
  "libmhs_apps.a"
)
