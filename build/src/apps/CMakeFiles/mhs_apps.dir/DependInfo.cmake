
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/kernels.cpp" "src/apps/CMakeFiles/mhs_apps.dir/kernels.cpp.o" "gcc" "src/apps/CMakeFiles/mhs_apps.dir/kernels.cpp.o.d"
  "/root/repo/src/apps/workloads.cpp" "src/apps/CMakeFiles/mhs_apps.dir/workloads.cpp.o" "gcc" "src/apps/CMakeFiles/mhs_apps.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/mhs_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mhs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
