file(REMOVE_RECURSE
  "CMakeFiles/test_sw.dir/test_sw.cpp.o"
  "CMakeFiles/test_sw.dir/test_sw.cpp.o.d"
  "test_sw"
  "test_sw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
