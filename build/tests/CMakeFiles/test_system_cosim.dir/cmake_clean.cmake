file(REMOVE_RECURSE
  "CMakeFiles/test_system_cosim.dir/test_system_cosim.cpp.o"
  "CMakeFiles/test_system_cosim.dir/test_system_cosim.cpp.o.d"
  "test_system_cosim"
  "test_system_cosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
