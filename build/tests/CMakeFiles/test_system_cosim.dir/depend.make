# Empty dependencies file for test_system_cosim.
# This may be replaced when dependencies are built.
