file(REMOVE_RECURSE
  "CMakeFiles/test_vcd_kernels.dir/test_vcd_kernels.cpp.o"
  "CMakeFiles/test_vcd_kernels.dir/test_vcd_kernels.cpp.o.d"
  "test_vcd_kernels"
  "test_vcd_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vcd_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
