
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_coverage_extras.cpp" "tests/CMakeFiles/test_coverage_extras.dir/test_coverage_extras.cpp.o" "gcc" "tests/CMakeFiles/test_coverage_extras.dir/test_coverage_extras.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mhs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cosynth/CMakeFiles/mhs_cosynth.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/mhs_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mhs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sw/CMakeFiles/mhs_sw.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mhs_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mhs_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mhs_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/mhs_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mhs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
