file(REMOVE_RECURSE
  "CMakeFiles/test_cosynth.dir/test_cosynth.cpp.o"
  "CMakeFiles/test_cosynth.dir/test_cosynth.cpp.o.d"
  "test_cosynth"
  "test_cosynth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cosynth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
