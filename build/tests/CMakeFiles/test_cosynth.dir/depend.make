# Empty dependencies file for test_cosynth.
# This may be replaced when dependencies are built.
