# Empty compiler generated dependencies file for test_impl_select.
# This may be replaced when dependencies are built.
