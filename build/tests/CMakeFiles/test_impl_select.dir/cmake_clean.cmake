file(REMOVE_RECURSE
  "CMakeFiles/test_impl_select.dir/test_impl_select.cpp.o"
  "CMakeFiles/test_impl_select.dir/test_impl_select.cpp.o.d"
  "test_impl_select"
  "test_impl_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_impl_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
