# Empty compiler generated dependencies file for test_multiperipheral.
# This may be replaced when dependencies are built.
