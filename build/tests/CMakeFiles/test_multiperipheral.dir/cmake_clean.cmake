file(REMOVE_RECURSE
  "CMakeFiles/test_multiperipheral.dir/test_multiperipheral.cpp.o"
  "CMakeFiles/test_multiperipheral.dir/test_multiperipheral.cpp.o.d"
  "test_multiperipheral"
  "test_multiperipheral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiperipheral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
