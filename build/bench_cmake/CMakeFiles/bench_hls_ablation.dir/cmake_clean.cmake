file(REMOVE_RECURSE
  "../bench/bench_hls_ablation"
  "../bench/bench_hls_ablation.pdb"
  "CMakeFiles/bench_hls_ablation.dir/bench_hls_ablation.cpp.o"
  "CMakeFiles/bench_hls_ablation.dir/bench_hls_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hls_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
