file(REMOVE_RECURSE
  "../bench/bench_summary_table"
  "../bench/bench_summary_table.pdb"
  "CMakeFiles/bench_summary_table.dir/bench_summary_table.cpp.o"
  "CMakeFiles/bench_summary_table.dir/bench_summary_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_summary_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
