# Empty dependencies file for bench_fig2_tasks.
# This may be replaced when dependencies are built.
