file(REMOVE_RECURSE
  "../bench/bench_fig2_tasks"
  "../bench/bench_fig2_tasks.pdb"
  "CMakeFiles/bench_fig2_tasks.dir/bench_fig2_tasks.cpp.o"
  "CMakeFiles/bench_fig2_tasks.dir/bench_fig2_tasks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
