file(REMOVE_RECURSE
  "../bench/bench_mixed_boundary"
  "../bench/bench_mixed_boundary.pdb"
  "CMakeFiles/bench_mixed_boundary.dir/bench_mixed_boundary.cpp.o"
  "CMakeFiles/bench_mixed_boundary.dir/bench_mixed_boundary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mixed_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
