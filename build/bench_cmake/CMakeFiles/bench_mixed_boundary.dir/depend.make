# Empty dependencies file for bench_mixed_boundary.
# This may be replaced when dependencies are built.
