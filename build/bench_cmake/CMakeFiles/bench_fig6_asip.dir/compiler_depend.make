# Empty compiler generated dependencies file for bench_fig6_asip.
# This may be replaced when dependencies are built.
