file(REMOVE_RECURSE
  "../bench/bench_fig6_asip"
  "../bench/bench_fig6_asip.pdb"
  "CMakeFiles/bench_fig6_asip.dir/bench_fig6_asip.cpp.o"
  "CMakeFiles/bench_fig6_asip.dir/bench_fig6_asip.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_asip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
