file(REMOVE_RECURSE
  "../bench/bench_fig8_coproc"
  "../bench/bench_fig8_coproc.pdb"
  "CMakeFiles/bench_fig8_coproc.dir/bench_fig8_coproc.cpp.o"
  "CMakeFiles/bench_fig8_coproc.dir/bench_fig8_coproc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_coproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
