# Empty dependencies file for bench_fig8_coproc.
# This may be replaced when dependencies are built.
