file(REMOVE_RECURSE
  "../bench/bench_fig4_embedded"
  "../bench/bench_fig4_embedded.pdb"
  "CMakeFiles/bench_fig4_embedded.dir/bench_fig4_embedded.cpp.o"
  "CMakeFiles/bench_fig4_embedded.dir/bench_fig4_embedded.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_embedded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
