# Empty dependencies file for bench_fig4_embedded.
# This may be replaced when dependencies are built.
