file(REMOVE_RECURSE
  "../bench/bench_incremental_estimation"
  "../bench/bench_incremental_estimation.pdb"
  "CMakeFiles/bench_incremental_estimation.dir/bench_incremental_estimation.cpp.o"
  "CMakeFiles/bench_incremental_estimation.dir/bench_incremental_estimation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incremental_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
