# Empty dependencies file for bench_incremental_estimation.
# This may be replaced when dependencies are built.
