file(REMOVE_RECURSE
  "../bench/bench_periodic_multiproc"
  "../bench/bench_periodic_multiproc.pdb"
  "CMakeFiles/bench_periodic_multiproc.dir/bench_periodic_multiproc.cpp.o"
  "CMakeFiles/bench_periodic_multiproc.dir/bench_periodic_multiproc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_periodic_multiproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
