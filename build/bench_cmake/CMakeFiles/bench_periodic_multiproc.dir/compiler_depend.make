# Empty compiler generated dependencies file for bench_periodic_multiproc.
# This may be replaced when dependencies are built.
