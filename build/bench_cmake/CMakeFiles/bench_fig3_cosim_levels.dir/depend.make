# Empty dependencies file for bench_fig3_cosim_levels.
# This may be replaced when dependencies are built.
