file(REMOVE_RECURSE
  "../bench/bench_factors_ablation"
  "../bench/bench_factors_ablation.pdb"
  "CMakeFiles/bench_factors_ablation.dir/bench_factors_ablation.cpp.o"
  "CMakeFiles/bench_factors_ablation.dir/bench_factors_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_factors_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
