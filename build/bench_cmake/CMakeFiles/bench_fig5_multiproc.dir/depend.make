# Empty dependencies file for bench_fig5_multiproc.
# This may be replaced when dependencies are built.
