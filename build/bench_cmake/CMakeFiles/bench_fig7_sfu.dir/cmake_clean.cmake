file(REMOVE_RECURSE
  "../bench/bench_fig7_sfu"
  "../bench/bench_fig7_sfu.pdb"
  "CMakeFiles/bench_fig7_sfu.dir/bench_fig7_sfu.cpp.o"
  "CMakeFiles/bench_fig7_sfu.dir/bench_fig7_sfu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_sfu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
