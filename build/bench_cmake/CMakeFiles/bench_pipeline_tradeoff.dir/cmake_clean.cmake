file(REMOVE_RECURSE
  "../bench/bench_pipeline_tradeoff"
  "../bench/bench_pipeline_tradeoff.pdb"
  "CMakeFiles/bench_pipeline_tradeoff.dir/bench_pipeline_tradeoff.cpp.o"
  "CMakeFiles/bench_pipeline_tradeoff.dir/bench_pipeline_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
