# Empty compiler generated dependencies file for bench_pipeline_tradeoff.
# This may be replaced when dependencies are built.
