file(REMOVE_RECURSE
  "../bench/bench_impl_select"
  "../bench/bench_impl_select.pdb"
  "CMakeFiles/bench_impl_select.dir/bench_impl_select.cpp.o"
  "CMakeFiles/bench_impl_select.dir/bench_impl_select.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_impl_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
