# Empty compiler generated dependencies file for bench_impl_select.
# This may be replaced when dependencies are built.
