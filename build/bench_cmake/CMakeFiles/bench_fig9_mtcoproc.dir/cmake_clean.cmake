file(REMOVE_RECURSE
  "../bench/bench_fig9_mtcoproc"
  "../bench/bench_fig9_mtcoproc.pdb"
  "CMakeFiles/bench_fig9_mtcoproc.dir/bench_fig9_mtcoproc.cpp.o"
  "CMakeFiles/bench_fig9_mtcoproc.dir/bench_fig9_mtcoproc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_mtcoproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
