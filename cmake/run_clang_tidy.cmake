# ctest runner for the always-registered `lint_tidy` gate.
#
# Unlike a configure-time find_program guard, this probes for clang-tidy
# at TEST time, so the test exists in every build tree and the suite has
# the same shape on every machine. Without the tool it reports a skip:
# exit code 77 (the test's SKIP_RETURN_CODE) where the running CMake
# supports cmake_language(EXIT), and the "clang-tidy not found" marker
# (the test's SKIP_REGULAR_EXPRESSION) everywhere.
#
# Inputs:
#   SOURCE_DIR — repository root (globs src/analysis, src/base)
#   BUILD_DIR  — build tree holding compile_commands.json
cmake_minimum_required(VERSION 3.16)

find_program(MHS_TIDY clang-tidy)
if(NOT MHS_TIDY)
  message(STATUS "clang-tidy not found -- skipping lint_tidy")
  if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.29)
    cmake_language(EXIT 77)
  endif()
  return()
endif()

if(NOT EXISTS ${BUILD_DIR}/compile_commands.json)
  message(STATUS "no compile_commands.json in ${BUILD_DIR} -- skipping "
                 "lint_tidy (configure with CMAKE_EXPORT_COMPILE_COMMANDS)")
  if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.29)
    cmake_language(EXIT 77)
  endif()
  return()
endif()

file(GLOB MHS_TIDY_SOURCES
    ${SOURCE_DIR}/src/analysis/*.cpp
    ${SOURCE_DIR}/src/base/*.cpp)

execute_process(
    COMMAND ${MHS_TIDY} -p ${BUILD_DIR} --quiet --warnings-as-errors=*
            ${MHS_TIDY_SOURCES}
    WORKING_DIRECTORY ${SOURCE_DIR}
    RESULT_VARIABLE tidy_result)
if(NOT tidy_result EQUAL 0)
  message(FATAL_ERROR "clang-tidy reported findings (exit ${tidy_result})")
endif()
