# Tier-2 sanitizer gate (driven by the `sanitize_core` ctest).
#
# Configures a nested build of this source tree with
# MHS_SANITIZE=address,undefined, builds the core test suites plus one
# bench and the bench_report tool, then runs them all under the
# instrumented binaries. Any ASan/UBSan finding (leak, OOB, UB) makes a
# suite exit non-zero and fails the test.
#
# Inputs (via -D):
#   SOURCE_DIR - repository root
#   WORK_DIR   - scratch directory for the nested build
if(NOT SOURCE_DIR OR NOT WORK_DIR)
  message(FATAL_ERROR "run_sanitized.cmake needs -DSOURCE_DIR and -DWORK_DIR")
endif()

set(build_dir "${WORK_DIR}/build")
file(MAKE_DIRECTORY "${build_dir}")

# The suites that exercise the memory-heavy subsystems: containers and
# threading (base), the IR and its serializers, the JSON parser (obs),
# the new verifier/lints (analysis + lint CLI), the multi-threaded
# explorer, the fault injector (unit suite plus the 500-plan fuzz
# harness, whose adversarial inputs are exactly what sanitizers are
# for), the value-range abstract interpreter (unit suite plus the
# 10k-kernel soundness fuzzer, whose random arithmetic probes the i64
# corner cases UBSan exists to catch), the service daemon (sockets,
# the worker pool, and request coalescing — the tree's most
# concurrency-dense code), and the RtlSim differential equivalence
# layer (unit suite, committed reproducer corpus, and the equiv_fuzz
# harness at reduced iteration count — random hardware being stepped
# cycle by cycle is dense in the shifts and wraps UBSan watches). A
# full-tree sanitized build would take far longer on the single-core
# CI box for little extra coverage.
set(suites test_base test_ir test_obs test_analysis test_absint
           absint_fuzz test_lint_cli test_explorer test_fault fault_fuzz
           test_serve serve_traffic test_equivalence test_corpus)

execute_process(
  COMMAND ${CMAKE_COMMAND} -S "${SOURCE_DIR}" -B "${build_dir}"
          -DMHS_SANITIZE=address,undefined
          -DCMAKE_BUILD_TYPE=RelWithDebInfo
  RESULT_VARIABLE config_rc)
if(NOT config_rc EQUAL 0)
  message(FATAL_ERROR "sanitized configure failed with ${config_rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build "${build_dir}"
          --target ${suites} equiv_fuzz bench_fig2_tasks bench_report
  RESULT_VARIABLE build_rc)
if(NOT build_rc EQUAL 0)
  message(FATAL_ERROR "sanitized build failed with ${build_rc}")
endif()

foreach(suite IN LISTS suites)
  execute_process(
    COMMAND "${build_dir}/tests/${suite}"
    RESULT_VARIABLE suite_rc)
  if(NOT suite_rc EQUAL 0)
    message(FATAL_ERROR "${suite} failed under ASan/UBSan (rc=${suite_rc})")
  endif()
endforeach()

# equiv_fuzz runs at a reduced iteration count under the sanitizers:
# each case synthesizes a kernel and steps the RtlSim cycle by cycle,
# so the full 2500-kernel campaign would dominate the gate's runtime.
# 300 instrumented kernels still sweep every op kind and both shrink
# stages' code paths.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "MHS_FUZZ_ITERS=300"
          "${build_dir}/tests/equiv_fuzz"
  RESULT_VARIABLE equiv_rc)
if(NOT equiv_rc EQUAL 0)
  message(FATAL_ERROR "equiv_fuzz failed under ASan/UBSan (rc=${equiv_rc})")
endif()

# One real bench run plus the report checker, sanitized end to end: the
# Reporter -> JSON file -> bench_report parse/validate round trip.
set(json_dir "${WORK_DIR}/bench_json")
file(REMOVE_RECURSE "${json_dir}")
file(MAKE_DIRECTORY "${json_dir}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "MHS_BENCH_OUT=${json_dir}"
          "MHS_GIT_REV=sanitize" "${build_dir}/bench/bench_fig2_tasks"
          --benchmark_min_time=1x
  RESULT_VARIABLE bench_rc
  OUTPUT_QUIET)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "sanitized bench_fig2_tasks failed (rc=${bench_rc})")
endif()
execute_process(
  COMMAND "${build_dir}/src/apps/bench_report/bench_report" --check
          "${json_dir}"
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR
      "sanitized bench_report --check failed (rc=${check_rc})")
endif()

message(STATUS "sanitize_core: all suites ASan/UBSan-clean")
